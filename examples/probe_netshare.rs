//! Diagnostic: NetShare GAN training vs violation rate (not a user example).
use cpt_bench::pipeline::{train_trace};
use cpt_bench::Scale;
use cpt_metrics::violation_stats;
use cpt_netshare::NetShare;
use cpt_statemachine::StateMachine;
use cpt_trace::DeviceType;

fn main() {
    let mut scale = Scale::quick();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    if let Some(n) = args.get(2).and_then(|s| s.parse().ok()) { scale.train_ues = n; }
    scale.ns.epochs = epochs;
    if let Some(c) = args.get(3).and_then(|s| s.parse().ok()) { scale.ns.weight_clip = c; }
    if let Some(g) = args.get(4).and_then(|s| s.parse().ok()) { scale.ns.g_every = g; }
    let train_data = train_trace(&scale, DeviceType::Phone, 0);
    let mut model = NetShare::new(scale.ns.with_seed(1));
    let t0 = std::time::Instant::now();
    let report = model.train(&train_data).expect("NetShare training failed");
    for (e, dl, gl, secs) in report.epochs.iter().step_by((epochs/8).max(1)) {
        println!("epoch {e:>3}: d {dl:.4} g {gl:.4} ({secs:.1}s)");
    }
    println!("train time: {:.1}s", t0.elapsed().as_secs_f64());
    let synth = model
        .generate(260, DeviceType::Phone, 7)
        .expect("NetShare generation failed");
    let v = violation_stats(&StateMachine::lte(), &synth);
    println!("events: {} violations: {:.2}%, streams {:.1}%",
        v.events_checked, v.event_rate()*100.0, v.stream_rate()*100.0);
    for (vi, frac) in v.top(4) { println!("  {}: {:.2}%", vi, frac*100.0); }
    let mean_len: f64 = synth.flow_lengths().iter().sum::<f64>() / synth.num_streams() as f64;
    let real_len: f64 = train_data.flow_lengths().iter().sum::<f64>() / train_data.num_streams() as f64;
    println!("mean flow len synth {mean_len:.1} vs real {real_len:.1}");
}
