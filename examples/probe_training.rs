//! Diagnostic: training convergence vs violation rate (not a user example).
use cpt_bench::pipeline::{test_trace, train_trace};
use cpt_bench::Scale;
use cpt_gpt::{train, CptGpt, GenerateConfig, Tokenizer};
use cpt_metrics::violation_stats;
use cpt_statemachine::StateMachine;
use cpt_trace::DeviceType;

fn main() {
    let mut scale = Scale::quick();
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let lr: f32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3e-3);
    scale.gpt_train.epochs = epochs;
    scale.gpt_train.lr = lr;
    if let Some(n) = args.get(4).and_then(|s| s.parse().ok()) { scale.train_ues = n; }
    if let Some(d) = args.get(3).and_then(|s| s.parse().ok()) { scale.gpt.d_model = d; scale.gpt.d_mlp = 4*d; scale.gpt.d_head = d; }
    let train_data = train_trace(&scale, DeviceType::Phone, 0);
    let test_data = test_trace(&scale, DeviceType::Phone, 0);
    println!("train: {}", train_data.summary());
    let tok = Tokenizer::fit(&train_data);
    let mut model = CptGpt::new(scale.gpt.with_seed(1), tok);
    let t0 = std::time::Instant::now();
    let report = train(&mut model, &train_data, &scale.gpt_train).expect("training failed");
    for e in report.epochs.iter().step_by((epochs/8).max(1)) {
        println!("epoch {:>3}: loss {:.4} ({:.1}s)", e.epoch, e.mean_loss, e.seconds);
    }
    println!("train time: {:.1}s", t0.elapsed().as_secs_f64());
    let synth = model
        .generate(&GenerateConfig::new(260, 7))
        .expect("generation failed");
    let v = violation_stats(&StateMachine::lte(), &synth);
    println!("events: {} violations: {} ({:.3}%), streams {:.1}%",
        v.events_checked, v.violating_events, v.event_rate()*100.0, v.stream_rate()*100.0);
    for (v, frac) in v.top(6) {
        println!("  {}: {:.3}%", v, frac * 100.0);
    }
    let real_v = violation_stats(&StateMachine::lte(), &test_data);
    println!("real event viol: {:.3}%", real_v.event_rate()*100.0);
}
