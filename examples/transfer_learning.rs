//! Hour-to-hour transfer learning (Design 3 / §5.5): adapt a pretrained
//! model to a drifted hour instead of retraining from scratch.
//!
//! ```sh
//! cargo run --release --example transfer_learning
//! ```

use cpt::gpt::transfer::FineTuneConfig;
use cpt::gpt::{fine_tune, train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::metrics::FidelityReport;
use cpt::statemachine::StateMachine;
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::DeviceType;
use std::time::Instant;

fn hour_trace(hour: f64, seed: u64) -> cpt::trace::Dataset {
    generate_device(
        &SynthConfig::new(0, seed).starting_at(hour),
        DeviceType::Phone,
        400,
    )
    .clamp_lengths(2, 48)
}

fn main() {
    let machine = StateMachine::lte();
    // Evening busy-hour vs overnight trough: real diurnal drift.
    let hour19 = hour_trace(19.0, 1);
    let hour3 = hour_trace(3.0, 2);
    let hour3_test = hour_trace(3.0, 3);
    println!("hour 19: {}", hour19.summary());
    println!("hour 03: {}", hour3.summary());

    let base_cfg = TrainConfig::quick().with_epochs(16).with_lr(6e-3);
    let model_cfg = CptGptConfig {
        d_model: 32,
        d_mlp: 96,
        d_head: 32,
        max_len: 48,
        ..CptGptConfig::small()
    };

    // Base model on hour 19.
    let t0 = Instant::now();
    let mut base = CptGpt::new(model_cfg, Tokenizer::fit(&hour19));
    train(&mut base, &hour19, &base_cfg).expect("training failed");
    let base_secs = t0.elapsed().as_secs_f64();

    // Option A: retrain from scratch for hour 3.
    let t0 = Instant::now();
    let mut scratch = CptGpt::new(model_cfg.with_seed(9), Tokenizer::fit(&hour3));
    train(&mut scratch, &hour3, &base_cfg).expect("training failed");
    let scratch_secs = t0.elapsed().as_secs_f64();

    // Option B: fine-tune the hour-19 model (Design 3).
    let t0 = Instant::now();
    let (adapted, _) =
        fine_tune(&base, &hour3, &base_cfg, &FineTuneConfig::default()).expect("fine-tune failed");
    let ft_secs = t0.elapsed().as_secs_f64();

    println!("\ntraining cost: base {base_secs:.1}s | scratch {scratch_secs:.1}s | fine-tune {ft_secs:.1}s");
    println!("fine-tune speedup over scratch: {:.2}x", scratch_secs / ft_secs);

    // Both hour-3 models should fit hour 3; the *unadapted* base should
    // fit it worse (that is the drift).
    for (name, model) in [
        ("hour-19 base (unadapted)", &base),
        ("hour-3 from scratch", &scratch),
        ("hour-19 → hour-3 fine-tuned", &adapted),
    ] {
        let synth = model
            .generate(&GenerateConfig::new(300, 4))
            .expect("generation failed");
        let r = FidelityReport::compute(&machine, &hour3_test, &synth);
        println!(
            "{name:<28} sojourn CONN dist {:.3} | IDLE {:.3} | flow length {:.3}",
            r.sojourn_connected, r.sojourn_idle, r.flow_length_all
        );
    }
}
