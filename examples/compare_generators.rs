//! Head-to-head comparison of all four traffic generators on one trace —
//! a miniature of the paper's Tables 5–7.
//!
//! ```sh
//! cargo run --release --example compare_generators
//! ```

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::metrics::{FidelityReport, Table};
use cpt::netshare::{NetShare, NetShareConfig};
use cpt::smm::{SemiMarkovModel, SmmEnsemble};
use cpt::statemachine::StateMachine;
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::{Dataset, DeviceType};

fn main() {
    let device = DeviceType::Phone;
    let machine = StateMachine::lte();
    let train_data =
        generate_device(&SynthConfig::new(0, 5), device, 500).clamp_lengths(2, 48);
    let test_data =
        generate_device(&SynthConfig::new(0, 6), device, 500).clamp_lengths(2, 48);
    println!("training on {}", train_data.summary());

    let n = 400;
    let mut results: Vec<(&str, Dataset)> = Vec::new();

    // SMM-1: one semi-Markov model (domain knowledge, no diversity).
    let smm1 = SemiMarkovModel::fit(machine, &train_data, device);
    results.push(("SMM-1", smm1.generate(n, 3600.0, 1)));

    // SMM-k: clustered ensemble (the paper's SMM-20k mechanism).
    let smmk = SmmEnsemble::fit(machine, &train_data, device, 16, 0);
    println!(
        "SMM-k: {} cluster models, {} fitted CDFs",
        smmk.num_models(),
        smmk.num_cdfs()
    );
    results.push(("SMM-20k", smmk.generate(n, 3600.0, 2)));

    // NetShare: adapted GAN+LSTM baseline.
    let mut ns = NetShare::new(NetShareConfig {
        max_len: 48,
        epochs: 16,
        ..NetShareConfig::small()
    });
    ns.train(&train_data).expect("NetShare training failed");
    results.push((
        "NetShare",
        ns.generate(n, device, 3).expect("NetShare generation failed"),
    ));

    // CPT-GPT: the paper's transformer (no domain knowledge).
    let tokenizer = Tokenizer::fit(&train_data);
    let mut gpt = CptGpt::new(
        CptGptConfig {
            d_model: 32,
            d_mlp: 96,
            d_head: 32,
            max_len: 48,
            ..CptGptConfig::small()
        },
        tokenizer,
    );
    train(
        &mut gpt,
        &train_data,
        &TrainConfig::quick().with_epochs(16).with_lr(6e-3),
    )
    .expect("training failed");
    results.push((
        "CPT-GPT",
        gpt.generate(&GenerateConfig::new(n, 4))
            .expect("generation failed"),
    ));

    // Evaluate everything against the held-out trace.
    let mut table = Table::new(
        "Fidelity vs held-out real trace (lower is better everywhere)",
        &[
            "generator",
            "event viol.%",
            "stream viol.%",
            "sojourn CONN dist",
            "sojourn IDLE dist",
            "flow-length dist",
            "max breakdown diff",
        ],
    );
    for (name, synth) in &results {
        let r = FidelityReport::compute(&machine, &test_data, synth);
        table.row(&[
            name.to_string(),
            format!("{:.3}", r.event_violation_rate * 100.0),
            format!("{:.1}", r.stream_violation_rate * 100.0),
            format!("{:.3}", r.sojourn_connected),
            format!("{:.3}", r.sojourn_idle),
            format!("{:.3}", r.flow_length_all),
            format!("{:.3}", r.max_breakdown_diff),
        ]);
    }
    table.print();
    println!(
        "Expected shape (paper §5.2): SMMs have zero violations by construction;\n\
         CPT-GPT has near-zero; NetShare is orders of magnitude worse. SMM-1 is\n\
         far off on flow length and sojourns; SMM-20k and CPT-GPT are closest."
    );
}
