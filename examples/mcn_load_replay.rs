//! MCN performance evaluation — the paper's first motivating use case
//! (§2.2): drive a mobile-core-network load model with synthesized
//! control-plane traffic and report the control-plane load it would
//! experience.
//!
//! ```sh
//! cargo run --release --example mcn_load_replay
//! ```
//!
//! Each control event invokes a different set of network functions (AMF-
//! style mobility handling for ATCH/DTCH/TAU, session management for
//! SRV_REQ/S1_CONN_REL, handover processing for HO), and stateful MCN
//! implementations must hold per-UE state while UEs are CONNECTED. This
//! example replays a synthesized trace to produce: events/second over
//! time, per-network-function invocation counts, and the peak number of
//! simultaneously CONNECTED UEs — exactly the quantities an MCN designer
//! sizes a deployment with.

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::statemachine::{replay, StateMachine, TopState};
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::{Dataset, DeviceType, EventType};

/// Which MCN network function an event invokes (simplified AMF/SMF split).
fn network_function(et: EventType) -> &'static str {
    match et {
        EventType::Attach | EventType::Detach => "AMF-registration",
        EventType::ServiceRequest | EventType::ConnectionRelease => "SMF-session",
        EventType::Handover => "AMF-handover",
        EventType::TrackingAreaUpdate => "AMF-mobility",
    }
}

fn report_load(name: &str, trace: &Dataset) {
    let machine = StateMachine::lte();

    // Events per second over the hour, bucketed per minute.
    let mut per_minute = vec![0usize; 62];
    let mut nf_counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for s in &trace.streams {
        for e in &s.events {
            let minute = (e.timestamp / 60.0) as usize;
            if minute < per_minute.len() {
                per_minute[minute] += 1;
            }
            *nf_counts.entry(network_function(e.event_type)).or_insert(0) += 1;
        }
    }
    let peak_minute = per_minute.iter().max().copied().unwrap_or(0);
    let total: usize = per_minute.iter().sum();

    // Peak simultaneously-CONNECTED UEs: sweep state-change events.
    let mut deltas: Vec<(f64, i64)> = Vec::new();
    for s in &trace.streams {
        let outcome = replay(&machine, s);
        // Completed CONNECTED visits: +1 at entry, -1 at exit. Entry time
        // reconstructed by cumulative sojourn walk.
        let mut t = s.events.first().map(|e| e.timestamp).unwrap_or(0.0);
        for rec in &outcome.sojourns {
            if rec.state == TopState::Connected {
                deltas.push((t, 1));
                deltas.push((t + rec.duration, -1));
            }
            t += rec.duration;
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let mut connected = 0i64;
    let mut peak_connected = 0i64;
    for (_, d) in deltas {
        connected += d;
        peak_connected = peak_connected.max(connected);
    }

    println!("--- MCN load driven by {name} ---");
    println!("  total control events:        {total}");
    println!("  mean load:                   {:.2} events/s", total as f64 / 3600.0);
    println!("  peak minute load:            {:.2} events/s", peak_minute as f64 / 60.0);
    println!("  peak simultaneous CONNECTED: {peak_connected} UEs");
    for (nf, count) in nf_counts {
        println!("  {nf:<18} {count:>8} invocations");
    }
    println!();
}

fn main() {
    // Real (simulated-carrier) trace for 500 phones.
    let real = generate_device(&SynthConfig::new(0, 11), DeviceType::Phone, 500)
        .clamp_lengths(2, 48);

    // Train CPT-GPT on it and synthesize an equal population.
    let tokenizer = Tokenizer::fit(&real);
    let cfg = CptGptConfig {
        d_model: 32,
        d_mlp: 96,
        d_head: 32,
        max_len: 48,
        ..CptGptConfig::small()
    };
    let mut model = CptGpt::new(cfg, tokenizer);
    train(
        &mut model,
        &real,
        &TrainConfig::quick().with_epochs(16).with_lr(6e-3),
    )
    .expect("training failed");
    let synth = model
        .generate(&GenerateConfig::new(500, 3))
        .expect("generation failed");

    // An MCN sized on the synthesized workload should look like one sized
    // on the real workload.
    report_load("REAL trace (500 UEs)", &real);
    report_load("CPT-GPT synthesized trace (500 UEs)", &synth);
}
