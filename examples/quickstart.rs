//! Quickstart: train CPT-GPT on a control-plane trace and synthesize new
//! traffic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Because the original carrier trace is proprietary, this example first
//! simulates a "real" trace with `cpt-synth` (see DESIGN.md), then runs
//! the exact workflow of the paper's Figure 4: tokenize → train →
//! release (weights + initial-event distribution) → generate → validate.

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::metrics::violation_stats;
use cpt::statemachine::StateMachine;
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::DeviceType;

fn main() {
    // 1. A one-hour LTE trace for 400 phone UEs (stand-in for the
    //    operator's collected dataset).
    let real = generate_device(&SynthConfig::new(0, 42), DeviceType::Phone, 400)
        .clamp_lengths(2, 48);
    println!("real trace: {}", real.summary());

    // 2. Fit the multimodal tokenizer and train the model (Figure 4,
    //    "Training").
    let tokenizer = Tokenizer::fit(&real);
    let config = CptGptConfig {
        d_model: 32,
        d_mlp: 96,
        d_head: 32,
        max_len: 48,
        ..CptGptConfig::small()
    };
    let mut model = CptGpt::new(config, tokenizer);
    println!("model: {} parameters", model.num_params());
    let report = train(
        &mut model,
        &real,
        &TrainConfig::quick().with_epochs(16).with_lr(6e-3),
    )
    .expect("training failed");
    println!(
        "trained {} epochs in {:.1}s (final loss {:.3})",
        report.epochs.len(),
        report.total_seconds,
        report.final_loss()
    );

    // 3. Synthesize a new UE population (Figure 4, "Inference").
    let synth = model
        .generate(&GenerateConfig::new(200, 7))
        .expect("generation failed");
    println!("synthesized: {}", synth.summary());

    // 4. Validate against the 3GPP state machine — the model never saw
    //    it, yet violations should be rare.
    let v = violation_stats(&StateMachine::lte(), &synth);
    println!(
        "semantic violations: {:.3}% of events, {:.1}% of streams",
        v.event_rate() * 100.0,
        v.stream_rate() * 100.0
    );

    // 5. Compare headline statistics.
    let real_breakdown = real.event_breakdown();
    let synth_breakdown = synth.event_breakdown();
    println!("event-type breakdown (real vs synthesized):");
    for (et, real_frac) in real_breakdown {
        println!(
            "  {:<12} {:>6.2}%  vs {:>6.2}%",
            et.to_string(),
            real_frac * 100.0,
            synth_breakdown[&et] * 100.0
        );
    }
}
