//! 5G control-plane traffic — demonstrating that nothing in CPT-GPT is
//! tied to the 4G event vocabulary (the generality argument of §7 /
//! future work).
//!
//! ```sh
//! cargo run --release --example fiveg_trace
//! ```
//!
//! The 5G two-level state machine (Fig. 1b) drops TAU and renames
//! ATCH/DTCH/S1_CONN_REL to REGISTER/DEREGISTER/AN_REL. The tokenizer
//! picks the vocabulary up from the trace's generation; the model code is
//! untouched.

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::metrics::violation_stats;
use cpt::statemachine::StateMachine;
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::{DeviceType, Generation};

fn main() {
    // Simulate a 5G trace: the simulator walks the NR machine (no TAU).
    let cfg = SynthConfig::new(0, 77).generation(Generation::Nr);
    let real = generate_device(&cfg, DeviceType::Phone, 400).clamp_lengths(2, 48);
    println!("5G trace: {}", real.summary());
    println!(
        "5G event names: {:?}",
        Generation::Nr
            .event_types()
            .iter()
            .map(|e| e.name(Generation::Nr))
            .collect::<Vec<_>>()
    );

    // Same CPT-GPT code; only the config's generation changes. Note the
    // token dimension shrinks to 5 + 1 + 2 = 8 automatically.
    let tokenizer = Tokenizer::fit(&real);
    println!("token dimension: {}", tokenizer.token_dim());
    let model_cfg = CptGptConfig {
        generation: Generation::Nr,
        d_model: 32,
        d_mlp: 96,
        d_head: 32,
        max_len: 48,
        ..CptGptConfig::small()
    };
    let mut model = CptGpt::new(model_cfg, tokenizer);
    train(
        &mut model,
        &real,
        &TrainConfig::quick().with_epochs(16).with_lr(6e-3),
    )
    .expect("training failed");

    let synth = model
        .generate(&GenerateConfig::new(200, 9))
        .expect("generation failed");
    println!("synthesized 5G trace: {}", synth.summary());

    // Validate against the *5G* machine.
    let v = violation_stats(&StateMachine::nr(), &synth);
    println!(
        "5G semantic violations: {:.3}% of events, {:.1}% of streams",
        v.event_rate() * 100.0,
        v.stream_rate() * 100.0
    );
    // TAU must never appear in 5G output.
    let has_tau = synth.streams.iter().any(|s| {
        s.events
            .iter()
            .any(|e| e.event_type == cpt::trace::EventType::TrackingAreaUpdate)
    });
    println!("TAU present in 5G output: {has_tau} (must be false)");
    assert!(!has_tau);
}
