//! Property-based cross-crate invariants.

use cpt::metrics::ngram_repeat_fraction;
use cpt::statemachine::{replay, StateMachine};
use cpt::synth::{generate, generate_device, SynthConfig};
use cpt::trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;

/// Arbitrary (possibly semantically invalid) streams.
fn arb_stream() -> impl Strategy<Value = Stream> {
    (
        proptest::collection::vec((0usize..6, 0.0f64..100.0), 0..40),
        0u64..1000,
    )
        .prop_map(|(pairs, id)| {
            let mut t = 0.0;
            let events = pairs
                .into_iter()
                .map(|(ei, gap)| {
                    t += gap;
                    Event::new(EventType::from_index(ei).unwrap(), t)
                })
                .collect();
            Stream::new(UeId(id), DeviceType::Phone, events)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replay never panics and its accounting is internally consistent on
    /// arbitrary (even protocol-violating) streams.
    #[test]
    fn replay_accounting_is_consistent(stream in arb_stream()) {
        for machine in [StateMachine::lte(), StateMachine::nr()] {
            let out = replay(&machine, &stream);
            prop_assert!(out.violations.len() <= out.events_checked);
            prop_assert!(out.events_checked <= stream.len());
            if !out.bootstrapped {
                prop_assert_eq!(out.events_checked, 0);
                prop_assert!(out.sojourns.is_empty());
            }
            // Sojourns are non-negative and bounded by stream duration.
            let total: f64 = out.sojourns.iter().map(|s| s.duration).sum();
            prop_assert!(out.sojourns.iter().all(|s| s.duration >= 0.0));
            prop_assert!(total <= stream.duration() + 1e-6);
        }
    }

    /// A dataset is always a perfect self-memorizer: every n-gram of a
    /// dataset repeats from itself at any tolerance.
    #[test]
    fn dataset_self_memorization_is_total(seed in 0u64..50) {
        let d = generate_device(&SynthConfig::new(0, seed), DeviceType::Phone, 8);
        let with_ngrams = d.streams.iter().any(|s| s.len() >= 5);
        if with_ngrams {
            prop_assert_eq!(ngram_repeat_fraction(&d, &d, 5, 0.01), 1.0);
        }
    }

    /// Simulated ground truth is always semantically valid — the property
    /// that makes it a stand-in for a real carrier trace.
    #[test]
    fn simulator_output_is_always_valid(seed in 0u64..25, ues in 1usize..40) {
        let d = generate(&SynthConfig::new(ues, seed));
        let machine = StateMachine::lte();
        for s in &d.streams {
            let out = replay(&machine, s);
            prop_assert!(out.violations.is_empty(), "violation in {}", s.ue_id);
        }
    }

    /// Hourly windowing partitions events: window sizes sum to the
    /// original event count and re-based timestamps stay in range.
    #[test]
    fn hourly_windows_partition_events(seed in 0u64..25) {
        let d = generate(&SynthConfig::new(30, seed).hours(3.0));
        let windows = d.hourly_windows(3);
        let total: usize = windows.iter().map(Dataset::num_events).sum();
        prop_assert_eq!(total, d.num_events());
        for w in &windows {
            for s in &w.streams {
                prop_assert!(s.events.iter().all(|e| (0.0..3600.0).contains(&e.timestamp)));
            }
        }
    }

    /// Violation metrics are invariant under stream order.
    #[test]
    fn violation_stats_order_invariant(streams in proptest::collection::vec(arb_stream(), 1..10)) {
        let machine = StateMachine::lte();
        let d1 = Dataset::new(streams.clone());
        let mut rev = streams;
        rev.reverse();
        let d2 = Dataset::new(rev);
        let a = cpt::metrics::violation_stats(&machine, &d1);
        let b = cpt::metrics::violation_stats(&machine, &d2);
        prop_assert_eq!(a.violating_events, b.violating_events);
        prop_assert_eq!(a.events_checked, b.events_checked);
        prop_assert_eq!(a.violating_streams, b.violating_streams);
    }
}
