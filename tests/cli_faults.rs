//! End-to-end CLI fault tests: every failure mode must exit with its
//! documented code and a useful message on stderr — never a panic, never
//! a zero exit on bad input.
//!
//! Exit codes under test (see `cptgen --help`): 2 usage, 3 data/IO,
//! 4 bad config/model, 6 checkpoint error.

use cpt::gpt::faultinject::{corrupt_file_bytes, malform_jsonl_line};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_cptgen");

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cpt-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn cptgen")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("cptgen must exit, not be killed")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a tiny simulated trace for the data-path tests.
fn write_trace(scratch: &Scratch, name: &str) -> String {
    let path = scratch.path(name);
    let out = run(&[
        "simulate", "--ues", "20", "--hours", "1", "--seed", "5", "-o", &path,
    ]);
    assert_eq!(exit_code(&out), 0, "simulate failed: {}", stderr_of(&out));
    path
}

#[test]
fn missing_required_option_is_usage_error() {
    let out = run(&["train", "--epochs", "1"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("--input"));
}

#[test]
fn unknown_command_is_usage_error() {
    let out = run(&["frobnicate"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn unreadable_trace_is_a_data_error() {
    let scratch = Scratch::new("noinput");
    let out = run(&["stats", "--input", &scratch.path("does-not-exist.jsonl")]);
    assert_eq!(exit_code(&out), 3);
}

#[test]
fn malformed_trace_line_reports_its_line_number() {
    let scratch = Scratch::new("badline");
    let trace = write_trace(&scratch, "trace.jsonl");

    // Mangle the first stream record (line 2; line 1 is the header).
    let text = std::fs::read_to_string(&trace).expect("read trace");
    std::fs::write(&trace, malform_jsonl_line(&text, 1)).expect("write corrupted trace");

    let out = run(&["stats", "--input", &trace]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("line 2"), "stderr should name line 2: {err}");
}

#[test]
fn invalid_train_config_is_a_config_error() {
    let scratch = Scratch::new("badcfg");
    let trace = write_trace(&scratch, "trace.jsonl");
    let out = run(&[
        "train", "--input", &trace, "--epochs", "0", "-o", &scratch.path("model.json"),
    ]);
    assert_eq!(exit_code(&out), 4, "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("epochs"));
}

#[test]
fn corrupt_model_file_is_a_typed_failure() {
    let scratch = Scratch::new("badmodel");
    let trace = write_trace(&scratch, "trace.jsonl");
    let model = scratch.path("model.json");
    let out = run(&[
        "train", "--input", &trace, "--epochs", "1", "--d-model", "16", "--max-len", "16",
        "-o", &model,
    ]);
    assert_eq!(exit_code(&out), 0, "train failed: {}", stderr_of(&out));

    let len = std::fs::metadata(&model).expect("stat model").len() as usize;
    corrupt_file_bytes(Path::new(&model), 7, (len / 50).max(32)).expect("corrupt model");

    let out = run(&[
        "generate", "--model", &model, "--streams", "5", "-o", &scratch.path("synth.jsonl"),
    ]);
    assert_eq!(exit_code(&out), 6, "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("model.json"));
}

#[test]
fn resume_without_checkpoint_flag_is_usage_error() {
    let scratch = Scratch::new("resumeusage");
    let trace = write_trace(&scratch, "trace.jsonl");
    let out = run(&[
        "train", "--input", &trace, "--resume", "-o", &scratch.path("model.json"),
    ]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("--checkpoint"));
}

#[test]
fn train_checkpoint_resume_roundtrip_succeeds() {
    let scratch = Scratch::new("resume");
    let trace = write_trace(&scratch, "trace.jsonl");
    let model = scratch.path("model.json");
    let ckpt = scratch.path("train.ckpt.json");
    let common = [
        "train", "--input", &trace, "--epochs", "2", "--d-model", "16", "--max-len", "16",
        "--checkpoint", &ckpt, "-o", &model,
    ];
    let out = run(&common);
    assert_eq!(exit_code(&out), 0, "train failed: {}", stderr_of(&out));

    // Resuming a finished run is a no-op that still rewrites the model.
    let mut resume_args = common.to_vec();
    resume_args.push("--resume");
    let out = run(&resume_args);
    assert_eq!(exit_code(&out), 0, "resume failed: {}", stderr_of(&out));

    // The resumed model must be generation-ready.
    let out = run(&[
        "generate", "--model", &model, "--streams", "5", "--seed", "3",
        "-o", &scratch.path("synth.jsonl"),
    ]);
    assert_eq!(exit_code(&out), 0, "generate failed: {}", stderr_of(&out));
}

#[test]
fn resume_from_corrupt_checkpoint_is_a_checkpoint_error() {
    let scratch = Scratch::new("badckpt");
    let trace = write_trace(&scratch, "trace.jsonl");
    let model = scratch.path("model.json");
    let ckpt = scratch.path("train.ckpt.json");
    let out = run(&[
        "train", "--input", &trace, "--epochs", "1", "--d-model", "16", "--max-len", "16",
        "--checkpoint", &ckpt, "-o", &model,
    ]);
    assert_eq!(exit_code(&out), 0, "train failed: {}", stderr_of(&out));

    // Truncate the checkpoint to guarantee a parse failure.
    let bytes = std::fs::read(&ckpt).expect("read checkpoint");
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).expect("truncate checkpoint");

    let out = run(&[
        "train", "--input", &trace, "--epochs", "1", "--d-model", "16", "--max-len", "16",
        "--checkpoint", &ckpt, "--resume", "-o", &model,
    ]);
    assert_eq!(exit_code(&out), 6, "stderr: {}", stderr_of(&out));
}
