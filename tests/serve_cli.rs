//! End-to-end CLI tests for `cptgen serve` and `cptgen loadgen`: a real
//! server child process, a real loadgen run against it over TCP, the
//! `--shutdown` handshake, and the documented exit codes for flag
//! validation (2) and network failure (8).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_cptgen");

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cpt-serve-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn cptgen")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("cptgen must exit, not be killed")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Simulates a tiny trace and trains a tiny model for the serve tests.
fn train_tiny_model(scratch: &Scratch) -> String {
    let trace = scratch.path("trace.jsonl");
    let out = run(&[
        "simulate", "--ues", "20", "--hours", "1", "--seed", "5", "-o", &trace,
    ]);
    assert_eq!(exit_code(&out), 0, "simulate failed: {}", stderr_of(&out));
    let model = scratch.path("model.json");
    let out = run(&[
        "train", "--input", &trace, "--epochs", "1", "--d-model", "16", "--max-len",
        "16", "-o", &model,
    ]);
    assert_eq!(exit_code(&out), 0, "train failed: {}", stderr_of(&out));
    model
}

/// Kills the server child if a test panics before shutting it down.
struct KillOnDrop(Option<Child>);

impl KillOnDrop {
    fn wait(mut self) -> std::process::ExitStatus {
        let mut child = self.0.take().expect("child present");
        child.wait().expect("server child waits")
    }
}

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Starts `cptgen serve` on an OS-assigned port and parses the readiness
/// line for the actual address.
fn spawn_server(model: &str) -> (KillOnDrop, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(BIN)
        .args([
            "serve", "--model", model, "--addr", "127.0.0.1:0", "--workers", "2",
            "--max-sessions", "64",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cptgen serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stdout");
        assert_ne!(n, 0, "server exited before printing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    (KillOnDrop(Some(child)), addr, reader)
}

#[test]
fn serve_loadgen_shutdown_round_trip() {
    let scratch = Scratch::new("roundtrip");
    let model = train_tiny_model(&scratch);
    let (server, addr, _stdout) = spawn_server(&model);

    let report_path = scratch.path("report.json");
    let out = run(&[
        "loadgen", "--addr", &addr, "--sessions", "20", "--concurrent", "8",
        "--threads", "2", "--shutdown", "-o", &report_path,
    ]);
    assert_eq!(exit_code(&out), 0, "loadgen failed: {}", stderr_of(&out));

    // The report file is valid JSON with the promised fields.
    let text = std::fs::read_to_string(&report_path).expect("report written");
    let report: serde_json::Value = serde_json::from_str(&text).expect("report parses");
    assert_eq!(report["sessions_opened"], 20);
    assert_eq!(report["sessions_completed"], 20);
    assert_eq!(report["errors"], 0);
    assert!(report["events_received"].as_u64().expect("events field") > 0);
    assert!(
        report["server_stats"]["slices"].as_u64().expect("server stats embedded") > 0
    );

    // --shutdown must have stopped the server cleanly (exit 0).
    let status = server.wait();
    assert_eq!(status.code(), Some(0), "server did not exit cleanly");
}

#[test]
fn serve_zero_workers_is_usage_error() {
    // Flag validation runs before the model is touched, so no model file
    // is needed to get the documented exit code.
    let out = run(&["serve", "--model", "nope.json", "--workers", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("--workers"));
}

#[test]
fn serve_zero_max_sessions_is_usage_error() {
    let out = run(&["serve", "--model", "nope.json", "--max-sessions", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("max_sessions"));
}

/// Chaos smoke: a server with an injected worker panic (session 3 at its
/// first event) and a dropped loadgen connection must still complete the
/// run cleanly — loadgen exits 0, only the targeted session reports a
/// terminal failure, nothing else is lost, and the client's reconnect +
/// reattach path restores the dropped connection's sessions.
#[test]
fn chaos_smoke_contains_panic_and_dropped_connection() {
    let scratch = Scratch::new("chaos");
    let model = train_tiny_model(&scratch);
    let mut child = Command::new(BIN)
        .args([
            "serve", "--model", &model, "--addr", "127.0.0.1:0", "--workers", "2",
            "--chaos-panic-session", "3", "--chaos-panic-at-event", "1",
            "--chaos-drop-conn", "1", "--chaos-drop-after", "5",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cptgen serve with chaos");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stdout");
        assert_ne!(n, 0, "server exited before printing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    let server = KillOnDrop(Some(child));

    let report_path = scratch.path("chaos-report.json");
    let out = run(&[
        "loadgen", "--addr", &addr, "--sessions", "20", "--concurrent", "8",
        "--threads", "2", "--shutdown", "-o", &report_path,
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "loadgen under chaos failed: {}",
        stderr_of(&out)
    );

    let text = std::fs::read_to_string(&report_path).expect("report written");
    let report: serde_json::Value = serde_json::from_str(&text).expect("report parses");
    assert_eq!(report["sessions_opened"], 20, "every open must be answered");
    assert_eq!(report["errors"], 0, "chaos must not surface as protocol errors");
    assert_eq!(
        report["sessions_failed"], 1,
        "exactly the targeted session reports a terminal failure"
    );
    assert_eq!(
        report["sessions_completed"], 19,
        "every non-targeted session completes"
    );
    assert!(
        report["reconnects"].as_u64().expect("reconnects field") >= 1,
        "the dropped connection must have been re-established"
    );

    let status = server.wait();
    assert_eq!(status.code(), Some(0), "server did not exit cleanly");
}

#[test]
fn serve_zero_read_timeout_is_usage_error() {
    let out = run(&["serve", "--model", "nope.json", "--read-timeout-ms", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("read_timeout_ms"));
}

#[test]
fn serve_zero_max_connections_is_usage_error() {
    let out = run(&["serve", "--model", "nope.json", "--max-connections", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("max_connections"));
}

#[test]
fn serve_zero_detach_ttl_is_usage_error() {
    let out = run(&["serve", "--model", "nope.json", "--detach-ttl-secs", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("detach_ttl_secs"));
}

#[test]
fn generate_zero_threads_is_usage_error() {
    let out = run(&[
        "generate", "--model", "nope.json", "--threads", "0", "-o", "out.jsonl",
    ]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("--threads"));
}

#[test]
fn loadgen_unreachable_server_is_network_error() {
    // Port 9 (discard) on localhost is almost certainly closed; connect
    // must fail fast with the documented serve/network exit code.
    let out = run(&["loadgen", "--addr", "127.0.0.1:9", "--sessions", "1"]);
    assert_eq!(exit_code(&out), 8);
}

#[test]
fn loadgen_unbounded_run_is_usage_error() {
    let out = run(&["loadgen", "--addr", "127.0.0.1:9", "--sessions", "0"]);
    assert_eq!(exit_code(&out), 2);
    assert!(stderr_of(&out).contains("duration"));
}
