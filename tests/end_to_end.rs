//! End-to-end integration tests spanning every crate: simulate a trace,
//! train every generator, synthesize, and check the paper's qualitative
//! claims hold at miniature scale.

use cpt::gpt::{train, CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt::metrics::{violation_stats, FidelityReport};
use cpt::netshare::{NetShare, NetShareConfig};
use cpt::smm::{SemiMarkovModel, SmmEnsemble};
use cpt::statemachine::StateMachine;
use cpt::synth::{generate_device, SynthConfig};
use cpt::trace::{Dataset, DeviceType};

const MAX_LEN: usize = 32;

fn real_trace(seed: u64, n: usize) -> Dataset {
    generate_device(&SynthConfig::new(0, seed), DeviceType::Phone, n)
        .clamp_lengths(2, MAX_LEN + 1)
}

fn tiny_gpt_config() -> CptGptConfig {
    CptGptConfig {
        d_model: 24,
        n_blocks: 2,
        n_heads: 2,
        d_mlp: 48,
        d_head: 24,
        max_len: MAX_LEN,
        ..CptGptConfig::small()
    }
}

#[test]
fn full_cptgpt_pipeline_beats_untrained_fidelity() {
    let train_data = real_trace(100, 200);
    let test_data = real_trace(101, 200);
    let machine = StateMachine::lte();

    let tokenizer = Tokenizer::fit(&train_data);
    let mut model = CptGpt::new(tiny_gpt_config(), tokenizer);
    let report = train(
        &mut model,
        &train_data,
        &TrainConfig::quick().with_epochs(12).with_lr(6e-3),
    )
    .expect("training failed");
    // Loss must improve materially.
    assert!(report.final_loss() < report.epochs[0].mean_loss * 0.8);

    let synth = model
        .generate(&GenerateConfig::new(150, 1))
        .expect("generation failed");
    assert_eq!(synth.num_streams(), 150);
    let fidelity = FidelityReport::compute(&machine, &test_data, &synth);

    // The real trace is violation-free; the trained model should be far
    // below random (~50 %+) even at this miniature scale.
    assert!(
        fidelity.event_violation_rate < 0.10,
        "event violations {:.3}",
        fidelity.event_violation_rate
    );
    // Distribution distances are proper fractions.
    assert!(fidelity.sojourn_connected <= 1.0);
    assert!(fidelity.flow_length_all < 0.9);
    // Breakdown should be in the right ballpark.
    assert!(
        fidelity.max_breakdown_diff < 0.25,
        "breakdown diff {:.3}",
        fidelity.max_breakdown_diff
    );
}

#[test]
fn smm_baselines_are_violation_free_and_clustering_helps() {
    let train_data = real_trace(102, 250);
    let test_data = real_trace(103, 250);
    let machine = StateMachine::lte();

    let smm1 = SemiMarkovModel::fit(machine, &train_data, DeviceType::Phone);
    let smmk = SmmEnsemble::fit(machine, &train_data, DeviceType::Phone, 12, 0);
    // Clamp like the real data so flow-length comparisons are fair.
    let s1 = smm1.generate(250, 3600.0, 1).clamp_lengths(1, MAX_LEN + 1);
    let sk = smmk.generate(250, 3600.0, 1).clamp_lengths(1, MAX_LEN + 1);

    // Zero violations by construction — the reason Table 5 omits SMMs.
    assert_eq!(violation_stats(&machine, &s1).violating_events, 0);
    assert_eq!(violation_stats(&machine, &sk).violating_events, 0);

    // The clustered ensemble matches flow length better (Table 6's SMM-1
    // vs SMM-20k gap).
    let r1 = FidelityReport::compute(&machine, &test_data, &s1);
    let rk = FidelityReport::compute(&machine, &test_data, &sk);
    assert!(
        rk.flow_length_all < r1.flow_length_all,
        "SMM-k {:.3} should beat SMM-1 {:.3}",
        rk.flow_length_all,
        r1.flow_length_all
    );
}

#[test]
fn cptgpt_has_far_fewer_violations_than_netshare() {
    // The paper's headline Table 5 claim, at miniature scale: the
    // transformer respects stateful semantics orders of magnitude better
    // than the GAN.
    let train_data = real_trace(104, 250);
    let machine = StateMachine::lte();

    let tokenizer = Tokenizer::fit(&train_data);
    let mut gpt = CptGpt::new(tiny_gpt_config(), tokenizer);
    train(
        &mut gpt,
        &train_data,
        &TrainConfig::quick().with_epochs(12).with_lr(6e-3),
    )
    .expect("training failed");
    let gpt_synth = gpt
        .generate(&GenerateConfig::new(150, 2))
        .expect("generation failed");

    let mut ns = NetShare::new(NetShareConfig {
        max_len: MAX_LEN,
        epochs: 8,
        hidden: 24,
        d_hidden: 24,
        ..NetShareConfig::small()
    });
    ns.train(&train_data).expect("NetShare training failed");
    let ns_synth = ns
        .generate(150, DeviceType::Phone, 2)
        .expect("NetShare generation failed");

    let v_gpt = violation_stats(&machine, &gpt_synth);
    let v_ns = violation_stats(&machine, &ns_synth);
    assert!(
        v_gpt.event_rate() < v_ns.event_rate() / 3.0,
        "CPT-GPT {:.3} should be far below NetShare {:.3}",
        v_gpt.event_rate(),
        v_ns.event_rate()
    );
}

#[test]
fn generated_streams_roundtrip_through_io() {
    let train_data = real_trace(105, 80);
    let tokenizer = Tokenizer::fit(&train_data);
    let mut model = CptGpt::new(tiny_gpt_config(), tokenizer);
    train(
        &mut model,
        &train_data,
        &TrainConfig::quick().with_epochs(2),
    )
    .expect("training failed");
    let synth = model
        .generate(&GenerateConfig::new(20, 3))
        .expect("generation failed");

    // Dataset IO roundtrip across crates.
    let dir = std::env::temp_dir().join(format!("cpt-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("synth.jsonl");
    cpt::trace::io::write_dataset(&synth, &path).unwrap();
    let back = cpt::trace::io::read_dataset(&path).unwrap();
    assert_eq!(synth, back);

    // Model checkpoint roundtrip: same weights → same generation.
    let ckpt = dir.join("model.json");
    cpt::nn::serialize::save_store_to_path(&model.store, &ckpt).unwrap();
    let restored = cpt::nn::serialize::load_store_from_path(&ckpt).unwrap();
    let mut model2 = model.clone();
    cpt::nn::serialize::load_weights_into(&mut model2.store, &restored).unwrap();
    assert_eq!(
        model
            .generate(&GenerateConfig::new(5, 9))
            .expect("generation failed"),
        model2
            .generate(&GenerateConfig::new(5, 9))
            .expect("generation failed")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transfer_learning_pipeline_adapts_across_hours() {
    let hour_a = generate_device(
        &SynthConfig::new(0, 106).starting_at(19.0),
        DeviceType::Phone,
        200,
    )
    .clamp_lengths(2, MAX_LEN + 1);
    let hour_b = generate_device(
        &SynthConfig::new(0, 107).starting_at(4.0),
        DeviceType::Phone,
        200,
    )
    .clamp_lengths(2, MAX_LEN + 1);

    let cfg = TrainConfig::quick().with_epochs(10).with_lr(6e-3);
    let mut base = CptGpt::new(tiny_gpt_config(), Tokenizer::fit(&hour_a));
    train(&mut base, &hour_a, &cfg).expect("training failed");

    let (adapted, ft_report) = cpt::gpt::fine_tune(
        &base,
        &hour_b,
        &cfg,
        &cpt::gpt::transfer::FineTuneConfig::default(),
    )
    .expect("fine-tune failed");
    // Fine-tuning must be materially cheaper than base training.
    assert!(ft_report.epochs.len() <= cfg.epochs / 2);
    // And must improve hour-b likelihood over the unadapted model.
    let streams: Vec<&cpt::trace::Stream> = hour_b.streams.iter().collect();
    let batch = cpt::gpt::batch::build_batch(&base.tokenizer, &streams, MAX_LEN);
    let eval = |m: &CptGpt| {
        let mut sess = cpt::nn::Session::new(&m.store);
        let loss = m.loss(&mut sess, &batch);
        sess.graph.value(loss).item()
    };
    assert!(eval(&adapted) < eval(&base));
}
