#!/usr/bin/env bash
# Runs cargo against the offline stub crates in devtools/offline-stubs/,
# for sandboxed environments with no network and no registry cache.
#
#   scripts/offline-check.sh check --workspace --lib --bins
#   scripts/offline-check.sh test -p cpt-serve --test chaos_crashonly
#
# The [patch.crates-io] table is injected via a generated config file, so
# the committed manifests (and therefore CI, which has real crates.io
# access) are untouched. See devtools/offline-stubs/README.md for what the
# stubs can and cannot verify.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
STUBS="$ROOT/devtools/offline-stubs"
CFG="$(mktemp /tmp/cpt-offline-stubs.XXXXXX.toml)"
trap 'rm -f "$CFG"' EXIT

cat > "$CFG" <<EOF
[patch.crates-io]
serde = { path = "$STUBS/serde" }
serde_json = { path = "$STUBS/serde_json" }
rand = { path = "$STUBS/rand" }
rayon = { path = "$STUBS/rayon" }
parking_lot = { path = "$STUBS/parking_lot" }
proptest = { path = "$STUBS/proptest" }
criterion = { path = "$STUBS/criterion" }

[net]
offline = true
EOF

# A dedicated target dir keeps stub-built artifacts from ever mixing with
# a real (networked) build, and a dedicated lockfile keeps the stub
# resolution out of the repo root.
export CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-$ROOT/target-offline}"

cd "$ROOT"
exec cargo --config "$CFG" "$@"
