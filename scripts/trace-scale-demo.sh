#!/usr/bin/env bash
# Out-of-core trace data plane at scale (DESIGN.md §17): synthesizes a
# >=1M-event trace straight to the `.ctb` columnar format, round-trips it
# through JSONL byte-identically, trains a smoke model and computes
# streaming metrics from it — all without ever materializing the dataset,
# with the peak RSS of every step measured and capped.
#
#   scripts/trace-scale-demo.sh [outdir] [cptgen-binary]
#
# Exits non-zero if any step fails, the trace is smaller than 1M events,
# or any step's peak RSS exceeds the cap. A summary lands in
# <outdir>/report.txt.
set -euo pipefail

OUT="${1:-trace-scale}"
CPTGEN="${2:-target/release/cptgen}"
# Generous enough for runner-to-runner allocator noise, small enough that
# an accidentally-resident dataset (tens of MB of streams plus JSONL
# text) on a much larger trace would still be the thing that trips it.
RSS_CAP_MB=512
# ~6h of 5000 mixed-device UEs lands comfortably past 1M events
# (~37 events per UE-hour from the synthesizer).
UES=5000
HOURS=6

mkdir -p "$OUT"
REPORT="$OUT/report.txt"
: > "$REPORT"

# Runs one step, measures its peak RSS via getrusage(RUSAGE_CHILDREN),
# appends it to the report, and fails if it exceeds the cap. Children are
# measured fresh per step because each python3 process has its own
# RUSAGE_CHILDREN high-water mark.
run_bounded() {
  local label="$1"
  shift
  python3 - "$label" "$REPORT" "$RSS_CAP_MB" "$@" <<'PY'
import resource, subprocess, sys
label, report, cap_mb = sys.argv[1], sys.argv[2], int(sys.argv[3])
cmd = sys.argv[4:]
rc = subprocess.call(cmd)
peak_mb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0
line = f"{label}: peak RSS {peak_mb:.0f} MiB (cap {cap_mb} MiB)"
print(line)
with open(report, "a") as f:
    f.write(line + "\n")
if rc != 0:
    sys.exit(rc)
if peak_mb > cap_mb:
    print(f"{label}: peak RSS exceeds the {cap_mb} MiB cap", file=sys.stderr)
    sys.exit(1)
PY
}

run_bounded "simulate->ctb" \
  "$CPTGEN" simulate --ues "$UES" --hours "$HOURS" --seed 11 -o "$OUT/big.ctb"
run_bounded "trace verify" "$CPTGEN" trace verify --input "$OUT/big.ctb"
"$CPTGEN" trace info --input "$OUT/big.ctb" | tee "$OUT/info.txt"
cat "$OUT/info.txt" >> "$REPORT"

EVENTS=$(sed -n 's/^ *\([0-9]*\) events in.*/\1/p' "$OUT/info.txt")
test -n "$EVENTS"
if [ "$EVENTS" -lt 1000000 ]; then
  echo "trace has only $EVENTS events (< 1M)" >&2
  exit 1
fi

# The columnar file is a lossless intermediate at scale: ctb -> JSONL ->
# ctb must reproduce the original file byte for byte.
run_bounded "ctb->jsonl" \
  "$CPTGEN" trace convert --input "$OUT/big.ctb" -o "$OUT/big.jsonl"
run_bounded "jsonl->ctb" \
  "$CPTGEN" trace convert --input "$OUT/big.jsonl" -o "$OUT/big2.ctb"
cmp "$OUT/big.ctb" "$OUT/big2.ctb"
echo "ctb -> jsonl -> ctb: byte-identical" >> "$REPORT"

# Out-of-core training smoke: streams are materialized per batch from the
# mmap'd file, never all at once.
run_bounded "train (out-of-core)" \
  "$CPTGEN" train --input "$OUT/big.ctb" --epochs 1 --d-model 16 \
  --max-len 16 --microbatch 8 -o "$OUT/model-scale.json"

# Single-pass streaming metrics over the mapped trace.
run_bounded "stats (streaming)" \
  "$CPTGEN" stats --input "$OUT/big.ctb" > "$OUT/stats.txt"
tail -n +1 "$OUT/stats.txt" | head -n 20 >> "$REPORT"

rm -f "$OUT/big.jsonl" "$OUT/big2.ctb"
echo "scale demo ok: $EVENTS events, every step under ${RSS_CAP_MB} MiB" | tee -a "$REPORT"
