//! Microbenchmarks for the substrate layers: the kernels, state machine,
//! tokenizer and generation loops that every experiment is built from.

use cpt_bench::pipeline::{train_trace, BASE_SEED};
use cpt_bench::Scale;
use cpt_gpt::{CptGpt, GenerateConfig, Tokenizer};
use cpt_nn::{Session, Tensor};
use cpt_smm::SemiMarkovModel;
use cpt_statemachine::{replay, StateMachine};
use cpt_synth::{generate_device, SynthConfig};
use cpt_trace::DeviceType;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    c.bench_function("nn_matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_transformer_forward(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = train_trace(&scale, DeviceType::Phone, 0).sample(32, 1);
    let tok = Tokenizer::fit(&data);
    let model = CptGpt::new(scale.gpt.with_seed(BASE_SEED), tok.clone());
    let streams: Vec<&cpt_trace::Stream> = data.streams.iter().collect();
    let batch = cpt_gpt::batch::build_batch(&tok, &streams, scale.max_len);
    c.bench_function("cptgpt_forward_batch32", |bench| {
        bench.iter(|| {
            let mut sess = Session::new(&model.store);
            black_box(model.forward(&mut sess, batch.inputs.clone()));
        })
    });
    c.bench_function("cptgpt_train_step_batch32", |bench| {
        bench.iter(|| {
            let mut sess = Session::new(&model.store);
            let loss = model.loss(&mut sess, &batch);
            sess.backward(loss);
            black_box(sess.grads());
        })
    });
    // Data-parallel pair, mirroring the generation 1-vs-N pair below: the
    // same 32-stream step cut into 8 micro-batch shards, run on pinned
    // 1-thread and num_cpus pools. Gradients are bit-identical across the
    // pair (fixed-order reduction); the ratio is the train-path speedup.
    let shards: Vec<cpt_gpt::Batch> = streams
        .chunks(4)
        .map(|chunk| cpt_gpt::build_batch(&tok, chunk, scale.max_len))
        .collect();
    let num_cpus = std::thread::available_parallelism().map_or(8, |n| n.get());
    // On a 1-core machine both tiers would collide on the same bench id.
    let mut tiers = vec![1usize];
    if num_cpus > 1 {
        tiers.push(num_cpus);
    }
    for &threads in &tiers {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("cannot build rayon pool");
        c.bench_function(&format!("cptgpt_train_step_sharded_{threads}thread"), |bench| {
            bench.iter(|| {
                pool.install(|| black_box(cpt_gpt::parallel_grad_step(&model, &shards)))
            })
        });
    }
}

fn bench_synth_generation(c: &mut Criterion) {
    c.bench_function("synth_generate_100_phone_ues", |bench| {
        bench.iter(|| {
            black_box(generate_device(
                &SynthConfig::new(0, 7),
                DeviceType::Phone,
                100,
            ))
        })
    });
}

fn bench_replay(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = train_trace(&scale, DeviceType::Phone, 0);
    let machine = StateMachine::lte();
    c.bench_function("statemachine_replay_600_streams", |bench| {
        bench.iter(|| {
            for s in &data.streams {
                black_box(replay(&machine, s));
            }
        })
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = train_trace(&scale, DeviceType::Phone, 0);
    let tok = Tokenizer::fit(&data);
    c.bench_function("tokenizer_encode_600_streams", |bench| {
        bench.iter(|| {
            for s in &data.streams {
                black_box(tok.encode_stream(s));
            }
        })
    });
}

fn bench_smm(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = train_trace(&scale, DeviceType::Phone, 0);
    c.bench_function("smm_fit_600_streams", |bench| {
        bench.iter(|| {
            black_box(SemiMarkovModel::fit(
                StateMachine::lte(),
                &data,
                DeviceType::Phone,
            ))
        })
    });
    let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
    c.bench_function("smm_generate_100_streams", |bench| {
        bench.iter(|| black_box(smm.generate(100, 3600.0, 1)))
    });
}

fn bench_cptgpt_generation(c: &mut Criterion) {
    let scale = Scale::quick();
    let data = train_trace(&scale, DeviceType::Phone, 0).sample(100, 2);
    let tok = Tokenizer::fit(&data);
    let mut model = CptGpt::new(scale.gpt.with_seed(BASE_SEED), tok);
    // One quick epoch so the initial-event distribution exists.
    let cfg = cpt_gpt::TrainConfig::quick().with_epochs(1);
    cpt_gpt::train(&mut model, &data, &cfg).expect("CPT-GPT training failed");
    c.bench_function("cptgpt_generate_16_streams", |bench| {
        bench.iter(|| {
            black_box(
                model
                    .generate(&GenerateConfig::new(16, 3))
                    .expect("CPT-GPT generation failed"),
            )
        })
    });
    // Parallel-scaling pair: identical 64-stream workload on pinned 1- and
    // 8-thread pools. Output is bit-identical across the pair (per-chunk
    // RNGs); the ratio is the acceptance metric for parallel generate().
    let gen_cfg = GenerateConfig {
        batch_size: 8,
        ..GenerateConfig::new(64, 3)
    };
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("cannot build rayon pool");
        c.bench_function(&format!("cptgpt_generate_64_streams_{threads}thread"), |bench| {
            bench.iter(|| {
                pool.install(|| {
                    black_box(
                        model
                            .generate(&gen_cfg)
                            .expect("CPT-GPT generation failed"),
                    )
                })
            })
        });
    }
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets =
        bench_matmul,
        bench_transformer_forward,
        bench_synth_generation,
        bench_replay,
        bench_tokenizer,
        bench_smm,
        bench_cptgpt_generation,
}
criterion_main!(micro);
