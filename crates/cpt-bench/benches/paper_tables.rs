//! One Criterion bench per paper table/figure, each exercising the exact
//! code path the `experiments` binary uses to regenerate it, at miniature
//! sizes so `cargo bench --workspace` terminates quickly. The full-size
//! regeneration is `cargo run --release -p cpt-bench --bin experiments --
//! all` (see EXPERIMENTS.md).

use cpt_bench::pipeline::BASE_SEED;
use cpt_bench::Scale;
use cpt_gpt::transfer::FineTuneConfig;
use cpt_gpt::{fine_tune, train, CptGpt, GenerateConfig, Tokenizer};
use cpt_metrics::{
    flow_length_distance, ngram_repeat_fraction, select_checkpoint, sojourn_distance,
    violation_stats, FidelityReport, FlowLenKind,
};
use cpt_netshare::NetShare;
use cpt_smm::{SemiMarkovModel, SmmEnsemble};
use cpt_statemachine::{StateMachine, TopState};
use cpt_synth::{generate_device, SynthConfig};
use cpt_trace::stats::{log_scale, Histogram};
use cpt_trace::{Dataset, DeviceType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Miniature scale shared by all table benches.
fn mini_scale() -> Scale {
    let mut s = Scale::quick();
    s.train_ues = 80;
    s.test_ues = 80;
    s.gen_streams = 60;
    s.gpt_train.epochs = 2;
    s.ns.epochs = 2;
    s.smm_clusters = 4;
    s
}

struct Fixtures {
    scale: Scale,
    machine: StateMachine,
    real_train: Dataset,
    real_test: Dataset,
    gpt: CptGpt,
    netshare: NetShare,
    gpt_synth: Dataset,
    ns_synth: Dataset,
}

fn fixtures() -> Fixtures {
    let scale = mini_scale();
    let machine = StateMachine::lte();
    let real_train = cpt_bench::pipeline::train_trace(&scale, DeviceType::Phone, 0);
    let real_test = cpt_bench::pipeline::test_trace(&scale, DeviceType::Phone, 0);
    let tok = Tokenizer::fit(&real_train);
    let mut gpt = CptGpt::new(scale.gpt.with_seed(BASE_SEED), tok);
    train(&mut gpt, &real_train, &scale.gpt_train).expect("CPT-GPT training failed");
    let mut netshare = NetShare::new(scale.ns.with_seed(BASE_SEED));
    netshare.train(&real_train).expect("NetShare training failed");
    let gpt_synth = gpt
        .generate(&GenerateConfig::new(scale.gen_streams, 5))
        .expect("CPT-GPT generation failed");
    let ns_synth = netshare
        .generate(scale.gen_streams, DeviceType::Phone, 5)
        .expect("NetShare generation failed");
    Fixtures {
        scale,
        machine,
        real_train,
        real_test,
        gpt,
        netshare,
        gpt_synth,
        ns_synth,
    }
}

fn paper_tables(c: &mut Criterion) {
    let f = fixtures();

    // Table 3: replaying NetShare output against the 3GPP machine.
    c.bench_function("table3_netshare_violation_replay", |b| {
        b.iter(|| black_box(violation_stats(&f.machine, &f.ns_synth)))
    });

    // Figure 2: per-UE mean CONNECTED sojourn CDF distance.
    c.bench_function("fig2_sojourn_cdf_distance", |b| {
        b.iter(|| {
            black_box(sojourn_distance(
                &f.machine,
                &f.real_test,
                &f.gpt_synth,
                TopState::Connected,
            ))
        })
    });

    // Table 4 / Table 9: one NetShare fine-tune epoch (the unit the
    // transfer-learning timing is built from).
    c.bench_function("table4_netshare_finetune_epoch", |b| {
        b.iter(|| {
            let (m, _) = f
                .netshare
                .fine_tune(&f.real_test, 1)
                .expect("NetShare fine-tuning failed");
            black_box(m)
        })
    });

    // Table 5: violation stats for CPT-GPT output.
    c.bench_function("table5_cptgpt_violation_replay", |b| {
        b.iter(|| black_box(violation_stats(&f.machine, &f.gpt_synth)))
    });

    // Table 6 / Figure 5: the full fidelity report.
    c.bench_function("table6_fidelity_report", |b| {
        b.iter(|| {
            black_box(FidelityReport::compute(
                &f.machine,
                &f.real_test,
                &f.gpt_synth,
            ))
        })
    });

    // Table 7: event-type breakdown difference.
    c.bench_function("table7_breakdown_diff", |b| {
        b.iter(|| {
            black_box(cpt_metrics::max_abs_breakdown_diff(
                &f.real_test,
                &f.gpt_synth,
            ))
        })
    });

    // Table 8: one ablation training run (point interarrival head).
    c.bench_function("table8_ablation_train", |b| {
        b.iter(|| {
            let tok = Tokenizer::fit(&f.real_train);
            let cfg = f.scale.gpt.with_seed(BASE_SEED).with_point_iat_head();
            let mut m = CptGpt::new(cfg, tok);
            let mut tc = f.scale.gpt_train;
            tc.epochs = 1;
            black_box(train(&mut m, &f.real_train, &tc).expect("CPT-GPT training failed"));
        })
    });

    // Figure 6: generation + equal-size-reference comparison at one size.
    c.bench_function("fig6_generate_and_compare", |b| {
        b.iter(|| {
            let synth = f
                .gpt
                .generate(&GenerateConfig::new(30, 9))
                .expect("CPT-GPT generation failed");
            let reference = f.real_test.sample(30, 9);
            black_box(FidelityReport::compute(&f.machine, &reference, &synth))
        })
    });

    // Table 9: one CPT-GPT fine-tune (transfer-learning unit).
    c.bench_function("table9_cptgpt_finetune", |b| {
        b.iter(|| {
            let (m, _) = fine_tune(
                &f.gpt,
                &f.real_test,
                &f.scale.gpt_train,
                &FineTuneConfig::default(),
            )
            .expect("CPT-GPT fine-tuning failed");
            black_box(m)
        })
    });

    // Table 10: checkpoint selection over fidelity metric vectors.
    c.bench_function("table10_checkpoint_selection", |b| {
        let metrics: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![1.0 / (i + 1) as f64, (i as f64 * 0.07).sin().abs(), 0.1])
            .collect();
        b.iter(|| black_box(select_checkpoint(&metrics, 0.2)))
    });

    // Table 11: n-gram memorization scan.
    c.bench_function("table11_ngram_memorization", |b| {
        b.iter(|| {
            black_box(ngram_repeat_fraction(
                &f.gpt_synth,
                &f.real_train,
                10,
                0.10,
            ))
        })
    });

    // Figure 7: interarrival histogramming, raw and log-scaled.
    c.bench_function("fig7_interarrival_histogram", |b| {
        let iats = f.real_train.interarrivals();
        b.iter(|| {
            let max = iats.iter().cloned().fold(1.0f64, f64::max);
            let mut raw = Histogram::new(0.0, max, 50);
            raw.extend(iats.iter().copied());
            let mut lg = Histogram::new(0.0, log_scale(max), 50);
            lg.extend(iats.iter().map(|x| log_scale(*x)));
            black_box((raw.total(), lg.total()))
        })
    });

    // Baseline comparators used across tables: SMM fitting + generation.
    c.bench_function("table6_smm1_fit_generate", |b| {
        b.iter(|| {
            let smm = SemiMarkovModel::fit(f.machine, &f.real_train, DeviceType::Phone);
            black_box(smm.generate(30, 3600.0, 3))
        })
    });
    c.bench_function("table6_smmk_fit_generate", |b| {
        b.iter(|| {
            let ens = SmmEnsemble::fit(f.machine, &f.real_train, DeviceType::Phone, 4, 0);
            black_box(ens.generate(30, 3600.0, 3))
        })
    });

    // Ground-truth simulator feeding every experiment.
    c.bench_function("ground_truth_simulation_80_ues", |b| {
        b.iter(|| {
            black_box(generate_device(
                &SynthConfig::new(0, 3),
                DeviceType::Phone,
                80,
            ))
        })
    });

    // Flow-length distance on its own (Table 6 right columns).
    c.bench_function("table6_flow_length_distance", |b| {
        b.iter(|| {
            black_box(flow_length_distance(
                &f.real_test,
                &f.gpt_synth,
                FlowLenKind::All,
            ))
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = paper_tables,
}
criterion_main!(tables);
