//! Integration tests for the supervised, resumable experiment suite:
//! inject a mid-suite stage failure, assert the run reports partial
//! success (exit 8), then `--resume` and assert completed stages are NOT
//! recomputed (their outputs stay byte-identical and their manifest
//! records keep the original attempt counts), a corrupt manifest is moved
//! aside rather than trusted, and usage errors are rejected before any
//! stage runs.

use cpt_bench::pipeline::BASE_SEED;
use cpt_bench::suite::{
    bumped, run_stages, RunManifest, StageStatus, SuiteConfig,
};
use cpt_bench::Scale;
use cpt_gpt::StageFaultPlan;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_experiments");

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cpt-suite-{}-{tag}", std::process::id()));
        // A stale dir from a crashed earlier run would make `--resume`
        // tests see someone else's manifest.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn out_dir(&self) -> PathBuf {
        self.0.join("results")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawn experiments")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("experiments must exit, not be killed")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn read_manifest(out_dir: &Path) -> RunManifest {
    let text = std::fs::read_to_string(out_dir.join("manifest.json")).expect("read manifest");
    serde_json::from_str(&text).expect("parse manifest")
}

#[test]
fn injected_failure_exits_8_and_resume_skips_completed_stages() {
    let scratch = Scratch::new("resume");
    let out_dir = scratch.out_dir();
    let dir = out_dir.to_string_lossy().into_owned();

    // Run 1: table3 completes, table11's only attempt is failed by the
    // injected fault. keep-going makes the run finish both stages.
    let out = run(&[
        "--scale", "tiny", "--out", &dir, "--max-attempts", "1", "--keep-going",
        "--inject-fail", "table11", "table3", "table11",
    ]);
    assert_eq!(exit_code(&out), 8, "partial success: {}", stderr_of(&out));

    let m = read_manifest(&out_dir);
    let t3 = &m.stages["table3"];
    assert_eq!(t3.status, StageStatus::Completed);
    assert_eq!(t3.attempts, 1);
    let t11 = &m.stages["table11"];
    assert_eq!(t11.status, StageStatus::Failed);
    let err = t11.error.as_deref().expect("failed stage records its error");
    assert!(err.contains("injected"), "error should name the fault: {err}");

    let table3_file = out_dir.join("table3.txt");
    let before = std::fs::read(&table3_file).expect("read table3 output");

    // The trained phone suite must have been cached for the resume.
    let cache_has_suite = std::fs::read_dir(out_dir.join("cache"))
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("suite-tiny-"))
        });
    assert!(cache_has_suite, "run 1 should persist the trained suite");

    // Run 2: resume without the fault. table3 must be skipped (not
    // recomputed), table11 must now complete.
    let out = run(&["--scale", "tiny", "--out", &dir, "--resume", "table3", "table11"]);
    assert_eq!(exit_code(&out), 0, "resume should finish: {}", stderr_of(&out));

    let after = std::fs::read(&table3_file).expect("re-read table3 output");
    assert_eq!(before, after, "skipped stage output must stay byte-identical");

    let m = read_manifest(&out_dir);
    let t3 = &m.stages["table3"];
    assert_eq!(t3.status, StageStatus::Completed);
    assert_eq!(
        t3.attempts, 1,
        "a skipped stage keeps its original record untouched"
    );
    let t11 = &m.stages["table11"];
    assert_eq!(t11.status, StageStatus::Completed);
    assert!(t11.error.is_none(), "completed stage clears the error");

    let report = std::fs::read_to_string(out_dir.join("run_report.txt")).expect("run report");
    assert!(
        report.contains("skipped"),
        "report should list the skipped stage: {report}"
    );
}

#[test]
fn retry_reseeds_deterministically_and_marks_stage_degraded() {
    let scratch = Scratch::new("retry");
    let mut cfg = SuiteConfig::new(Scale::tiny(), scratch.out_dir());
    cfg.max_attempts = 2;
    cfg.backoff_base_ms = 1; // keep the test fast
    cfg.fault = Some(StageFaultPlan::parse("table3:1").expect("valid fault spec"));

    let report = run_stages(&cfg, &["table3".to_string()]).expect("supervisor runs");
    assert_eq!(report.exit_code(), 0, "second attempt should succeed");
    assert_eq!(report.completed, vec!["table3".to_string()]);
    assert_eq!(
        report.degraded,
        vec!["table3".to_string()],
        "a retried stage is reported degraded"
    );

    let m = read_manifest(&scratch.out_dir());
    let t3 = &m.stages["table3"];
    assert_eq!(t3.status, StageStatus::Completed);
    assert_eq!(t3.attempts, 2);
    assert_eq!(
        t3.seed,
        bumped(BASE_SEED, 1),
        "the manifest records the reseeded base seed of the final attempt"
    );
}

#[test]
fn corrupt_manifest_is_moved_aside_and_the_run_recovers() {
    let scratch = Scratch::new("corrupt");
    let out_dir = scratch.out_dir();
    std::fs::create_dir_all(&out_dir).expect("create results dir");
    std::fs::write(out_dir.join("manifest.json"), b"{not json").expect("plant corrupt manifest");

    let dir = out_dir.to_string_lossy().into_owned();
    let out = run(&["--scale", "tiny", "--out", &dir, "--resume", "table3"]);
    assert_eq!(exit_code(&out), 0, "recovery must not fail the run: {}", stderr_of(&out));

    assert!(
        out_dir.join("manifest.json.corrupt").exists(),
        "the bad manifest is preserved for forensics, not deleted"
    );
    let m = read_manifest(&out_dir);
    assert_eq!(m.stages["table3"].status, StageStatus::Completed);
}

#[test]
fn unknown_command_is_rejected_before_any_stage_runs() {
    let scratch = Scratch::new("badcmd");
    let out_dir = scratch.out_dir();
    let dir = out_dir.to_string_lossy().into_owned();

    let out = run(&["--scale", "tiny", "--out", &dir, "table3", "frobnicate"]);
    assert_eq!(exit_code(&out), 2, "usage error: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("frobnicate"), "{}", stderr_of(&out));
    assert!(
        !out_dir.exists(),
        "validation failures must not touch the results directory"
    );
}

#[test]
fn bad_flags_are_usage_errors() {
    let out = run(&["--scale", "galactic", "table3"]);
    assert_eq!(exit_code(&out), 2);
    let out = run(&["--max-attempts", "0", "table3"]);
    assert_eq!(exit_code(&out), 2);
    let out = run(&["--inject-fail", "nosuchstage", "table3"]);
    assert_eq!(exit_code(&out), 2, "{}", stderr_of(&out));
    let out = run(&[]);
    assert_eq!(exit_code(&out), 2, "no commands is a usage error");
}
