//! Experiment driver: regenerates every table and figure of the paper
//! under the stage supervisor (see `cpt_bench::suite`).
//!
//! ```text
//! experiments [options] <command> [command...]
//!
//! commands:
//!   table3 table4 table5 table6 table7 table8 table9 table10 table11
//!   fig2 fig5 fig6 fig7
//!   ablation-logscale ablation-batchgen downstream
//!   all          every table/figure plus both extra ablations
//!
//! options:
//!   --scale quick|full|tiny   run sizes (default quick)
//!   --out DIR                 results directory (default results/)
//!   --resume                  skip stages manifest.json records completed
//!   --keep-going              run later stages after a failure (exit 8)
//!   --max-attempts N          attempts per stage, reseeded (default 2)
//!   --stage-budget-secs S     per-stage wall-clock budget (cooperative)
//!   --backoff-ms N            base retry backoff (default 250)
//!   --inject-fail STAGE[:N]   deterministically fail a stage's first N
//!                             attempts (all attempts without :N)
//!
//! exit codes:
//!   0  every requested stage completed
//!   1  no stage completed (or a supervisor-level IO failure)
//!   2  usage error — rejected before any stage runs
//!   8  partial success: some stages completed, some failed
//! ```
//!
//! Results are printed and mirrored into the output directory; the run is
//! recorded stage-by-stage in `<out>/manifest.json` and summarized in
//! `<out>/run_report.txt`. Trained models are cached under `<out>/cache/`
//! and reused by `--resume`.

use cpt_bench::suite::{self, SuiteConfig, SuiteError};
use cpt_bench::Scale;
use cpt_gpt::StageFaultPlan;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [--scale quick|full|tiny] [--out DIR] [--resume] [--keep-going]\n\
         \u{20}                  [--max-attempts N] [--stage-budget-secs S] [--backoff-ms N]\n\
         \u{20}                  [--inject-fail STAGE[:N]] <command...>\n\
         commands: table3 table4 table5 table6 table7 table8 table9 table10 table11\n\
         \u{20}         fig2 fig5 fig6 fig7 downstream ablation-logscale ablation-batchgen all\n\
         exit codes: 0 all completed; 1 nothing completed; 2 usage; 8 partial success"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut cfg = SuiteConfig::new(Scale::quick(), "results");
    let mut commands: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = args.next() else { return usage() };
                match Scale::by_name(&name) {
                    Some(s) => cfg.scale = s,
                    None => {
                        eprintln!("unknown scale {name:?} (use quick, full or tiny)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                let Some(dir) = args.next() else { return usage() };
                cfg.out_dir = dir.into();
            }
            "--resume" => cfg.resume = true,
            "--keep-going" => cfg.keep_going = true,
            "--max-attempts" => {
                let Some(n) = args.next() else { return usage() };
                match n.parse::<u32>() {
                    Ok(n) if n >= 1 => cfg.max_attempts = n,
                    _ => {
                        eprintln!("--max-attempts needs a positive integer, got {n:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--stage-budget-secs" => {
                let Some(s) = args.next() else { return usage() };
                match s.parse::<f64>() {
                    Ok(v) if v.is_finite() && v > 0.0 => cfg.stage_budget_secs = Some(v),
                    _ => {
                        eprintln!("--stage-budget-secs needs a positive number, got {s:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--backoff-ms" => {
                let Some(n) = args.next() else { return usage() };
                match n.parse::<u64>() {
                    Ok(v) => cfg.backoff_base_ms = v,
                    Err(_) => {
                        eprintln!("--backoff-ms needs an integer, got {n:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--inject-fail" => {
                let Some(spec) = args.next() else { return usage() };
                match StageFaultPlan::parse(&spec) {
                    Ok(plan) => cfg.fault = Some(plan),
                    Err(e) => {
                        eprintln!("bad --inject-fail spec: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => return usage(),
            cmd => commands.push(cmd.to_string()),
        }
    }
    if commands.is_empty() {
        return usage();
    }
    match suite::run_stages(&cfg, &commands) {
        Ok(report) => ExitCode::from(report.exit_code()),
        Err(SuiteError::Config { what }) => {
            eprintln!("error: {what}");
            usage()
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
