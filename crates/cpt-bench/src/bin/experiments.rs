//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--scale quick|full] [--out DIR] <command> [command...]
//!
//! commands:
//!   table3 table4 table5 table6 table7 table8 table9 table10 table11
//!   fig2 fig5 fig6 fig7
//!   ablation-logscale ablation-batchgen
//!   all          every table/figure plus both extra ablations
//! ```
//!
//! Results are printed and mirrored into the output directory
//! (default `results/`).

use cpt_bench::experiments::{
    ablations, distributions, downstream, memorization, scalability, transfer, violations,
};
use cpt_bench::output::Output;
use cpt_bench::pipeline::SuiteCache;
use cpt_bench::Scale;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments [--scale quick|full] [--out DIR] <command...>\n\
         commands: table3 table4 table5 table6 table7 table8 table9 table10 table11\n\
         \u{20}         fig2 fig5 fig6 fig7 downstream ablation-logscale ablation-batchgen all"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut scale = Scale::quick();
    let mut out_dir = "results".to_string();
    let mut commands: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(name) = args.next() else { return usage() };
                match Scale::by_name(&name) {
                    Some(s) => scale = s,
                    None => {
                        eprintln!("unknown scale {name:?} (use quick or full)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                let Some(dir) = args.next() else { return usage() };
                out_dir = dir;
            }
            "--help" | "-h" => return usage(),
            cmd => commands.push(cmd.to_string()),
        }
    }
    if commands.is_empty() {
        return usage();
    }
    if commands.iter().any(|c| c == "all") {
        commands = [
            "table3", "fig2", "table4", "table5", "table6", "fig5", "table7", "table8",
            "fig6", "table9", "table10", "table11", "fig7", "ablation-logscale",
            "ablation-batchgen", "downstream",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let out = match Output::new(&out_dir) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cannot create output dir {out_dir:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    out.note(&format!(
        "CPT-GPT reproduction experiments — scale '{}', results in {}/",
        scale.name, out_dir
    ));

    // Suites (trained generators per device) are shared across commands;
    // the transfer protocol is likewise run once for tables 4/9/10.
    let mut cache = SuiteCache::new();
    let mut transfer_runs = None;
    let start = Instant::now();
    for cmd in &commands {
        let t0 = Instant::now();
        match cmd.as_str() {
            "table3" => violations::run_table3(&scale, &out, &mut cache),
            "table5" => violations::run_table5(&scale, &out, &mut cache),
            "fig2" => distributions::run_fig2(&scale, &out, &mut cache),
            "table6" => distributions::run_table6(&scale, &out, &mut cache),
            "fig5" => distributions::run_fig5(&scale, &out, &mut cache),
            "table7" => distributions::run_table7(&scale, &out, &mut cache),
            "table8" => ablations::run_table8(&scale, &out),
            "fig6" => scalability::run_fig6(&scale, &out, &mut cache),
            "table4" | "table9" | "table10" => {
                if transfer_runs.is_none() {
                    out.note("== Running the transfer-learning protocol (shared by Tables 4/9/10) ==");
                    transfer_runs = Some(transfer::run_transfer_protocol(&scale, &out));
                }
                let runs = transfer_runs.as_ref().expect("just set");
                match cmd.as_str() {
                    "table4" => transfer::run_table4(&out, runs, scale.hours),
                    "table9" => transfer::run_table9(&out, runs, scale.hours),
                    _ => transfer::run_table10(&scale, &out, runs),
                }
            }
            "table11" => memorization::run_table11(&scale, &out, &mut cache),
            "fig7" => memorization::run_fig7(&scale, &out, &mut cache),
            "downstream" => downstream::run_downstream(&scale, &out, &mut cache),
            "ablation-logscale" => ablations::run_ablation_logscale(&scale, &out),
            "ablation-batchgen" => ablations::run_ablation_batchgen(&scale, &out),
            other => {
                eprintln!("unknown command {other:?}");
                return usage();
            }
        }
        out.note(&format!("  [{cmd} done in {:.1}s]\n", t0.elapsed().as_secs_f64()));
    }
    out.note(&format!(
        "all requested experiments finished in {:.1}s",
        start.elapsed().as_secs_f64()
    ));
    ExitCode::SUCCESS
}
