//! Figure 6: fidelity vs synthesized-population size.
//!
//! CPT-GPT inference is run for increasing population sizes; each
//! synthesized dataset is compared against an equal-size random subset of
//! a large held-out real dataset. The paper's claim: size has minimal
//! influence on every fidelity metric.

use crate::output::Output;
use crate::pipeline::{ground_truth, SuiteCache, BASE_SEED};
use crate::suite::{bumped, SuiteError};
use crate::Scale;
use cpt_gpt::GenerateConfig;
use cpt_metrics::report::pct;
use cpt_metrics::{FidelityReport, Table};
use cpt_statemachine::StateMachine;
use cpt_trace::DeviceType;

/// Figure 6: run the trained phone model at several population sizes.
pub fn run_fig6(
    scale: &Scale,
    out: &Output,
    cache: &mut SuiteCache,
    seed_bump: u64,
) -> Result<(), SuiteError> {
    out.note("== Figure 6: fidelity vs synthesized population size ==");
    let machine = StateMachine::lte();
    let gpt = cache.get(scale, DeviceType::Phone)?.gpt.clone();
    // A large reference pool to subsample per size (the paper samples from
    // its 380k-UE test set).
    let max_size = scale.fig6_sizes.iter().copied().max().unwrap_or(0);
    let pool = ground_truth(scale, DeviceType::Phone, 0, 3000, max_size.max(scale.test_ues));

    let mut t = Table::new(
        "Figure 6 summary: fidelity metrics vs synthesized UE population",
        &[
            "population",
            "event viol.",
            "stream viol.",
            "sojourn CONN",
            "sojourn IDLE",
            "flow length",
            "max breakdown diff",
        ],
    );
    let mut rows = Vec::new();
    for (i, n) in scale.fig6_sizes.iter().enumerate() {
        let synth = gpt.generate(
            &GenerateConfig::new(*n, bumped(BASE_SEED + 50 + i as u64, seed_bump))
                .device(DeviceType::Phone),
        )?;
        // The real reference pool is deliberately *not* reseeded on
        // retries: only generation can fail, and the comparison target
        // should stay fixed across attempts.
        let reference = pool.sample(*n, BASE_SEED + 60 + i as u64);
        let r = FidelityReport::compute(&machine, &reference, &synth);
        t.row(&[
            n.to_string(),
            pct(r.event_violation_rate, 3),
            pct(r.stream_violation_rate, 1),
            pct(r.sojourn_connected, 1),
            pct(r.sojourn_idle, 1),
            pct(r.flow_length_all, 1),
            pct(r.max_breakdown_diff, 1),
        ]);
        for (metric, value) in [
            ("event_violations", r.event_violation_rate),
            ("stream_violations", r.stream_violation_rate),
            ("sojourn_connected", r.sojourn_connected),
            ("sojourn_idle", r.sojourn_idle),
            ("flow_length", r.flow_length_all),
            ("max_breakdown_diff", r.max_breakdown_diff),
        ] {
            rows.push(vec![n.to_string(), metric.to_string(), format!("{value:.6}")]);
        }
    }
    out.csv("fig6_scalability", &["population", "metric", "value"], &rows);
    out.table("fig6", &t.render());
    Ok(())
}
