//! Table 11 (n-gram memorization) and Figure 7 (interarrival-time
//! distribution, Appendix B).

use crate::output::Output;
use crate::pipeline::{GeneratorKind, SuiteCache};
use crate::suite::SuiteError;
use crate::Scale;
use cpt_metrics::report::pct;
use cpt_metrics::{ngram_repeat_fraction, Table};
use cpt_trace::stats::{log_scale, Histogram};
use cpt_trace::DeviceType;

/// Table 11: fraction of generated n-grams repeated from the training
/// set, for n ∈ {5, 10, 20} and ε ∈ {10 %, 20 %}.
pub fn run_table11(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Table 11: n-gram memorization (phones) ==");
    let suite = cache.get(scale, DeviceType::Phone)?;
    let generated = &suite.synth[&GeneratorKind::CptGpt];
    let training = &suite.real_train;
    let mut t = Table::new(
        "Table 11: percentage of generated n-grams repeating from the training set",
        &["n", "eps=10%", "eps=20%"],
    );
    for n in [5usize, 10, 20] {
        t.row(&[
            format!("n={n}"),
            pct(ngram_repeat_fraction(generated, training, n, 0.10), 3),
            pct(ngram_repeat_fraction(generated, training, n, 0.20), 3),
        ]);
    }
    out.table("table11", &t.render());
    Ok(())
}

/// Figure 7: interarrival-time histogram for phones, raw seconds and
/// log-scaled (`ln(t+1)`), demonstrating the tokenizer's log-scaling
/// rationale.
pub fn run_fig7(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Figure 7: interarrival-time distribution (phones) ==");
    let suite = cache.get(scale, DeviceType::Phone)?;
    let iats = suite.real_train.interarrivals();
    let max = iats.iter().cloned().fold(0.0f64, f64::max).max(1.0);

    let mut raw = Histogram::new(0.0, max, 50);
    raw.extend(iats.iter().copied());
    let mut logh = Histogram::new(0.0, log_scale(max), 50);
    logh.extend(iats.iter().map(|x| log_scale(*x)));

    let mut rows = Vec::new();
    for (x, f) in raw.normalized() {
        rows.push(vec!["raw_seconds".to_string(), format!("{x:.3}"), format!("{f:.6}")]);
    }
    for (x, f) in logh.normalized() {
        rows.push(vec!["log_scaled".to_string(), format!("{x:.3}"), format!("{f:.6}")]);
    }
    out.csv("fig7_interarrival_hist", &["series", "bin_center", "fraction"], &rows);

    // Print the long-tail evidence: mass concentration in raw space vs
    // spread in log space.
    let below_frac = |h: &Histogram, frac: f64| {
        let bins = h.normalized();
        let cut = (bins.len() as f64 * frac) as usize;
        bins.iter().take(cut).map(|(_, f)| f).sum::<f64>()
    };
    let mut t = Table::new(
        "Figure 7 summary: fraction of interarrivals in the lowest 10% of the range",
        &["scaling", "mass in lowest 10% of bins"],
    );
    t.row(&["raw seconds".into(), pct(below_frac(&raw, 0.1), 1)]);
    t.row(&["ln(t+1)".into(), pct(below_frac(&logh, 0.1), 1)]);
    out.table("fig7", &t.render());
    Ok(())
}
