//! One module per group of tables/figures. Every public `run_*` function
//! regenerates exactly one table or figure of the paper; the per-
//! experiment index in DESIGN.md maps them.

pub mod ablations;
pub mod distributions;
pub mod downstream;
pub mod memorization;
pub mod scalability;
pub mod transfer;
pub mod violations;
