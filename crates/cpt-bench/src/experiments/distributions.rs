//! Figure 2, Table 6, Figure 5 and Table 7: the distribution-fidelity
//! experiments.

use crate::output::Output;
use crate::pipeline::{GeneratorKind, SuiteCache};
use crate::suite::SuiteError;
use crate::Scale;
use cpt_metrics::report::{pct, pct_signed};
use cpt_metrics::sojourn::sojourn_ecdf;
use cpt_metrics::{flowlen, Table};
use cpt_statemachine::{StateMachine, TopState};
use cpt_trace::{DeviceType, EventType};

/// Figure 2: CDFs of per-UE mean CONNECTED sojourn time, phones, real vs
/// all four generators. Emitted as CSV series plus a max-y summary table.
pub fn run_fig2(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Figure 2: CONNECTED sojourn CDFs (phones) ==");
    let machine = StateMachine::lte();
    let suite = cache.get(scale, DeviceType::Phone)?;
    let mut rows = Vec::new();
    let real = sojourn_ecdf(&machine, &suite.real_test, TopState::Connected);
    for (x, y) in real.series(200) {
        rows.push(vec!["real".to_string(), format!("{x:.4}"), format!("{y:.6}")]);
    }
    let mut t = Table::new(
        "Figure 2 summary: max y-distance to the real CONNECTED sojourn CDF (phones)",
        &["generator", "max y-distance"],
    );
    for kind in GeneratorKind::ALL {
        let e = sojourn_ecdf(&machine, &suite.synth[&kind], TopState::Connected);
        for (x, y) in e.series(200) {
            rows.push(vec![
                kind.label().to_string(),
                format!("{x:.4}"),
                format!("{y:.6}"),
            ]);
        }
        t.row(&[kind.label().into(), pct(real.max_y_distance(&e), 1)]);
    }
    out.csv("fig2_connected_sojourn_cdf_phone", &["series", "x_seconds", "cdf"], &rows);
    out.table("fig2", &t.render());
    Ok(())
}

/// Table 6: max y-distance of sojourn (CONNECTED/IDLE) and flow-length
/// (all / SRV_REQ / S1_CONN_REL) CDFs for every generator × device type.
pub fn run_table6(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Table 6: max y-distance between real and synthesized CDFs ==");
    let mut t = Table::new(
        "Table 6: maximum y-distance between the CDFs of the real and synthesized datasets",
        &[
            "device", "metric", "SMM-1", "SMM-20k", "NetShare", "CPT-GPT",
        ],
    );
    for device in DeviceType::ALL {
        let suite = cache.get(scale, device)?;
        type MetricFn = Box<dyn Fn(&cpt_metrics::FidelityReport) -> f64>;
        let metric_rows: [(&str, MetricFn); 5] = [
            ("Sojourn CONNECTED", Box::new(|r| r.sojourn_connected)),
            ("Sojourn IDLE", Box::new(|r| r.sojourn_idle)),
            ("Flow length (all)", Box::new(|r| r.flow_length_all)),
            ("Flow length SRV_REQ", Box::new(|r| r.flow_length_srv_req)),
            (
                "Flow length S1_CONN_REL",
                Box::new(|r| r.flow_length_conn_rel),
            ),
        ];
        for (name, f) in metric_rows {
            let mut row = vec![device.to_string(), name.to_string()];
            for kind in GeneratorKind::ALL {
                row.push(pct(f(&suite.reports[&kind]), 1));
            }
            t.row(&row);
        }
    }
    out.table("table6", &t.render());
    Ok(())
}

/// Figure 5: the full CDF grid (sojourns + flow lengths) per device type
/// and generator, as CSV series.
pub fn run_fig5(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Figure 5: fidelity-metric CDF grids ==");
    let machine = StateMachine::lte();
    for device in DeviceType::ALL {
        let suite = cache.get(scale, device)?;
        let mut rows = Vec::new();
        let emit = |panel: &str, series: &str, points: Vec<(f64, f64)>, rows: &mut Vec<Vec<String>>| {
            for (x, y) in points {
                rows.push(vec![
                    panel.to_string(),
                    series.to_string(),
                    format!("{x:.4}"),
                    format!("{y:.6}"),
                ]);
            }
        };
        let datasets: Vec<(&str, &cpt_trace::Dataset)> = std::iter::once(("real", &suite.real_test))
            .chain(
                GeneratorKind::ALL
                    .iter()
                    .map(|k| (k.label(), &suite.synth[k])),
            )
            .collect();
        for (name, ds) in datasets {
            emit(
                "sojourn_connected",
                name,
                sojourn_ecdf(&machine, ds, TopState::Connected).series(150),
                &mut rows,
            );
            emit(
                "sojourn_idle",
                name,
                sojourn_ecdf(&machine, ds, TopState::Idle).series(150),
                &mut rows,
            );
            emit(
                "flow_length_all",
                name,
                flowlen::flow_length_ecdf(ds, flowlen::FlowLenKind::All).series(150),
                &mut rows,
            );
            emit(
                "flow_length_srv_req",
                name,
                flowlen::flow_length_ecdf(ds, flowlen::FlowLenKind::OfType(EventType::ServiceRequest))
                    .series(150),
                &mut rows,
            );
            emit(
                "flow_length_s1_conn_rel",
                name,
                flowlen::flow_length_ecdf(
                    ds,
                    flowlen::FlowLenKind::OfType(EventType::ConnectionRelease),
                )
                .series(150),
                &mut rows,
            );
        }
        out.csv(
            &format!("fig5_{device}"),
            &["panel", "series", "x", "cdf"],
            &rows,
        );
    }
    Ok(())
}

/// Table 7: event-type breakdown of the real dataset and per-generator
/// differences.
pub fn run_table7(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Table 7: event-type breakdown (difference vs real) ==");
    let mut t = Table::new(
        "Table 7: breakdown of event types; generator columns show (synth - real)",
        &[
            "device", "event", "Real", "SMM-1", "SMM-20k", "NetShare", "CPT-GPT",
        ],
    );
    for device in DeviceType::ALL {
        let suite = cache.get(scale, device)?;
        let real = suite.real_test.event_breakdown();
        let diffs: Vec<_> = GeneratorKind::ALL
            .iter()
            .map(|k| cpt_metrics::breakdown_diffs(&suite.real_test, &suite.synth[k]))
            .collect();
        for et in EventType::ALL {
            let mut row = vec![
                device.to_string(),
                et.to_string(),
                pct(real.get(&et).copied().unwrap_or(0.0), 2),
            ];
            for d in &diffs {
                row.push(pct_signed(d[&et], 2));
            }
            t.row(&row);
        }
    }
    out.table("table7", &t.render());
    Ok(())
}
