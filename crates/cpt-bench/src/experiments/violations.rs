//! Tables 3 and 5: stateful-semantics violations.

use crate::output::Output;
use crate::pipeline::{GeneratorKind, SuiteCache};
use crate::suite::SuiteError;
use crate::Scale;
use cpt_metrics::report::pct;
use cpt_metrics::Table;
use cpt_trace::DeviceType;

/// Table 3: NetShare's violation rates plus its top-3 (state, event)
/// violation pairs, for phones.
pub fn run_table3(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Table 3: semantic violations in NetShare-synthesized traffic ==");
    let suite = cache.get(scale, DeviceType::Phone)?;
    let v = &suite.violations[&GeneratorKind::NetShare];
    let mut t = Table::new(
        "Table 3: NetShare violations (phones)",
        &["metric", "value"],
    );
    t.row(&["Perc. event violations".into(), pct(v.event_rate(), 3)]);
    t.row(&[
        "Perc. streams w/ at least one violating event".into(),
        pct(v.stream_rate(), 2),
    ]);
    for (violation, frac) in v.top(3) {
        t.row(&[
            format!("top violation {violation}"),
            pct(frac, 2),
        ]);
    }
    out.table("table3", &t.render());
    Ok(())
}

/// Table 5: event/stream violation rates for NetShare and CPT-GPT across
/// the three device types (SMMs omitted — violation-free by
/// construction).
pub fn run_table5(scale: &Scale, out: &Output, cache: &mut SuiteCache) -> Result<(), SuiteError> {
    out.note("== Table 5: violations, NetShare vs CPT-GPT, all devices ==");
    let mut t = Table::new(
        "Table 5: percentage of events/streams violating 3GPP stateful semantics",
        &[
            "device",
            "NetShare events",
            "CPT-GPT events",
            "NetShare streams",
            "CPT-GPT streams",
        ],
    );
    for device in DeviceType::ALL {
        let suite = cache.get(scale, device)?;
        let ns = &suite.violations[&GeneratorKind::NetShare];
        let gpt = &suite.violations[&GeneratorKind::CptGpt];
        t.row(&[
            device.to_string(),
            pct(ns.event_rate(), 3),
            pct(gpt.event_rate(), 3),
            pct(ns.stream_rate(), 1),
            pct(gpt.stream_rate(), 1),
        ]);
    }
    out.table("table5", &t.render());
    Ok(())
}
