//! Extension experiment (the paper's §7 future work): downstream
//! fidelity. An MCN deployment evaluated on synthetic traffic should
//! behave like one evaluated on the real trace — same latency profile,
//! same autoscaling trajectory, same per-UE state footprint.

use crate::output::Output;
use crate::pipeline::{GeneratorKind, SuiteCache};
use crate::suite::{bumped, SuiteError};
use crate::Scale;
use cpt_mcn::{simulate, McnConfig};
use cpt_metrics::Table;
use cpt_trace::{Dataset, DeviceType, Event, Stream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generated streams carry *relative* time (every stream starts near 0,
/// §4.5's bootstrap convention), so replaying a whole population naively
/// produces a thundering herd at t=0. A deployment harness places stream
/// starts across the window; we place them uniformly, which is also how
/// real UEs' activity phases are distributed within an hour.
fn place_streams(trace: &Dataset, window: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let streams = trace
        .streams
        .iter()
        .map(|s| {
            let slack = (window - s.duration()).max(0.0);
            let offset = rng.gen::<f64>() * slack;
            let events = s
                .events
                .iter()
                .map(|e| Event::new(e.event_type, e.timestamp + offset))
                .collect();
            Stream::new(s.ue_id, s.device_type, events)
        })
        .collect();
    Dataset::with_generation(trace.generation, streams)
}

fn row_for(name: &str, trace: &Dataset, cfg: &McnConfig) -> Vec<String> {
    let r = simulate(trace, cfg);
    vec![
        name.to_string(),
        r.processed.to_string(),
        format!("{:.1}", r.mean_latency * 1e3),
        format!("{:.1}", r.p99_latency * 1e3),
        r.peak_queue.to_string(),
        r.peak_workers.to_string(),
        r.peak_connected_ues.to_string(),
    ]
}

/// Drives a fixed-size and an autoscaling MCN with the real phone trace
/// and every generator's synthetic trace; the synthetic rows should agree
/// with the real row for a generator to be useful downstream.
pub fn run_downstream(
    scale: &Scale,
    out: &Output,
    cache: &mut SuiteCache,
    seed_bump: u64,
) -> Result<(), SuiteError> {
    out.note("== Extension: downstream MCN evaluation (the §2.2 use case) ==");
    let suite = cache.get(scale, DeviceType::Phone)?;

    for (label, cfg) in [
        ("fixed 4-worker MCN", McnConfig::fixed(4)),
        ("autoscaling MCN (target 60% util)", McnConfig::autoscaling(2, 0.6)),
    ] {
        let mut t = Table::new(
            format!("Downstream MCN load — {label} (phones)"),
            &[
                "trace",
                "events",
                "mean lat (ms)",
                "p99 lat (ms)",
                "peak queue",
                "peak workers",
                "peak CONNECTED UEs",
            ],
        );
        t.row(&row_for("real", &suite.real_test, &cfg));
        for (i, kind) in GeneratorKind::ALL.into_iter().enumerate() {
            let placed = place_streams(&suite.synth[&kind], 3600.0, bumped(9000 + i as u64, seed_bump));
            t.row(&row_for(kind.label(), &placed, &cfg));
        }
        let name = if cfg.autoscale.is_some() {
            "downstream_autoscale"
        } else {
            "downstream_fixed"
        };
        out.table(name, &t.render());
    }
    Ok(())
}
