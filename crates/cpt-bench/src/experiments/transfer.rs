//! Tables 4, 9 and 10: adapting to data drift across hours of the day.
//!
//! Methodology (§5.5): for each training run, checkpoints are snapshotted
//! every N epochs, scored on the fidelity metrics against a validation
//! trace, and the checkpoint-selection heuristic decides when the model
//! had converged; "training time" is the wall-clock time up to that
//! checkpoint. The two regimes compared are (a) one model trained on the
//! concatenated multi-hour trace, and (b) an hour-0 model transferred
//! recursively to each subsequent hour.

use crate::output::Output;
use crate::pipeline::{
    concat_hours, cptgpt_time_to_converge, netshare_time_to_converge, test_trace, train_trace,
    BASE_SEED,
};
use crate::suite::{bumped, SuiteError};
use crate::Scale;
use cpt_gpt::{CptGpt, GenerateConfig};
use cpt_metrics::report::{minutes, pct};
use cpt_metrics::{FidelityReport, Table};
use cpt_netshare::NetShare;
use cpt_statemachine::StateMachine;
use cpt_trace::{Dataset, DeviceType};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The timing measurements shared by Tables 4 and 9, plus the hour-3
/// models needed by Table 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRuns {
    /// Seconds to train the single multi-hour model.
    pub scratch_multi: (f64, f64), // (netshare, cptgpt)
    /// Seconds to train the hour-0 model from scratch.
    pub first_hour: (f64, f64),
    /// Seconds per subsequent hour via transfer (averaged).
    pub per_hour_ft: (f64, f64),
    /// Total for the hourly-ensemble regime: first hour + (hours-1) fine-
    /// tunes.
    pub total_ft: (f64, f64),
    /// Hour-3 models trained from scratch (NetShare, CPT-GPT).
    pub hour3_scratch: (NetShare, CptGpt),
    /// Hour-3 models reached through the transfer chain.
    pub hour3_transfer: (NetShare, CptGpt),
    /// Hour-3 test trace.
    pub hour3_test: Dataset,
}

/// Format version of the transfer-runs cache file.
const TRANSFER_CACHE_FORMAT_VERSION: u32 = 1;

/// On-disk wrapper around [`TransferRuns`], written next to the suite
/// cache so `--resume` can serve Tables 4/9/10 without re-running the
/// most expensive protocol in the suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachedTransferRuns {
    format_version: u32,
    scale: String,
    /// Recorded for forensics only; loads don't depend on it.
    #[allow(dead_code)]
    seed_bump: u64,
    runs: TransferRuns,
}

/// Loads cached transfer runs from `path`, or `None` when the file is
/// missing, unparseable, from a different scale/format, or contains a
/// model whose weights fail validation. Corrupt caches degrade to a
/// recompute, never an error.
pub fn load_cached_runs(path: &Path, scale: &Scale) -> Option<TransferRuns> {
    let text = std::fs::read_to_string(path).ok()?;
    let cached: CachedTransferRuns = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "warning: transfer cache {} is corrupt ({e}); recomputing",
                path.display()
            );
            return None;
        }
    };
    if cached.format_version != TRANSFER_CACHE_FORMAT_VERSION || cached.scale != scale.name {
        eprintln!(
            "warning: transfer cache {} does not match this run; recomputing",
            path.display()
        );
        return None;
    }
    for (label, store) in [
        ("hour-3 scratch NetShare", &cached.runs.hour3_scratch.0.store),
        ("hour-3 scratch CPT-GPT", &cached.runs.hour3_scratch.1.store),
        ("hour-3 transfer NetShare", &cached.runs.hour3_transfer.0.store),
        ("hour-3 transfer CPT-GPT", &cached.runs.hour3_transfer.1.store),
    ] {
        if let Err(e) = cpt_nn::serialize::validate_store(store) {
            eprintln!(
                "warning: cached {label} model in {} failed validation ({e}); recomputing",
                path.display()
            );
            return None;
        }
    }
    Some(cached.runs)
}

/// Best-effort persistence of the transfer runs (cache write failures
/// only warn: the in-memory result is already correct).
pub fn persist_runs(path: &Path, scale: &Scale, runs: &TransferRuns, seed_bump: u64) {
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!(
                "warning: cannot create transfer cache dir {}: {e}",
                parent.display()
            );
            return;
        }
    }
    let cached = CachedTransferRuns {
        format_version: TRANSFER_CACHE_FORMAT_VERSION,
        scale: scale.name.to_string(),
        seed_bump,
        runs: runs.clone(),
    };
    if let Err(e) = cpt_nn::serialize::atomic_write_json(&cached, path) {
        eprintln!("warning: cannot write transfer cache {}: {e}", path.display());
    }
}

/// Runs the full transfer-learning timing protocol once (used by Tables
/// 4, 9 and 10). `seed_bump` is 0 on the normal path and rises on
/// supervisor retries.
pub fn run_transfer_protocol(
    scale: &Scale,
    out: &Output,
    seed_bump: u64,
) -> Result<TransferRuns, SuiteError> {
    if scale.hours < 4 {
        return Err(SuiteError::Config {
            what: format!(
                "the transfer protocol needs scale.hours >= 4 (Table 10 evaluates hour 3), got {}",
                scale.hours
            ),
        });
    }
    let device = DeviceType::Phone;
    let hours: Vec<Dataset> = (0..scale.hours)
        .map(|h| train_trace(scale, device, h))
        .collect();
    let validations: Vec<Dataset> = (0..scale.hours)
        .map(|h| test_trace(scale, device, h))
        .collect();
    let multi = concat_hours(&hours);
    let multi_val = concat_hours(&validations);
    let seed = |offset: u64| bumped(BASE_SEED + offset, seed_bump);

    out.note("  [training multi-hour models from scratch]");
    let (_, ns_multi) = netshare_time_to_converge(scale, &multi, &multi_val, None, seed(70))?;
    let (_, gpt_multi) = cptgpt_time_to_converge(scale, &multi, &multi_val, None, seed(70))?;

    out.note("  [training hour-0 models from scratch]");
    let (mut ns_cur, ns_first) =
        netshare_time_to_converge(scale, &hours[0], &validations[0], None, seed(71))?;
    let (mut gpt_cur, gpt_first) =
        cptgpt_time_to_converge(scale, &hours[0], &validations[0], None, seed(71))?;

    let mut ns_scratch3 = None;
    let mut gpt_scratch3 = None;
    let mut ns_ft_secs = Vec::new();
    let mut gpt_ft_secs = Vec::new();
    let mut ns_ft3 = None;
    let mut gpt_ft3 = None;
    for h in 1..scale.hours {
        out.note(&format!("  [transferring to hour {h}]"));
        let (ns_next, ns_t) = netshare_time_to_converge(
            scale,
            &hours[h],
            &validations[h],
            Some(&ns_cur),
            seed(72 + h as u64),
        )?;
        let (gpt_next, gpt_t) = cptgpt_time_to_converge(
            scale,
            &hours[h],
            &validations[h],
            Some(&gpt_cur),
            seed(72 + h as u64),
        )?;
        ns_ft_secs.push(ns_t.seconds);
        gpt_ft_secs.push(gpt_t.seconds);
        ns_cur = ns_next;
        gpt_cur = gpt_next;
        if h == 3 {
            ns_ft3 = Some(ns_cur.clone());
            gpt_ft3 = Some(gpt_cur.clone());
            out.note("  [training hour-3 models from scratch for Table 10]");
            let (ns3, _) =
                netshare_time_to_converge(scale, &hours[3], &validations[3], None, seed(80))?;
            let (gpt3, _) =
                cptgpt_time_to_converge(scale, &hours[3], &validations[3], None, seed(80))?;
            ns_scratch3 = Some(ns3);
            gpt_scratch3 = Some(gpt3);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let total_ns = ns_first.seconds + ns_ft_secs.iter().sum::<f64>();
    let total_gpt = gpt_first.seconds + gpt_ft_secs.iter().sum::<f64>();
    // The hours >= 4 precondition above guarantees the hour-3 models and
    // trace exist; a miss here is a logic error surfaced as Config, not a
    // panic.
    let missing = || SuiteError::Config {
        what: "transfer protocol finished without hour-3 artifacts".to_string(),
    };
    Ok(TransferRuns {
        scratch_multi: (ns_multi.seconds, gpt_multi.seconds),
        first_hour: (ns_first.seconds, gpt_first.seconds),
        per_hour_ft: (avg(&ns_ft_secs), avg(&gpt_ft_secs)),
        total_ft: (total_ns, total_gpt),
        hour3_scratch: (
            ns_scratch3.ok_or_else(missing)?,
            gpt_scratch3.ok_or_else(missing)?,
        ),
        hour3_transfer: (ns_ft3.ok_or_else(missing)?, gpt_ft3.ok_or_else(missing)?),
        hour3_test: validations.into_iter().nth(3).ok_or_else(missing)?,
    })
}

/// Table 4: NetShare's training time, scratch vs transfer.
pub fn run_table4(out: &Output, runs: &TransferRuns, hours: usize) {
    out.note("== Table 4: NetShare training time, from scratch vs transfer learning ==");
    let mut t = Table::new(
        "Table 4: NetShare training time (checkpoint-selection methodology)",
        &["setup", "time"],
    );
    t.row(&[
        format!("{hours}-hour model from scratch"),
        minutes(runs.scratch_multi.0),
    ]);
    t.row(&["1-hour model from scratch".into(), minutes(runs.first_hour.0)]);
    t.row(&[
        "1-hour model from finetuning from another hour".into(),
        minutes(runs.per_hour_ft.0),
    ]);
    t.row(&[
        format!("{hours} 1-hour models total from transfer learning"),
        minutes(runs.total_ft.0),
    ]);
    out.table("table4", &t.render());
}

/// Table 9: NetShare vs CPT-GPT training time with and without transfer.
pub fn run_table9(out: &Output, runs: &TransferRuns, hours: usize) {
    out.note("== Table 9: training time w/ and w/o transfer learning ==");
    let mut t = Table::new(
        "Table 9: training time (checkpoint-selection methodology)",
        &["setup", "NetShare", "CPT-GPT"],
    );
    t.row(&[
        format!("No transfer learning ({hours}-hour model)"),
        minutes(runs.scratch_multi.0),
        minutes(runs.scratch_multi.1),
    ]);
    t.row(&[
        "Transfer: first hour".into(),
        minutes(runs.first_hour.0),
        minutes(runs.first_hour.1),
    ]);
    t.row(&[
        "Transfer: finetune to each subsequent hour (avg)".into(),
        minutes(runs.per_hour_ft.0),
        minutes(runs.per_hour_ft.1),
    ]);
    t.row(&[
        "Transfer: total".into(),
        minutes(runs.total_ft.0),
        minutes(runs.total_ft.1),
    ]);
    let speedup = runs.total_ft.0 / runs.total_ft.1.max(1e-9);
    t.row(&[
        "Hourly-ensemble speedup (NetShare time / CPT-GPT time)".into(),
        String::new(),
        format!("{speedup:.2}x"),
    ]);
    out.table("table9", &t.render());
}

/// Table 10: fidelity of the 4th-hour trace with and without transfer
/// learning.
pub fn run_table10(
    scale: &Scale,
    out: &Output,
    runs: &TransferRuns,
    seed_bump: u64,
) -> Result<(), SuiteError> {
    out.note("== Table 10: fidelity w/ and w/o transfer learning (hour 3) ==");
    let machine = StateMachine::lte();
    let eval_ns = |m: &NetShare, seed: u64| -> Result<FidelityReport, SuiteError> {
        let synth = m.generate(scale.gen_streams, DeviceType::Phone, seed)?;
        Ok(FidelityReport::compute(&machine, &runs.hour3_test, &synth))
    };
    let eval_gpt = |m: &CptGpt, seed: u64| -> Result<FidelityReport, SuiteError> {
        let synth =
            m.generate(&GenerateConfig::new(scale.gen_streams, seed).device(DeviceType::Phone))?;
        Ok(FidelityReport::compute(&machine, &runs.hour3_test, &synth))
    };
    let reports = [
        (
            "w/o xfer",
            eval_ns(&runs.hour3_scratch.0, bumped(BASE_SEED + 90, seed_bump))?,
            eval_gpt(&runs.hour3_scratch.1, bumped(BASE_SEED + 90, seed_bump))?,
        ),
        (
            "w/ xfer",
            eval_ns(&runs.hour3_transfer.0, bumped(BASE_SEED + 91, seed_bump))?,
            eval_gpt(&runs.hour3_transfer.1, bumped(BASE_SEED + 91, seed_bump))?,
        ),
    ];
    let mut t = Table::new(
        "Table 10: hour-3 fidelity with and without transfer learning",
        &["metric", "NetShare w/o", "CPT-GPT w/o", "NetShare w/", "CPT-GPT w/"],
    );
    type MetricFn = Box<dyn Fn(&FidelityReport) -> f64>;
    let metric_rows: [(&str, MetricFn); 5] = [
        ("Event violations", Box::new(|r| r.event_violation_rate)),
        ("Stream violations", Box::new(|r| r.stream_violation_rate)),
        ("Sojourn CONNECTED", Box::new(|r| r.sojourn_connected)),
        ("Sojourn IDLE", Box::new(|r| r.sojourn_idle)),
        ("Flow length", Box::new(|r| r.flow_length_all)),
    ];
    for (name, f) in metric_rows {
        t.row(&[
            name.into(),
            pct(f(&reports[0].1), 2),
            pct(f(&reports[0].2), 2),
            pct(f(&reports[1].1), 2),
            pct(f(&reports[1].2), 2),
        ]);
    }
    out.table("table10", &t.render());
    Ok(())
}
