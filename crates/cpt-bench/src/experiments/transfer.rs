//! Tables 4, 9 and 10: adapting to data drift across hours of the day.
//!
//! Methodology (§5.5): for each training run, checkpoints are snapshotted
//! every N epochs, scored on the fidelity metrics against a validation
//! trace, and the checkpoint-selection heuristic decides when the model
//! had converged; "training time" is the wall-clock time up to that
//! checkpoint. The two regimes compared are (a) one model trained on the
//! concatenated multi-hour trace, and (b) an hour-0 model transferred
//! recursively to each subsequent hour.

use crate::output::Output;
use crate::pipeline::{
    concat_hours, cptgpt_time_to_converge, netshare_time_to_converge, test_trace, train_trace,
    BASE_SEED,
};
use crate::Scale;
use cpt_gpt::{CptGpt, GenerateConfig};
use cpt_metrics::report::{minutes, pct};
use cpt_metrics::{FidelityReport, Table};
use cpt_netshare::NetShare;
use cpt_statemachine::StateMachine;
use cpt_trace::{Dataset, DeviceType};

/// The timing measurements shared by Tables 4 and 9, plus the hour-3
/// models needed by Table 10.
pub struct TransferRuns {
    /// Seconds to train the single multi-hour model.
    pub scratch_multi: (f64, f64), // (netshare, cptgpt)
    /// Seconds to train the hour-0 model from scratch.
    pub first_hour: (f64, f64),
    /// Seconds per subsequent hour via transfer (averaged).
    pub per_hour_ft: (f64, f64),
    /// Total for the hourly-ensemble regime: first hour + (hours-1) fine-
    /// tunes.
    pub total_ft: (f64, f64),
    /// Hour-3 models trained from scratch (NetShare, CPT-GPT).
    pub hour3_scratch: (NetShare, CptGpt),
    /// Hour-3 models reached through the transfer chain.
    pub hour3_transfer: (NetShare, CptGpt),
    /// Hour-3 test trace.
    pub hour3_test: Dataset,
}

/// Runs the full transfer-learning timing protocol once (used by Tables
/// 4, 9 and 10).
pub fn run_transfer_protocol(scale: &Scale, out: &Output) -> TransferRuns {
    let device = DeviceType::Phone;
    let hours: Vec<Dataset> = (0..scale.hours)
        .map(|h| train_trace(scale, device, h))
        .collect();
    let validations: Vec<Dataset> = (0..scale.hours)
        .map(|h| test_trace(scale, device, h))
        .collect();
    let multi = concat_hours(&hours);
    let multi_val = concat_hours(&validations);

    out.note("  [training multi-hour models from scratch]");
    let (_, ns_multi) =
        netshare_time_to_converge(scale, &multi, &multi_val, None, BASE_SEED + 70);
    let (_, gpt_multi) = cptgpt_time_to_converge(scale, &multi, &multi_val, None, BASE_SEED + 70);

    out.note("  [training hour-0 models from scratch]");
    let (mut ns_cur, ns_first) =
        netshare_time_to_converge(scale, &hours[0], &validations[0], None, BASE_SEED + 71);
    let (mut gpt_cur, gpt_first) =
        cptgpt_time_to_converge(scale, &hours[0], &validations[0], None, BASE_SEED + 71);

    let mut ns_scratch3 = None;
    let mut gpt_scratch3 = None;
    let mut ns_ft_secs = Vec::new();
    let mut gpt_ft_secs = Vec::new();
    let mut ns_ft3 = None;
    let mut gpt_ft3 = None;
    for h in 1..scale.hours {
        out.note(&format!("  [transferring to hour {h}]"));
        let (ns_next, ns_t) = netshare_time_to_converge(
            scale,
            &hours[h],
            &validations[h],
            Some(&ns_cur),
            BASE_SEED + 72 + h as u64,
        );
        let (gpt_next, gpt_t) = cptgpt_time_to_converge(
            scale,
            &hours[h],
            &validations[h],
            Some(&gpt_cur),
            BASE_SEED + 72 + h as u64,
        );
        ns_ft_secs.push(ns_t.seconds);
        gpt_ft_secs.push(gpt_t.seconds);
        ns_cur = ns_next;
        gpt_cur = gpt_next;
        if h == 3 {
            ns_ft3 = Some(ns_cur.clone());
            gpt_ft3 = Some(gpt_cur.clone());
            out.note("  [training hour-3 models from scratch for Table 10]");
            let (ns3, _) = netshare_time_to_converge(
                scale,
                &hours[3],
                &validations[3],
                None,
                BASE_SEED + 80,
            );
            let (gpt3, _) = cptgpt_time_to_converge(
                scale,
                &hours[3],
                &validations[3],
                None,
                BASE_SEED + 80,
            );
            ns_scratch3 = Some(ns3);
            gpt_scratch3 = Some(gpt3);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let total_ns = ns_first.seconds + ns_ft_secs.iter().sum::<f64>();
    let total_gpt = gpt_first.seconds + gpt_ft_secs.iter().sum::<f64>();
    TransferRuns {
        scratch_multi: (ns_multi.seconds, gpt_multi.seconds),
        first_hour: (ns_first.seconds, gpt_first.seconds),
        per_hour_ft: (avg(&ns_ft_secs), avg(&gpt_ft_secs)),
        total_ft: (total_ns, total_gpt),
        hour3_scratch: (
            ns_scratch3.expect("hours >= 4"),
            gpt_scratch3.expect("hours >= 4"),
        ),
        hour3_transfer: (ns_ft3.expect("hours >= 4"), gpt_ft3.expect("hours >= 4")),
        hour3_test: validations.into_iter().nth(3).expect("hours >= 4"),
    }
}

/// Table 4: NetShare's training time, scratch vs transfer.
pub fn run_table4(out: &Output, runs: &TransferRuns, hours: usize) {
    out.note("== Table 4: NetShare training time, from scratch vs transfer learning ==");
    let mut t = Table::new(
        "Table 4: NetShare training time (checkpoint-selection methodology)",
        &["setup", "time"],
    );
    t.row(&[
        format!("{hours}-hour model from scratch"),
        minutes(runs.scratch_multi.0),
    ]);
    t.row(&["1-hour model from scratch".into(), minutes(runs.first_hour.0)]);
    t.row(&[
        "1-hour model from finetuning from another hour".into(),
        minutes(runs.per_hour_ft.0),
    ]);
    t.row(&[
        format!("{hours} 1-hour models total from transfer learning"),
        minutes(runs.total_ft.0),
    ]);
    out.table("table4", &t.render());
}

/// Table 9: NetShare vs CPT-GPT training time with and without transfer.
pub fn run_table9(out: &Output, runs: &TransferRuns, hours: usize) {
    out.note("== Table 9: training time w/ and w/o transfer learning ==");
    let mut t = Table::new(
        "Table 9: training time (checkpoint-selection methodology)",
        &["setup", "NetShare", "CPT-GPT"],
    );
    t.row(&[
        format!("No transfer learning ({hours}-hour model)"),
        minutes(runs.scratch_multi.0),
        minutes(runs.scratch_multi.1),
    ]);
    t.row(&[
        "Transfer: first hour".into(),
        minutes(runs.first_hour.0),
        minutes(runs.first_hour.1),
    ]);
    t.row(&[
        "Transfer: finetune to each subsequent hour (avg)".into(),
        minutes(runs.per_hour_ft.0),
        minutes(runs.per_hour_ft.1),
    ]);
    t.row(&[
        "Transfer: total".into(),
        minutes(runs.total_ft.0),
        minutes(runs.total_ft.1),
    ]);
    let speedup = runs.total_ft.0 / runs.total_ft.1.max(1e-9);
    t.row(&[
        "Hourly-ensemble speedup (NetShare time / CPT-GPT time)".into(),
        String::new(),
        format!("{speedup:.2}x"),
    ]);
    out.table("table9", &t.render());
}

/// Table 10: fidelity of the 4th-hour trace with and without transfer
/// learning.
pub fn run_table10(scale: &Scale, out: &Output, runs: &TransferRuns) {
    out.note("== Table 10: fidelity w/ and w/o transfer learning (hour 3) ==");
    let machine = StateMachine::lte();
    let eval_ns = |m: &NetShare, seed: u64| {
        let synth = m.generate(scale.gen_streams, DeviceType::Phone, seed);
        FidelityReport::compute(&machine, &runs.hour3_test, &synth)
    };
    let eval_gpt = |m: &CptGpt, seed: u64| {
        let synth = m
            .generate(&GenerateConfig::new(scale.gen_streams, seed).device(DeviceType::Phone))
            .expect("CPT-GPT generation failed");
        FidelityReport::compute(&machine, &runs.hour3_test, &synth)
    };
    let reports = [
        ("w/o xfer", eval_ns(&runs.hour3_scratch.0, BASE_SEED + 90), eval_gpt(&runs.hour3_scratch.1, BASE_SEED + 90)),
        ("w/ xfer", eval_ns(&runs.hour3_transfer.0, BASE_SEED + 91), eval_gpt(&runs.hour3_transfer.1, BASE_SEED + 91)),
    ];
    let mut t = Table::new(
        "Table 10: hour-3 fidelity with and without transfer learning",
        &["metric", "NetShare w/o", "CPT-GPT w/o", "NetShare w/", "CPT-GPT w/"],
    );
    let metric_rows: [(&str, Box<dyn Fn(&FidelityReport) -> f64>); 5] = [
        ("Event violations", Box::new(|r| r.event_violation_rate)),
        ("Stream violations", Box::new(|r| r.stream_violation_rate)),
        ("Sojourn CONNECTED", Box::new(|r| r.sojourn_connected)),
        ("Sojourn IDLE", Box::new(|r| r.sojourn_idle)),
        ("Flow length", Box::new(|r| r.flow_length_all)),
    ];
    for (name, f) in metric_rows {
        t.row(&[
            name.into(),
            pct(f(&reports[0].1), 2),
            pct(f(&reports[0].2), 2),
            pct(f(&reports[1].1), 2),
            pct(f(&reports[1].2), 2),
        ]);
    }
    out.table("table10", &t.render());
}
