//! Table 8 (loss-weight sensitivity + no-distribution-head ablation) and
//! the two extra ablations called out in DESIGN.md (log scaling,
//! NetShare batch-generation size).

use crate::output::Output;
use crate::pipeline::{test_trace, train_trace, BASE_SEED};
use crate::suite::{bumped, SuiteError};
use crate::Scale;
use cpt_gpt::{train, CptGpt, GenerateConfig, ScaleKind, Tokenizer};
use cpt_metrics::report::pct;
use cpt_metrics::{FidelityReport, Table};
use cpt_netshare::NetShare;
use cpt_statemachine::StateMachine;
use cpt_trace::DeviceType;

struct Variant {
    name: &'static str,
    weights: (f32, f32, f32),
    point_head: bool,
    scale_kind: ScaleKind,
}

fn eval_variant(scale: &Scale, v: &Variant, seed_bump: u64) -> Result<FidelityReport, SuiteError> {
    let machine = StateMachine::lte();
    let train_data = train_trace(scale, DeviceType::Phone, 0);
    let test_data = test_trace(scale, DeviceType::Phone, 0);
    let tokenizer = Tokenizer::fit_with(&train_data, v.scale_kind);
    let mut cfg = scale
        .gpt
        .with_seed(bumped(BASE_SEED, seed_bump))
        .with_loss_weights(v.weights.0, v.weights.1, v.weights.2);
    if v.point_head {
        cfg = cfg.with_point_iat_head();
    }
    let mut model = CptGpt::new(cfg, tokenizer);
    let train_cfg = scale
        .gpt_train
        .with_seed(bumped(scale.gpt_train.seed, seed_bump));
    train(&mut model, &train_data, &train_cfg)?;
    let synth = model.generate(
        &GenerateConfig::new(scale.gen_streams, bumped(BASE_SEED + 40, seed_bump))
            .device(DeviceType::Phone),
    )?;
    Ok(FidelityReport::compute(&machine, &test_data, &synth))
}

fn fidelity_rows(t: &mut Table, name: &str, r: &FidelityReport) {
    t.row(&[
        name.into(),
        pct(r.event_violation_rate, 3),
        pct(r.stream_violation_rate, 1),
        pct(r.sojourn_connected, 1),
        pct(r.sojourn_idle, 1),
        pct(r.flow_length_all, 1),
        pct(r.max_breakdown_diff, 1),
    ]);
}

const FIDELITY_HEADERS: [&str; 7] = [
    "variant",
    "event viol.",
    "stream viol.",
    "sojourn CONN",
    "sojourn IDLE",
    "flow length",
    "max breakdown diff",
];

/// Table 8: varying per-field loss weights, and disabling the
/// distribution-parameter interarrival head.
pub fn run_table8(scale: &Scale, out: &Output, seed_bump: u64) -> Result<(), SuiteError> {
    out.note("== Table 8: loss-weight sensitivity and no-distribution-head ablation ==");
    let variants = [
        Variant {
            name: "Ours (1:1:1)",
            weights: (1.0, 1.0, 1.0),
            point_head: false,
            scale_kind: ScaleKind::Log,
        },
        Variant {
            name: "weights 3:1:1",
            weights: (3.0, 1.0, 1.0),
            point_head: false,
            scale_kind: ScaleKind::Log,
        },
        Variant {
            name: "weights 1:3:1",
            weights: (1.0, 3.0, 1.0),
            point_head: false,
            scale_kind: ScaleKind::Log,
        },
        Variant {
            name: "weights 1:1:3",
            weights: (1.0, 1.0, 3.0),
            point_head: false,
            scale_kind: ScaleKind::Log,
        },
        Variant {
            name: "No dist. pred.",
            weights: (1.0, 1.0, 1.0),
            point_head: true,
            scale_kind: ScaleKind::Log,
        },
    ];
    let mut t = Table::new(
        "Table 8: CPT-GPT fidelity under loss-weight variations and without distribution prediction",
        &FIDELITY_HEADERS,
    );
    for v in &variants {
        let r = eval_variant(scale, v, seed_bump)?;
        fidelity_rows(&mut t, v.name, &r);
    }
    out.table("table8", &t.render());
    Ok(())
}

/// Extra ablation: log vs linear interarrival scaling (the Appendix B /
/// footnote 3 design rationale).
pub fn run_ablation_logscale(
    scale: &Scale,
    out: &Output,
    seed_bump: u64,
) -> Result<(), SuiteError> {
    out.note("== Ablation: log vs linear interarrival scaling ==");
    let variants = [
        Variant {
            name: "log scaling (paper)",
            weights: (1.0, 1.0, 1.0),
            point_head: false,
            scale_kind: ScaleKind::Log,
        },
        Variant {
            name: "linear scaling",
            weights: (1.0, 1.0, 1.0),
            point_head: false,
            scale_kind: ScaleKind::Linear,
        },
    ];
    let mut t = Table::new(
        "Ablation: interarrival scaling (CPT-GPT, phones)",
        &FIDELITY_HEADERS,
    );
    for v in &variants {
        let r = eval_variant(scale, v, seed_bump)?;
        fidelity_rows(&mut t, v.name, &r);
    }
    out.table("ablation_logscale", &t.render());
    Ok(())
}

/// Extra ablation: NetShare batch-generation size (the L4 trade-off —
/// larger batches mean fewer LSTM steps but lose intra-batch
/// dependencies).
pub fn run_ablation_batchgen(
    scale: &Scale,
    out: &Output,
    seed_bump: u64,
) -> Result<(), SuiteError> {
    out.note("== Ablation: NetShare batch-generation size ==");
    let machine = StateMachine::lte();
    let train_data = train_trace(scale, DeviceType::Phone, 0);
    let test_data = test_trace(scale, DeviceType::Phone, 0);
    let mut t = Table::new(
        "Ablation: NetShare batch generation (samples per LSTM step)",
        &FIDELITY_HEADERS,
    );
    for bg in [1usize, 5, 10] {
        let mut cfg = scale.ns;
        cfg.batch_gen = bg;
        cfg.seed = bumped(BASE_SEED + bg as u64, seed_bump);
        let mut model = NetShare::new(cfg);
        model.train(&train_data)?;
        let synth = model.generate(
            scale.gen_streams,
            DeviceType::Phone,
            bumped(BASE_SEED + 41, seed_bump),
        )?;
        let r = FidelityReport::compute(&machine, &test_data, &synth);
        let name = format!("batch_gen = {bg}");
        t.row(&[
            name,
            pct(r.event_violation_rate, 3),
            pct(r.stream_violation_rate, 1),
            pct(r.sojourn_connected, 1),
            pct(r.sojourn_idle, 1),
            pct(r.flow_length_all, 1),
            pct(r.max_breakdown_diff, 1),
        ]);
    }
    out.table("ablation_batchgen", &t.render());
    Ok(())
}
