//! Shared plumbing for the experiments: ground-truth traces, trained
//! models, and the per-device generator suite that Tables 5–7 and
//! Figures 2/5 all consume.

use crate::suite::{bumped, SuiteError};
use crate::Scale;
use cpt_gpt::{fine_tune, train, CptGpt, GenerateConfig, Tokenizer, TrainReport};
use cpt_gpt::transfer::FineTuneConfig;
use cpt_metrics::{select_checkpoint, FidelityReport, ViolationStats};
use cpt_netshare::{NetShare, NetShareTrainReport};
use cpt_smm::{SemiMarkovModel, SmmEnsemble};
use cpt_statemachine::StateMachine;
use cpt_trace::{Dataset, DeviceType};
use cpt_synth::{generate_device, SynthConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The generators compared throughout §5, in the paper's column order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum GeneratorKind {
    /// Single semi-Markov model per device type.
    Smm1,
    /// Clustered SMM ensemble (the SMM-20k mechanism).
    SmmK,
    /// Adapted NetShare (GAN + LSTM).
    NetShare,
    /// CPT-GPT (ours).
    CptGpt,
}

impl GeneratorKind {
    /// All generators in table order.
    pub const ALL: [GeneratorKind; 4] = [
        GeneratorKind::Smm1,
        GeneratorKind::SmmK,
        GeneratorKind::NetShare,
        GeneratorKind::CptGpt,
    ];

    /// Column label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            GeneratorKind::Smm1 => "SMM-1",
            GeneratorKind::SmmK => "SMM-20k",
            GeneratorKind::NetShare => "NetShare",
            GeneratorKind::CptGpt => "CPT-GPT",
        }
    }
}

/// Seeds are all derived from this base so the whole suite is
/// reproducible end to end.
pub const BASE_SEED: u64 = 20240704;

/// Ground-truth ("real") trace for one device type and hour-of-day.
/// `salt` distinguishes train/test/validation draws.
pub fn ground_truth(scale: &Scale, device: DeviceType, hour: usize, salt: u64, ues: usize) -> Dataset {
    let cfg = SynthConfig::new(0, BASE_SEED ^ (salt.wrapping_mul(0x9E37_79B9)))
        .starting_at(hour as f64)
        .hours(1.0);
    // Cap at max_len (not max_len+1): generated streams contain at most
    // max_len events, and mismatched caps produce a spurious CDF jump in
    // the flow-length metric at the cap point.
    generate_device(&cfg, device, ues).clamp_lengths(2, scale.max_len)
}

/// Training trace for (device, hour).
pub fn train_trace(scale: &Scale, device: DeviceType, hour: usize) -> Dataset {
    ground_truth(scale, device, hour, 1000 + hour as u64, scale.train_ues)
}

/// Held-out test trace for (device, hour).
pub fn test_trace(scale: &Scale, device: DeviceType, hour: usize) -> Dataset {
    ground_truth(scale, device, hour, 2000 + hour as u64, scale.test_ues)
}

/// Trains CPT-GPT on `data` (phone hour-0 unless stated otherwise in the
/// experiment).
pub fn train_cptgpt(
    scale: &Scale,
    data: &Dataset,
    seed: u64,
) -> Result<(CptGpt, TrainReport), SuiteError> {
    let tokenizer = Tokenizer::fit(data);
    let mut model = CptGpt::new(scale.gpt.with_seed(seed), tokenizer);
    let report = train(&mut model, data, &scale.gpt_train.with_seed(seed))?;
    Ok((model, report))
}

/// Trains the adapted NetShare on `data`.
pub fn train_netshare(
    scale: &Scale,
    data: &Dataset,
    seed: u64,
) -> Result<(NetShare, NetShareTrainReport), SuiteError> {
    let mut model = NetShare::new(scale.ns.with_seed(seed));
    let report = model.train(data)?;
    Ok((model, report))
}

/// Everything the distribution experiments need for one device type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Device type of this suite.
    pub device: DeviceType,
    /// Training trace.
    pub real_train: Dataset,
    /// Held-out test trace used as the fidelity reference.
    pub real_test: Dataset,
    /// Synthesized dataset per generator.
    pub synth: BTreeMap<GeneratorKind, Dataset>,
    /// Fidelity report per generator (vs `real_test`).
    pub reports: BTreeMap<GeneratorKind, FidelityReport>,
    /// Violation statistics per generator.
    pub violations: BTreeMap<GeneratorKind, ViolationStats>,
    /// The trained CPT-GPT model (phone models seed the other devices'
    /// transfer learning).
    pub gpt: CptGpt,
    /// The trained NetShare model.
    pub netshare: NetShare,
}

/// Format version of the on-disk suite cache; bumped on incompatible
/// layout changes so stale cache files are recomputed, not misread.
pub const SUITE_CACHE_FORMAT_VERSION: u32 = 1;

/// On-disk wrapper around a [`SuiteResult`], keyed by `(scale, device,
/// seed)` so a resumed run only reuses models trained under the exact
/// configuration it would otherwise recompute.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachedSuite {
    format_version: u32,
    scale: String,
    device: String,
    seed: u64,
    suite: SuiteResult,
}

/// The cache index maps each `(scale, device)` to the seed of its current
/// authoritative suite file. Normally that seed is the unbumped base seed,
/// but when a retry (which reseeds) produced the suite, the index lets a
/// resumed process find and reuse it instead of retraining at the base
/// seed and silently mixing models across stages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CacheIndex {
    #[serde(default)]
    format_version: u32,
    #[serde(default)]
    entries: BTreeMap<String, u64>,
}

/// Caches per-device suites so the `all` command trains each model once,
/// and — when constructed with [`SuiteCache::persistent`] — mirrors every
/// computed suite to disk so `experiments --resume` reuses trained models
/// across process restarts.
#[derive(Default)]
pub struct SuiteCache {
    map: BTreeMap<usize, SuiteResult>,
    disk_dir: Option<PathBuf>,
    seed_bump: u64,
}

impl SuiteCache {
    /// Creates an in-memory-only cache (tests, one-shot library use).
    pub fn new() -> Self {
        SuiteCache::default()
    }

    /// Creates a cache that persists every computed suite under `dir`
    /// (created lazily on first write).
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        SuiteCache {
            map: BTreeMap::new(),
            disk_dir: Some(dir.into()),
            seed_bump: 0,
        }
    }

    /// Sets the seed bump mixed into every seed derived while *computing*
    /// a suite. Bump 0 reproduces the historical seeds; the supervisor
    /// raises it on each retry of a stage so divergence-class failures are
    /// retried on a fresh random trajectory. Already-cached suites are
    /// unaffected.
    pub fn set_seed_bump(&mut self, bump: u64) {
        self.seed_bump = bump;
    }

    fn index_path(dir: &Path) -> PathBuf {
        dir.join("index.json")
    }

    fn suite_path(dir: &Path, scale: &Scale, device: DeviceType, seed: u64) -> PathBuf {
        dir.join(format!("suite-{}-{device}-{seed}.json", scale.name))
    }

    fn index_key(scale: &Scale, device: DeviceType) -> String {
        format!("{}/{device}", scale.name)
    }

    /// Loads the cache index, treating a missing or corrupt index as
    /// empty: the cache is an optimization, never a failure source.
    fn load_index(dir: &Path) -> CacheIndex {
        let Ok(text) = std::fs::read_to_string(Self::index_path(dir)) else {
            return CacheIndex::default();
        };
        match serde_json::from_str::<CacheIndex>(&text) {
            Ok(idx) if idx.format_version == SUITE_CACHE_FORMAT_VERSION => idx,
            _ => CacheIndex::default(),
        }
    }

    /// Validates and unwraps a cached suite file; `None` (with a warning)
    /// for anything unusable — wrong version/scale/device, unparseable
    /// bytes, or model weights that fail the finite/shape checks.
    fn try_load(dir: &Path, scale: &Scale, device: DeviceType, seed: u64) -> Option<SuiteResult> {
        let path = Self::suite_path(dir, scale, device, seed);
        let text = std::fs::read_to_string(&path).ok()?;
        let cached: CachedSuite = match serde_json::from_str(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "warning: suite cache {} is corrupt ({e}); recomputing",
                    path.display()
                );
                return None;
            }
        };
        if cached.format_version != SUITE_CACHE_FORMAT_VERSION
            || cached.scale != scale.name
            || cached.device != device.to_string()
            || cached.seed != seed
        {
            eprintln!(
                "warning: suite cache {} does not match this run; recomputing",
                path.display()
            );
            return None;
        }
        for (label, store) in [
            ("CPT-GPT", &cached.suite.gpt.store),
            ("NetShare", &cached.suite.netshare.store),
        ] {
            if let Err(e) = cpt_nn::serialize::validate_store(store) {
                eprintln!(
                    "warning: cached {label} model in {} failed validation ({e}); recomputing",
                    path.display()
                );
                return None;
            }
        }
        Some(cached.suite)
    }

    /// Best-effort persistence: cache write failures degrade to a warning
    /// because the in-memory result is already correct.
    fn persist(dir: &Path, scale: &Scale, suite: &SuiteResult, seed: u64) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create suite cache dir {}: {e}", dir.display());
            return;
        }
        let cached = CachedSuite {
            format_version: SUITE_CACHE_FORMAT_VERSION,
            scale: scale.name.to_string(),
            device: suite.device.to_string(),
            seed,
            suite: suite.clone(),
        };
        let path = Self::suite_path(dir, scale, suite.device, seed);
        if let Err(e) = cpt_nn::serialize::atomic_write_json(&cached, &path) {
            eprintln!("warning: cannot write suite cache {}: {e}", path.display());
            return;
        }
        let mut index = Self::load_index(dir);
        index.format_version = SUITE_CACHE_FORMAT_VERSION;
        index
            .entries
            .insert(Self::index_key(scale, suite.device), seed);
        if let Err(e) = cpt_nn::serialize::atomic_write_json(&index, Self::index_path(dir)) {
            eprintln!("warning: cannot write suite cache index: {e}");
        }
    }

    /// Makes sure the suite for `device` is in the in-memory map, loading
    /// it from disk when a valid cached copy exists and computing (then
    /// persisting) it otherwise.
    fn ensure(&mut self, scale: &Scale, device: DeviceType) -> Result<(), SuiteError> {
        if self.map.contains_key(&device.index()) {
            return Ok(());
        }
        if let Some(dir) = self.disk_dir.clone() {
            let index = Self::load_index(&dir);
            if let Some(&seed) = index.entries.get(&Self::index_key(scale, device)) {
                if let Some(suite) = Self::try_load(&dir, scale, device, seed) {
                    println!(
                        "  [reusing cached {device} suite (scale {}, seed {seed})]",
                        scale.name
                    );
                    self.map.insert(device.index(), suite);
                    return Ok(());
                }
            }
        }
        let suite = if device == DeviceType::Phone {
            run_suite(scale, device, None, self.seed_bump)?
        } else {
            let (gpt, ns) = {
                let phone = &self.map[&DeviceType::Phone.index()];
                (phone.gpt.clone(), phone.netshare.clone())
            };
            run_suite(scale, device, Some((&gpt, &ns)), self.seed_bump)?
        };
        if let Some(dir) = self.disk_dir.clone() {
            let seed = bumped(BASE_SEED + device.index() as u64, self.seed_bump);
            Self::persist(&dir, scale, &suite, seed);
        }
        self.map.insert(device.index(), suite);
        Ok(())
    }

    /// Returns the suite for `device`, computing or loading it (and,
    /// first, the phone suite it transfers from) if needed.
    pub fn get(&mut self, scale: &Scale, device: DeviceType) -> Result<&SuiteResult, SuiteError> {
        self.ensure(scale, DeviceType::Phone)?;
        if device != DeviceType::Phone {
            self.ensure(scale, device)?;
        }
        Ok(&self.map[&device.index()])
    }
}

/// Trains all four generators on the hour-0 trace of `device` and
/// evaluates `scale.gen_streams` synthesized streams against the held-out
/// test trace. §5.1: CPT-GPT and NetShare are first trained on phones and
/// transferred to the other device types; we apply the same recipe.
/// `seed_bump` is 0 on the normal path and rises on supervisor retries
/// (see [`bumped`]).
pub fn run_suite(
    scale: &Scale,
    device: DeviceType,
    phone_models: Option<(&CptGpt, &NetShare)>,
    seed_bump: u64,
) -> Result<SuiteResult, SuiteError> {
    let machine = StateMachine::lte();
    let real_train = train_trace(scale, device, 0);
    let real_test = test_trace(scale, device, 0);
    let dev_seed = bumped(BASE_SEED + device.index() as u64, seed_bump);

    // SMM baselines are always fitted per device (domain-knowledge models
    // have no transfer story).
    let smm1 = SemiMarkovModel::fit(machine, &real_train, device);
    let smmk = SmmEnsemble::fit(machine, &real_train, device, scale.smm_clusters, dev_seed);

    // ML models: train from scratch on phones, transfer to other devices
    // (§5.1), matching the paper's protocol.
    let (gpt, ns) = match (device, phone_models) {
        (DeviceType::Phone, _) | (_, None) => {
            let (g, _) = train_cptgpt(scale, &real_train, dev_seed)?;
            let (n, _) = train_netshare(scale, &real_train, dev_seed)?;
            (g, n)
        }
        (_, Some((phone_gpt, phone_ns))) => {
            let (g, _) = fine_tune(
                phone_gpt,
                &real_train,
                &scale.gpt_train,
                &FineTuneConfig::default(),
            )?;
            let ft_epochs = (scale.ns.epochs / 2).max(1);
            let (n, _) = phone_ns.fine_tune(&real_train, ft_epochs)?;
            (g, n)
        }
    };

    let n = scale.gen_streams;
    let mut synth = BTreeMap::new();
    // SMM output is duration-bounded, not length-bounded; clamp to the
    // same maximum stream length the real traces (and both ML models)
    // observe so flow-length comparisons are apples-to-apples.
    synth.insert(
        GeneratorKind::Smm1,
        smm1.generate(n, 3600.0, dev_seed + 10)
            .clamp_lengths(1, scale.max_len),
    );
    synth.insert(
        GeneratorKind::SmmK,
        smmk.generate(n, 3600.0, dev_seed + 11)
            .clamp_lengths(1, scale.max_len),
    );
    synth.insert(
        GeneratorKind::NetShare,
        ns.generate(n, device, dev_seed + 12)?,
    );
    synth.insert(
        GeneratorKind::CptGpt,
        gpt.generate(&GenerateConfig::new(n, dev_seed + 13).device(device))?,
    );

    let mut reports = BTreeMap::new();
    let mut violations = BTreeMap::new();
    for (kind, ds) in &synth {
        reports.insert(*kind, FidelityReport::compute(&machine, &real_test, ds));
        violations.insert(*kind, cpt_metrics::violation_stats(&machine, ds));
    }
    Ok(SuiteResult {
        device,
        real_train,
        real_test,
        synth,
        reports,
        violations,
        gpt,
        netshare: ns,
    })
}

/// §5.5 time-to-convergence: trains with snapshots, scores each snapshot's
/// fidelity against a validation trace, applies the checkpoint-selection
/// heuristic and returns the wall-clock seconds *up to the selected
/// checkpoint* plus the selected epoch.
pub struct ConvergedTime {
    /// Seconds of training until the selected checkpoint.
    pub seconds: f64,
    /// Selected (0-based) epoch.
    pub epoch: usize,
}

/// CPT-GPT variant of the checkpoint-time measurement.
pub fn cptgpt_time_to_converge(
    scale: &Scale,
    data: &Dataset,
    validation: &Dataset,
    base: Option<&CptGpt>,
    seed: u64,
) -> Result<(CptGpt, ConvergedTime), SuiteError> {
    let machine = StateMachine::lte();
    let mut cfg = scale.gpt_train.with_seed(seed);
    cfg.snapshot_every = Some(scale.snapshot_every);
    let (mut model, report) = match base {
        None => {
            let tokenizer = Tokenizer::fit(data);
            let mut m = CptGpt::new(scale.gpt.with_seed(seed), tokenizer);
            let r = train(&mut m, data, &cfg)?;
            (m, r)
        }
        Some(b) => {
            let ft = FineTuneConfig::default();
            fine_tune(b, data, &cfg, &ft)?
        }
    };
    // Score every snapshot.
    let device = validation
        .streams
        .first()
        .map(|s| s.device_type)
        .unwrap_or(DeviceType::Phone);
    let mut metrics = Vec::new();
    for (_, params) in &report.snapshots {
        let mut snap = model.clone();
        snap.store = params.clone();
        let synth = snap
            .generate(&GenerateConfig::new(scale.snapshot_eval_streams, seed + 99).device(device))?;
        metrics.push(FidelityReport::compute(&machine, validation, &synth).metric_vector());
    }
    let (seconds, epoch) = if metrics.is_empty() {
        (report.total_seconds, report.epochs.len().saturating_sub(1))
    } else {
        let chosen = select_checkpoint(&metrics, 0.2);
        let epoch = report.snapshots[chosen].0;
        let secs: f64 = report.epochs.iter().take(epoch + 1).map(|e| e.seconds).sum();
        // Restore the selected snapshot as the final model.
        model.store = report.snapshots[chosen].1.clone();
        (secs, epoch)
    };
    Ok((model, ConvergedTime { seconds, epoch }))
}

/// NetShare variant of the checkpoint-time measurement.
pub fn netshare_time_to_converge(
    scale: &Scale,
    data: &Dataset,
    validation: &Dataset,
    base: Option<&NetShare>,
    seed: u64,
) -> Result<(NetShare, ConvergedTime), SuiteError> {
    let machine = StateMachine::lte();
    let mut ns_cfg = scale.ns.with_seed(seed);
    ns_cfg.snapshot_every = Some(scale.snapshot_every);
    let (mut model, report) = match base {
        None => {
            let mut m = NetShare::new(ns_cfg);
            let r = m.train(data)?;
            (m, r)
        }
        Some(b) => {
            let mut m = b.clone();
            m.config = ns_cfg;
            m.config.seed = seed.wrapping_add(7919);
            let r = m.train(data)?;
            (m, r)
        }
    };
    let device = validation
        .streams
        .first()
        .map(|s| s.device_type)
        .unwrap_or(DeviceType::Phone);
    let mut metrics = Vec::new();
    for (_, params) in &report.snapshots {
        let mut snap = model.clone();
        snap.store = params.clone();
        let synth = snap.generate(scale.snapshot_eval_streams, device, seed + 99)?;
        metrics.push(FidelityReport::compute(&machine, validation, &synth).metric_vector());
    }
    let (seconds, epoch) = if metrics.is_empty() {
        (
            report.total_seconds,
            report.epochs.len().saturating_sub(1),
        )
    } else {
        let chosen = select_checkpoint(&metrics, 0.2);
        let epoch = report.snapshots[chosen].0;
        let secs: f64 = report
            .epochs
            .iter()
            .take(epoch + 1)
            .map(|(_, _, _, s)| s)
            .sum();
        model.store = report.snapshots[chosen].1.clone();
        (secs, epoch)
    };
    Ok((model, ConvergedTime { seconds, epoch }))
}

/// Concatenates hourly traces into one multi-hour dataset (stream ids are
/// disambiguated by hour like the paper treats the same UE on different
/// days as different UEs).
pub fn concat_hours(hours: &[Dataset]) -> Dataset {
    let mut streams = Vec::new();
    let mut next = 0u64;
    for ds in hours {
        for s in &ds.streams {
            let mut s = s.clone();
            s.ue_id = cpt_trace::UeId(next);
            next += 1;
            streams.push(s);
        }
    }
    Dataset::new(streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_kinds_cover_paper_columns() {
        let labels: Vec<&str> = GeneratorKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["SMM-1", "SMM-20k", "NetShare", "CPT-GPT"]);
    }

    #[test]
    fn ground_truth_is_deterministic_and_clamped() {
        let scale = crate::Scale::quick();
        let a = ground_truth(&scale, DeviceType::Phone, 0, 1, 40);
        let b = ground_truth(&scale, DeviceType::Phone, 0, 1, 40);
        assert_eq!(a, b);
        assert!(a.streams.iter().all(|s| s.len() >= 2 && s.len() <= scale.max_len));
        // Different salts give different traces (train vs test).
        let c = ground_truth(&scale, DeviceType::Phone, 0, 2, 40);
        assert_ne!(a, c);
    }

    #[test]
    fn hourly_traces_differ_by_hour() {
        let scale = crate::Scale::quick();
        let h0 = train_trace(&scale, DeviceType::Phone, 0);
        let h5 = train_trace(&scale, DeviceType::Phone, 5);
        assert_ne!(h0, h5);
    }

    #[test]
    fn concat_hours_renumbers_ues() {
        let scale = crate::Scale::quick();
        let a = ground_truth(&scale, DeviceType::Phone, 0, 1, 10);
        let b = ground_truth(&scale, DeviceType::Phone, 1, 2, 10);
        let both = concat_hours(&[a.clone(), b.clone()]);
        assert_eq!(both.num_streams(), a.num_streams() + b.num_streams());
        let mut ids: Vec<u64> = both.streams.iter().map(|s| s.ue_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), both.num_streams(), "UE ids must be unique");
    }

    #[test]
    fn scales_resolve_by_name() {
        assert_eq!(crate::Scale::by_name("quick").unwrap().name, "quick");
        assert_eq!(crate::Scale::by_name("full").unwrap().name, "full");
        assert_eq!(crate::Scale::by_name("tiny").unwrap().name, "tiny");
        assert!(crate::Scale::by_name("bogus").is_none());
        // full is strictly larger than quick.
        let q = crate::Scale::quick();
        let f = crate::Scale::full();
        assert!(f.train_ues > q.train_ues);
        assert!(f.max_len > q.max_len);
    }
}
