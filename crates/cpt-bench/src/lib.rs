//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5 + Appendix B) on the simulated carrier trace.
//!
//! The entry point is the `experiments` binary
//! (`cargo run --release -p cpt-bench --bin experiments -- all`), which
//! dispatches to one function per table/figure in [`experiments`]. Shared
//! dataset/model plumbing lives in [`pipeline`]; run sizes in [`Scale`].
//!
//! Absolute numbers differ from the paper (CPU-sized models on a
//! simulated trace vs A100-trained models on a 73 M-event carrier trace);
//! the *shape* of every comparison — who wins, by roughly what factor —
//! is what these experiments reproduce. See EXPERIMENTS.md for the
//! paper-vs-measured record.

pub mod experiments;
pub mod output;
pub mod pipeline;
pub mod suite;
pub mod throughput;

use cpt_gpt::{CptGptConfig, TrainConfig};
use cpt_netshare::NetShareConfig;

/// Run sizes for the experiment suite.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable name ("quick" / "full" / "tiny").
    pub name: &'static str,
    /// UEs per device type in each training trace.
    pub train_ues: usize,
    /// UEs per device type in each held-out test trace.
    pub test_ues: usize,
    /// Streams synthesized per generator for fidelity evaluation (the
    /// paper uses 1000).
    pub gen_streams: usize,
    /// Maximum stream length (the paper uses 500).
    pub max_len: usize,
    /// CPT-GPT architecture.
    pub gpt: CptGptConfig,
    /// CPT-GPT optimization settings.
    pub gpt_train: TrainConfig,
    /// NetShare architecture + optimization settings.
    pub ns: NetShareConfig,
    /// k for the clustered SMM ensemble (the paper's SMM-20k mechanism).
    pub smm_clusters: usize,
    /// Synthesized population sizes for the Fig. 6 scalability sweep.
    pub fig6_sizes: Vec<usize>,
    /// Hours covered by the transfer-learning experiments (the paper
    /// uses 6).
    pub hours: usize,
    /// Snapshot cadence (epochs) for the §5.5 checkpoint-time methodology.
    pub snapshot_every: usize,
    /// Streams generated per snapshot when scoring checkpoints.
    pub snapshot_eval_streams: usize,
}

impl Scale {
    /// Minutes-scale run used by CI, tests and `cargo bench`.
    pub fn quick() -> Self {
        let max_len = 48;
        Scale {
            name: "quick",
            train_ues: 600,
            test_ues: 600,
            gen_streams: 500,
            max_len,
            gpt: CptGptConfig {
                d_model: 32,
                n_blocks: 2,
                n_heads: 4,
                d_mlp: 96,
                d_head: 32,
                max_len,
                ..CptGptConfig::small()
            },
            gpt_train: TrainConfig {
                epochs: 32,
                batch_size: 32,
                lr: 6e-3,
                warmup_steps: 20,
                clip_norm: 1.0,
                seed: 0,
                snapshot_every: None,
                ..TrainConfig::quick()
            },
            ns: NetShareConfig {
                hidden: 32,
                noise_dim: 12,
                batch_gen: 5,
                max_len,
                d_hidden: 32,
                epochs: 24,
                batch_size: 32,
                ..NetShareConfig::small()
            },
            smm_clusters: 16,
            fig6_sizes: vec![125, 250, 500, 1000, 2000],
            hours: 6,
            snapshot_every: 4,
            snapshot_eval_streams: 100,
        }
    }

    /// Larger run for the recorded EXPERIMENTS.md numbers (tens of
    /// minutes on a multicore CPU).
    pub fn full() -> Self {
        let max_len = 96;
        Scale {
            name: "full",
            train_ues: 1200,
            test_ues: 1200,
            gen_streams: 1000,
            max_len,
            gpt: CptGptConfig {
                d_model: 48,
                n_blocks: 2,
                n_heads: 4,
                d_mlp: 192,
                d_head: 48,
                max_len,
                ..CptGptConfig::small()
            },
            gpt_train: TrainConfig {
                epochs: 40,
                batch_size: 32,
                lr: 6e-3,
                warmup_steps: 30,
                clip_norm: 1.0,
                seed: 0,
                snapshot_every: None,
                ..TrainConfig::quick()
            },
            ns: NetShareConfig {
                hidden: 48,
                noise_dim: 16,
                batch_gen: 5,
                max_len,
                d_hidden: 48,
                epochs: 40,
                batch_size: 32,
                ..NetShareConfig::small()
            },
            smm_clusters: 24,
            fig6_sizes: vec![250, 500, 1000, 2000, 4000],
            hours: 6,
            snapshot_every: 5,
            snapshot_eval_streams: 250,
        }
    }

    /// Seconds-scale run for supervisor/resume tests and the CI smoke
    /// job: every stage exercises its real code path, but models are as
    /// small as the transfer protocol allows (`hours` must stay >= 4
    /// because Table 10 compares hour-3 models). Numbers produced at this
    /// scale are meaningless; only the plumbing is under test.
    pub fn tiny() -> Self {
        let max_len = 16;
        Scale {
            name: "tiny",
            train_ues: 48,
            test_ues: 48,
            gen_streams: 32,
            max_len,
            gpt: CptGptConfig {
                d_model: 16,
                n_blocks: 1,
                n_heads: 2,
                d_mlp: 32,
                d_head: 16,
                max_len,
                ..CptGptConfig::small()
            },
            gpt_train: TrainConfig {
                epochs: 2,
                batch_size: 16,
                lr: 6e-3,
                warmup_steps: 4,
                clip_norm: 1.0,
                seed: 0,
                snapshot_every: None,
                ..TrainConfig::quick()
            },
            ns: NetShareConfig {
                hidden: 12,
                noise_dim: 6,
                batch_gen: 4,
                max_len,
                d_hidden: 12,
                epochs: 2,
                batch_size: 16,
                ..NetShareConfig::small()
            },
            smm_clusters: 4,
            fig6_sizes: vec![16, 32],
            hours: 4,
            snapshot_every: 1,
            snapshot_eval_streams: 16,
        }
    }

    /// Scale by name.
    pub fn by_name(name: &str) -> Option<Scale> {
        match name {
            "quick" => Some(Scale::quick()),
            "full" => Some(Scale::full()),
            "tiny" => Some(Scale::tiny()),
            _ => None,
        }
    }
}
