//! Experiment output sink: prints to stdout and mirrors everything into a
//! results directory (tables as text, figure series as CSV).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Collects experiment output.
pub struct Output {
    dir: PathBuf,
}

impl Output {
    /// Creates (if necessary) the results directory.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<Output> {
        fs::create_dir_all(dir.as_ref())?;
        Ok(Output {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// The results directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Prints `text` and appends it to `<dir>/<name>.txt`.
    pub fn table(&self, name: &str, text: &str) {
        println!("{text}");
        if let Err(e) = fs::write(self.dir.join(format!("{name}.txt")), text) {
            eprintln!("warning: could not write {name}.txt: {e}");
        }
    }

    /// Writes CSV series for a figure: one header row then data rows.
    pub fn csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        let path = self.dir.join(format!("{name}.csv"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&path)?;
            writeln!(f, "{}", headers.join(","))?;
            for row in rows {
                writeln!(f, "{}", row.join(","))?;
            }
            Ok(())
        };
        match write() {
            Ok(()) => println!("  [wrote {} rows to {}]", rows.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {name}.csv: {e}"),
        }
    }

    /// Status line.
    pub fn note(&self, msg: &str) {
        println!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_tables_and_csv() {
        let dir = std::env::temp_dir().join(format!("cpt-bench-out-{}", std::process::id()));
        let out = Output::new(&dir).unwrap();
        out.table("t_test", "| a |\n| 1 |\n");
        out.csv("f_test", &["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert!(dir.join("t_test.txt").exists());
        let csv = fs::read_to_string(dir.join("f_test.csv")).unwrap();
        assert_eq!(csv, "x,y\n1,2\n");
        fs::remove_dir_all(&dir).ok();
    }
}
