//! End-to-end throughput measurement behind `cptgen bench`.
//!
//! Criterion tracks per-kernel latency (`benches/micro.rs`); this module
//! answers the coarser operational question — how many training tokens and
//! generated streams per second does the whole pipeline sustain, and at
//! what peak memory — and serializes the answer as one JSON report
//! (`BENCH_throughput.json`) that CI diffs against a committed baseline.
//! A >2× drop on any throughput metric fails the build (see
//! [`check_regression`]); the generous factor keeps runner-to-runner noise
//! from flaking while still catching real regressions like an
//! accidentally-disabled kernel path.

use cpt_gpt::{
    CptGpt, CptGptConfig, GenerateConfig, GenerateError, StreamParams, Tokenizer, TrainConfig,
    TrainError,
};
use cpt_nn::Tensor;
use cpt_serve::{Engine, ServeConfig, ServeError, SessionEvent, SessionId};
use cpt_trace::columnar::{write_ctb, ColumnarReader};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A throughput measurement failed in the warm-up training or generation
/// it runs to have something to time.
#[derive(Debug)]
pub enum MeasureError {
    /// The warm-up training run failed.
    Train(TrainError),
    /// The timed generation run failed.
    Generate(GenerateError),
    /// The timed serving run failed.
    Serve(ServeError),
    /// A dedicated measurement thread pool could not be built.
    Pool(String),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Train(e) => write!(f, "bench training failed: {e}"),
            MeasureError::Generate(e) => write!(f, "bench generation failed: {e}"),
            MeasureError::Serve(e) => write!(f, "bench serving failed: {e}"),
            MeasureError::Pool(e) => write!(f, "bench thread pool failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasureError::Train(e) => Some(e),
            MeasureError::Generate(e) => Some(e),
            MeasureError::Serve(e) => Some(e),
            MeasureError::Pool(_) => None,
        }
    }
}

impl From<TrainError> for MeasureError {
    fn from(e: TrainError) -> Self {
        MeasureError::Train(e)
    }
}

impl From<GenerateError> for MeasureError {
    fn from(e: GenerateError) -> Self {
        MeasureError::Generate(e)
    }
}

impl From<ServeError> for MeasureError {
    fn from(e: ServeError) -> Self {
        MeasureError::Serve(e)
    }
}

/// One throughput measurement run, serialized to `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Dense 128×128×128 matmul rate through the packed kernel.
    pub matmul_gflops: f64,
    /// Token positions per second through a full data-parallel training
    /// step (sharded forward + backward + fixed-order gradient reduction)
    /// on the ambient rayon pool — the multi-thread figure.
    pub train_tokens_per_sec: f64,
    /// Same measurement pinned to a 1-thread pool. Together with
    /// [`train_tokens_per_sec`](ThroughputReport::train_tokens_per_sec)
    /// this records the data-parallel speedup on the machine that produced
    /// the report. 0 in reports written before data-parallel training
    /// existed (serde default).
    #[serde(default)]
    pub train_tokens_per_sec_1thread: f64,
    /// `train_tokens_per_sec / train_tokens_per_sec_1thread`; 0 in old
    /// reports.
    #[serde(default)]
    pub train_speedup: f64,
    /// Streams per second through batched KV-cached generation.
    pub generate_streams_per_sec: f64,
    /// Generated event tokens per second.
    pub generate_tokens_per_sec: f64,
    /// Event tokens per second through the cpt-serve engine's batched
    /// cross-session decode path (packed per-layer GEMMs over every
    /// runnable session a worker holds), 64 concurrent sessions. 0 in
    /// reports written before batched serving existed (serde default).
    #[serde(default)]
    pub serve_tokens_per_sec: f64,
    /// Sessions driven to completion per second through the batched path.
    #[serde(default)]
    pub serve_sessions_per_sec: f64,
    /// Same measurement through the `--no-batch-decode` sequential
    /// fallback — the bit-identity oracle the batched path is asserted
    /// against on every bench run.
    #[serde(default)]
    pub serve_tokens_per_sec_sequential: f64,
    /// `serve_tokens_per_sec / serve_tokens_per_sec_sequential`; records
    /// the packing-amortization win on the machine that produced the
    /// report. Gated by `cptgen bench --min-serve-speedup`, not by the
    /// baseline diff (it is machine-shape-dependent).
    #[serde(default)]
    pub serve_speedup: f64,
    /// Batched serving through the int8 per-channel-quantized weight path
    /// (`--quantized`; approximate, gated separately).
    #[serde(default)]
    pub serve_tokens_per_sec_quantized: f64,
    /// Sessions driven to completion per second through the
    /// shared-nothing sharded front end: 8 shards, a micro model, and a
    /// multi-threaded driver, so verb/lock traffic (what sharding
    /// removes) dominates per-session cost. 0 in reports written before
    /// sharding existed (serde default).
    #[serde(default)]
    pub serve_sessions_per_sec_sharded: f64,
    /// `serve_sessions_per_sec_sharded / the same workload at 1 shard`;
    /// records the contention win on the machine that produced the
    /// report. Gated by `cptgen bench --min-shard-speedup`, not by the
    /// baseline diff (it is machine-shape-dependent).
    #[serde(default)]
    pub shard_speedup: f64,
    /// Event tokens per second through the hot-swap-under-load scenario:
    /// the same 64 sessions as the batched figure, but a second model
    /// version is promoted mid-drain while every original session stays
    /// pinned to (and completes byte-identically on) the version it
    /// opened with. Informational — the byte-identity assertion is the
    /// gate, not the rate. 0 in reports written before hot swap existed.
    #[serde(default)]
    pub serve_tokens_per_sec_swap: f64,
    /// Bytes per second (GB/s) written through the streaming `.ctb`
    /// columnar writer, including the fsync-then-rename commit. 0 in
    /// reports written before the columnar trace format existed (serde
    /// default).
    #[serde(default)]
    pub trace_write_gbps: f64,
    /// Bytes per second (GB/s) through open + full decode of the same
    /// `.ctb` file back into a [`Dataset`], asserted equal to the source
    /// on every run. 0 in old reports.
    #[serde(default)]
    pub trace_read_gbps: f64,
    /// Peak resident set size (VmHWM) at the end of the run, in bytes.
    /// 0 when the platform does not expose it.
    pub peak_rss_bytes: u64,
    /// Rayon threads available during the run.
    pub threads: usize,
}

/// Peak resident set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status`. Returns 0 where procfs is unavailable (non-Linux).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Strict SRV_REQ/S1_CONN_REL alternation — cheap to build, non-trivial to
/// model, and identical across runs so reports are comparable.
fn bench_dataset(n_streams: usize, len: usize) -> Dataset {
    let streams = (0..n_streams)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..len)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 90.0 + (i % 7) as f64)
                    } else {
                        (EventType::ConnectionRelease, 8.0 + (i % 3) as f64)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

/// Drives every session to completion on one engine and reports each
/// session's delivered stream plus the wall-clock drain time. Sessions are
/// all opened up front (the 64-concurrent shape the serve gate measures),
/// then round-robin drained in large chunks from this thread.
fn run_serve(
    model: &Arc<CptGpt>,
    cfg: ServeConfig,
    params: &[StreamParams],
) -> Result<(Vec<Vec<SessionEvent>>, f64), MeasureError> {
    let engine = Engine::start(Arc::clone(model), cfg)?;
    let handle = engine.handle();
    let start = Instant::now();
    let ids: Vec<SessionId> = params
        .iter()
        .map(|p| handle.open_session(*p))
        .collect::<Result<_, _>>()?;
    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
    let mut done = vec![false; ids.len()];
    while !done.iter().all(|d| *d) {
        for (i, id) in ids.iter().enumerate() {
            if done[i] {
                continue;
            }
            let b = handle.next_events(*id, 256, Duration::from_secs(60))?;
            outputs[i].extend(b.events);
            if b.finished {
                handle.close_session(*id)?;
                done[i] = true;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    engine.shutdown();
    Ok((outputs, secs))
}

/// Drives every session to completion with `drivers` concurrent client
/// threads, each owning an even chunk of `params` — the multi-client
/// shape that makes the shard lock the bottleneck at 1 shard. Returns
/// per-session outputs in `params` order plus the wall-clock drain time.
fn run_serve_parallel(
    model: &Arc<CptGpt>,
    cfg: ServeConfig,
    params: &[StreamParams],
    drivers: usize,
) -> Result<(Vec<Vec<SessionEvent>>, f64), MeasureError> {
    let engine = Engine::start(Arc::clone(model), cfg)?;
    let handle = engine.handle();
    let start = Instant::now();
    let chunk = params.len().div_ceil(drivers.max(1)).max(1);
    let per_chunk: Vec<Vec<Vec<SessionEvent>>> = std::thread::scope(|s| {
        let joins: Vec<_> = params
            .chunks(chunk)
            .map(|my_params| {
                let handle = handle.clone();
                s.spawn(move || -> Result<Vec<Vec<SessionEvent>>, ServeError> {
                    let ids: Vec<SessionId> = my_params
                        .iter()
                        .map(|p| handle.open_session(*p))
                        .collect::<Result<_, _>>()?;
                    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
                    let mut done = vec![false; ids.len()];
                    while !done.iter().all(|d| *d) {
                        for (i, id) in ids.iter().enumerate() {
                            if done[i] {
                                continue;
                            }
                            let b = handle.next_events(*id, 64, Duration::from_secs(60))?;
                            outputs[i].extend(b.events);
                            if b.finished {
                                handle.close_session(*id)?;
                                done[i] = true;
                            }
                        }
                    }
                    Ok(outputs)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| {
                j.join()
                    .map_err(|_| MeasureError::Pool("serve driver thread panicked".into()))?
                    .map_err(MeasureError::from)
            })
            .collect::<Result<_, _>>()
    })?;
    let secs = start.elapsed().as_secs_f64();
    engine.shutdown();
    Ok((per_chunk.into_iter().flatten().collect(), secs))
}

/// The hot-swap-under-load scenario: open every session on version 1,
/// drain one round, promote version 2 mid-flight, open (and fully drain)
/// a handful of new sessions — which must land on v2 — then finish the
/// originals. Returns the v1 sessions' outputs (asserted byte-identical
/// to an un-swapped run by the caller), the total event count including
/// the v2 sessions, and the wall-clock time.
fn run_swap_serve(
    v1: &Arc<CptGpt>,
    v2: &Arc<CptGpt>,
    cfg: ServeConfig,
    params: &[StreamParams],
) -> Result<(Vec<Vec<SessionEvent>>, usize, f64), MeasureError> {
    let engine = Engine::start(Arc::clone(v1), cfg)?;
    let handle = engine.handle();
    let start = Instant::now();
    let ids: Vec<SessionId> = params
        .iter()
        .map(|p| handle.open_session(*p))
        .collect::<Result<_, _>>()?;
    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
    let mut done = vec![false; ids.len()];
    let mut extra_events = 0usize;
    let mut swapped = false;
    while !done.iter().all(|d| *d) {
        for (i, id) in ids.iter().enumerate() {
            if done[i] {
                continue;
            }
            // Small chunks so the originals are still mid-stream when the
            // promotion lands.
            let b = handle.next_events(*id, 24, Duration::from_secs(60))?;
            outputs[i].extend(b.events);
            if b.finished {
                handle.close_session(*id)?;
                done[i] = true;
            }
        }
        if !swapped {
            swapped = true;
            handle.install_version(2, Arc::clone(v2));
            handle.promote_version(2)?;
            assert_eq!(handle.live_version(), 2, "promotion must flip the live version");
            // New sessions open on v2 while the originals keep draining
            // pinned to v1.
            for k in 0..8u64 {
                let id = handle.open_session(StreamParams::new(9000 + k * 17).streams(1))?;
                loop {
                    let b = handle.next_events(id, 256, Duration::from_secs(60))?;
                    extra_events += b.events.len();
                    if b.finished {
                        handle.close_session(id)?;
                        break;
                    }
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let total: usize = outputs.iter().map(|s| s.len()).sum::<usize>() + extra_events;
    engine.shutdown();
    Ok((outputs, total, secs))
}

fn time_loop(mut f: impl FnMut(), iters: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64()
}

/// Runs the full measurement suite. `quick` shrinks iteration counts to
/// CI-smoke size (a few seconds); `!quick` runs longer for stabler numbers.
pub fn measure(quick: bool) -> Result<ThroughputReport, MeasureError> {
    let mut rng = StdRng::seed_from_u64(7);

    // Kernel rate: 128³ matmul, the shape the criterion bench tracks.
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let iters = if quick { 50 } else { 400 };
    let secs = time_loop(
        || {
            std::hint::black_box(a.matmul(&b));
        },
        iters,
    );
    let matmul_gflops = (2.0 * 128f64.powi(3) * iters as f64) / secs / 1e9;

    // Training throughput: tokens (batch positions) per second through a
    // full train step on a paper-shaped small model.
    let data = bench_dataset(64, 12);
    let tok = Tokenizer::fit(&data);
    let cfg = CptGptConfig {
        d_model: 32,
        n_blocks: 2,
        n_heads: 4,
        d_mlp: 96,
        d_head: 32,
        max_len: 16,
        ..CptGptConfig::small()
    };
    let mut model = CptGpt::new(cfg, tok.clone());
    // One optimizer step's worth of micro-batch shards: 64 streams cut
    // into 8 shards of 8, the same layout `TrainConfig { batch_size: 64,
    // microbatch: 8 }` would produce.
    let shards: Vec<cpt_gpt::Batch> = data
        .streams
        .chunks(8)
        .map(|chunk| {
            let refs: Vec<&Stream> = chunk.iter().collect();
            cpt_gpt::build_batch(&tok, &refs, 16)
        })
        .collect();
    let tokens_per_step: f64 = shards.iter().map(|b| (b.batch * b.seq) as f64).sum();
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| MeasureError::Pool(e.to_string()))?;
    // Warm up arenas/pack buffers in both pools, and assert the 1-thread
    // and multi-thread steps agree bit for bit — the determinism contract
    // DESIGN.md §13 documents, checked on every bench run.
    let warm_1 = one.install(|| cpt_gpt::parallel_grad_step(&model, &shards));
    let warm_mt = cpt_gpt::parallel_grad_step(&model, &shards);
    assert_eq!(
        warm_1.loss.to_bits(),
        warm_mt.loss.to_bits(),
        "train step loss must be thread-count-invariant"
    );
    for ((ia, ga), (ib, gb)) in warm_1.grads.iter().zip(&warm_mt.grads) {
        assert_eq!(ia, ib, "gradient sets must align");
        assert_eq!(
            ga.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            gb.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "train step gradients must be thread-count-invariant"
        );
    }
    let iters = if quick { 4 } else { 30 };
    let secs_1 = one.install(|| {
        time_loop(
            || {
                std::hint::black_box(cpt_gpt::parallel_grad_step(&model, &shards));
            },
            iters,
        )
    });
    let train_tokens_per_sec_1thread = tokens_per_step * iters as f64 / secs_1;
    let secs_mt = time_loop(
        || {
            std::hint::black_box(cpt_gpt::parallel_grad_step(&model, &shards));
        },
        iters,
    );
    let train_tokens_per_sec = tokens_per_step * iters as f64 / secs_mt;
    let train_speedup = train_tokens_per_sec / train_tokens_per_sec_1thread;

    // Generation throughput: train briefly so the initial-event
    // distribution exists, then time batched parallel generation.
    cpt_gpt::train(
        &mut model,
        &data,
        &TrainConfig::quick().with_epochs(if quick { 2 } else { 8 }),
    )?;
    let n_streams = if quick { 64 } else { 256 };
    let gen_cfg = GenerateConfig {
        batch_size: 16,
        ..GenerateConfig::new(n_streams, 11)
    };
    let warm = model.generate(&gen_cfg)?;
    let start = Instant::now();
    let out = model.generate(&gen_cfg)?;
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(warm, out, "generation must be deterministic");
    let total_events: usize = out.streams.iter().map(|s| s.len()).sum();
    let generate_streams_per_sec = n_streams as f64 / secs;
    let generate_tokens_per_sec = total_events as f64 / secs;

    // Serve throughput: 64 concurrent sessions through the cpt-serve
    // engine, batched cross-session decode vs the sequential fallback.
    // The model is sized so the per-layer GEMMs dominate per-token cost
    // (that is what batching amortizes); both paths are asserted
    // byte-identical on every run — the bit-identity contract DESIGN.md
    // §15 documents, checked here the same way the train step checks
    // thread-count invariance above.
    let serve_data = bench_dataset(48, 14);
    let serve_model_cfg = CptGptConfig {
        d_model: 64,
        n_blocks: 2,
        n_heads: 4,
        d_mlp: 192,
        d_head: 64,
        max_len: 24,
        ..CptGptConfig::small()
    };
    let mut serve_model = CptGpt::new(serve_model_cfg, Tokenizer::fit(&serve_data));
    cpt_gpt::train(
        &mut serve_model,
        &serve_data,
        &TrainConfig::quick().with_epochs(if quick { 1 } else { 3 }),
    )?;
    let serve_model = Arc::new(serve_model);
    let n_sessions = 64u64;
    let serve_params: Vec<StreamParams> = (0..n_sessions)
        .map(|i| StreamParams::new(5000 + i * 13).streams(if quick { 1 } else { 2 }))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    let base = ServeConfig::new(workers);
    let (seq_out, seq_secs) = run_serve(
        &serve_model,
        ServeConfig { batch_decode: false, ..base },
        &serve_params,
    )?;
    let (bat_out, bat_secs) = run_serve(
        &serve_model,
        ServeConfig { batch_decode: true, batch_max: 64, ..base },
        &serve_params,
    )?;
    assert_eq!(
        seq_out, bat_out,
        "batched serve decode must be byte-identical to the sequential path"
    );
    let (quant_out, quant_secs) = run_serve(
        &serve_model,
        ServeConfig { quantized: true, batch_decode: true, batch_max: 64, ..base },
        &serve_params,
    )?;
    let serve_tokens: usize = bat_out.iter().map(|s| s.len()).sum();
    let quant_tokens: usize = quant_out.iter().map(|s| s.len()).sum();
    let serve_tokens_per_sec = serve_tokens as f64 / bat_secs;
    let serve_tokens_per_sec_sequential = serve_tokens as f64 / seq_secs;

    // Hot swap under load: promote a differently-trained v2 mid-drain.
    // The original sessions are pinned to v1, so their outputs must match
    // the un-swapped batched run byte for byte — the version-pinning
    // contract DESIGN.md §16 documents, checked on every bench run.
    let mut v2 = (*serve_model).clone();
    cpt_gpt::train(&mut v2, &serve_data, &TrainConfig::quick().with_epochs(1))?;
    let v2 = Arc::new(v2);
    let (swap_out, swap_tokens, swap_secs) = run_swap_serve(
        &serve_model,
        &v2,
        ServeConfig { batch_decode: true, batch_max: 64, ..base },
        &serve_params,
    )?;
    assert_eq!(
        swap_out, bat_out,
        "sessions pinned across a hot swap must complete byte-identically"
    );

    // Shared-nothing sharding: the same micro-session workload through
    // 1 shard vs 8, multi-threaded driver on both sides. The model is
    // deliberately tiny so per-event decode cost is small and the shard
    // mutex/condvar traffic — what sharding removes — dominates. Outputs
    // are asserted byte-identical across shard counts on every run: the
    // seed-determined steering contract DESIGN.md §18 documents, checked
    // here the same way the train step checks thread-count invariance.
    let shard_data = bench_dataset(32, 10);
    let shard_model_cfg = CptGptConfig {
        d_model: 16,
        n_blocks: 1,
        n_heads: 2,
        d_mlp: 48,
        d_head: 16,
        max_len: 16,
        ..CptGptConfig::small()
    };
    let mut shard_model = CptGpt::new(shard_model_cfg, Tokenizer::fit(&shard_data));
    cpt_gpt::train(&mut shard_model, &shard_data, &TrainConfig::quick().with_epochs(1))?;
    let shard_model = Arc::new(shard_model);
    let n_shard_sessions = if quick { 96u64 } else { 384 };
    let shard_params: Vec<StreamParams> = (0..n_shard_sessions)
        .map(|i| StreamParams::new(7000 + i * 11).streams(1))
        .collect();
    let drivers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    // Same total worker count on both sides; only the shard count (and
    // with it, how the workers and sessions are partitioned) differs.
    let shard_base = ServeConfig {
        workers: 8,
        ..ServeConfig::new(8)
    };
    let (one_out, one_secs) = run_serve_parallel(
        &shard_model,
        ServeConfig { shards: 1, ..shard_base },
        &shard_params,
        drivers,
    )?;
    let (sharded_out, sharded_secs) = run_serve_parallel(
        &shard_model,
        ServeConfig { shards: 8, ..shard_base },
        &shard_params,
        drivers,
    )?;
    assert_eq!(
        one_out, sharded_out,
        "per-session serve output must be byte-identical at any shard count"
    );
    let serve_sessions_per_sec_sharded = n_shard_sessions as f64 / sharded_secs;
    let shard_speedup = one_secs / sharded_secs;

    // Trace data plane: columnar `.ctb` write and read rates through the
    // out-of-core path `cptgen trace` / streaming train use. The decode is
    // asserted to roundtrip the source dataset exactly on every run — the
    // bit-exactness contract DESIGN.md §17 documents — so a rate gained by
    // corrupting the format can never pass the gate.
    let trace_data = bench_dataset(if quick { 512 } else { 4096 }, 64);
    let mut ctb_path = std::env::temp_dir();
    ctb_path.push(format!("cpt-bench-trace-{}.ctb", std::process::id()));
    let iters = if quick { 3 } else { 12 };
    let secs = time_loop(
        || {
            write_ctb(&trace_data, &ctb_path).expect("bench ctb write");
        },
        iters,
    );
    let ctb_bytes = std::fs::metadata(&ctb_path)
        .map(|m| m.len())
        .expect("bench ctb just written") as f64;
    let trace_write_gbps = ctb_bytes * iters as f64 / secs / 1e9;
    let decoded = ColumnarReader::open(&ctb_path)
        .expect("bench ctb open")
        .to_dataset()
        .expect("bench ctb decode");
    assert_eq!(
        decoded, trace_data,
        "ctb decode must roundtrip the bench dataset exactly"
    );
    let secs = time_loop(
        || {
            let r = ColumnarReader::open(&ctb_path).expect("bench ctb open");
            std::hint::black_box(r.to_dataset().expect("bench ctb decode"));
        },
        iters,
    );
    let trace_read_gbps = ctb_bytes * iters as f64 / secs / 1e9;
    std::fs::remove_file(&ctb_path).ok();

    Ok(ThroughputReport {
        matmul_gflops,
        train_tokens_per_sec,
        train_tokens_per_sec_1thread,
        train_speedup,
        generate_streams_per_sec,
        generate_tokens_per_sec,
        serve_tokens_per_sec,
        serve_sessions_per_sec: n_sessions as f64 / bat_secs,
        serve_tokens_per_sec_sequential,
        serve_speedup: serve_tokens_per_sec / serve_tokens_per_sec_sequential,
        serve_tokens_per_sec_quantized: quant_tokens as f64 / quant_secs,
        serve_sessions_per_sec_sharded,
        shard_speedup,
        serve_tokens_per_sec_swap: swap_tokens as f64 / swap_secs,
        trace_write_gbps,
        trace_read_gbps,
        peak_rss_bytes: peak_rss_bytes(),
        threads: rayon::current_num_threads(),
    })
}

/// Compares `current` against `baseline`: any throughput metric below
/// `baseline / max_regression` is a failure. Peak RSS is informational
/// only (it varies with allocator and platform, not with the code paths
/// this harness guards). Returns human-readable failure lines, empty when
/// the run passes.
pub fn check_regression(
    current: &ThroughputReport,
    baseline: &ThroughputReport,
    max_regression: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut gate = |name: &str, cur: f64, base: f64| {
        if base > 0.0 && cur < base / max_regression {
            failures.push(format!(
                "{name}: {cur:.2} is more than {max_regression}x below baseline {base:.2}"
            ));
        }
    };
    gate("matmul_gflops", current.matmul_gflops, baseline.matmul_gflops);
    gate(
        "train_tokens_per_sec",
        current.train_tokens_per_sec,
        baseline.train_tokens_per_sec,
    );
    // Baselines written before data-parallel training carry 0 here, which
    // the closure's `base > 0` test skips.
    gate(
        "train_tokens_per_sec_1thread",
        current.train_tokens_per_sec_1thread,
        baseline.train_tokens_per_sec_1thread,
    );
    gate(
        "generate_streams_per_sec",
        current.generate_streams_per_sec,
        baseline.generate_streams_per_sec,
    );
    gate(
        "generate_tokens_per_sec",
        current.generate_tokens_per_sec,
        baseline.generate_tokens_per_sec,
    );
    // Baselines written before batched serving carry 0 in all four serve
    // metrics, which the closure's `base > 0` test skips. `serve_speedup`
    // is deliberately not gated here — it depends on the runner's core
    // count, so it gets its own explicit `--min-serve-speedup` gate.
    gate(
        "serve_tokens_per_sec",
        current.serve_tokens_per_sec,
        baseline.serve_tokens_per_sec,
    );
    gate(
        "serve_sessions_per_sec",
        current.serve_sessions_per_sec,
        baseline.serve_sessions_per_sec,
    );
    gate(
        "serve_tokens_per_sec_sequential",
        current.serve_tokens_per_sec_sequential,
        baseline.serve_tokens_per_sec_sequential,
    );
    gate(
        "serve_tokens_per_sec_quantized",
        current.serve_tokens_per_sec_quantized,
        baseline.serve_tokens_per_sec_quantized,
    );
    // Pre-sharding baselines carry 0 here, skipped by `base > 0`.
    // `shard_speedup` is deliberately not gated — like `serve_speedup`,
    // it depends on the runner's core count, so it gets its own explicit
    // `--min-shard-speedup` gate.
    gate(
        "serve_sessions_per_sec_sharded",
        current.serve_sessions_per_sec_sharded,
        baseline.serve_sessions_per_sec_sharded,
    );
    // Baselines written before the columnar trace format carry 0 in both
    // trace metrics, which the closure's `base > 0` test skips.
    gate(
        "trace_write_gbps",
        current.trace_write_gbps,
        baseline.trace_write_gbps,
    );
    gate(
        "trace_read_gbps",
        current.trace_read_gbps,
        baseline.trace_read_gbps,
    );
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(x: f64) -> ThroughputReport {
        ThroughputReport {
            matmul_gflops: x,
            train_tokens_per_sec: 10.0 * x,
            train_tokens_per_sec_1thread: 8.0 * x,
            train_speedup: 1.25,
            generate_streams_per_sec: x / 2.0,
            generate_tokens_per_sec: 5.0 * x,
            serve_tokens_per_sec: 6.0 * x,
            serve_sessions_per_sec: x / 4.0,
            serve_tokens_per_sec_sequential: 3.0 * x,
            serve_speedup: 2.0,
            serve_tokens_per_sec_quantized: 7.0 * x,
            serve_sessions_per_sec_sharded: x / 5.0,
            // Speedup ratio: machine-dependent, never baseline-gated.
            shard_speedup: 4.0,
            // Informational only — never baseline-gated, so the
            // exactly-12-failures count below stays stable.
            serve_tokens_per_sec_swap: 5.5 * x,
            trace_write_gbps: x / 8.0,
            trace_read_gbps: x / 4.0,
            peak_rss_bytes: 1 << 20,
            threads: 1,
        }
    }

    #[test]
    fn regression_gate_passes_within_factor() {
        let base = report(10.0);
        let ok = report(6.0); // within 2x of 10
        assert!(check_regression(&ok, &base, 2.0).is_empty());
        // Improvements always pass.
        assert!(check_regression(&report(40.0), &base, 2.0).is_empty());
    }

    #[test]
    fn regression_gate_fails_beyond_factor() {
        let base = report(10.0);
        let bad = report(4.0); // below 10/2
        let failures = check_regression(&bad, &base, 2.0);
        assert_eq!(failures.len(), 12, "{failures:?}");
        assert!(failures[0].contains("matmul_gflops"));
        assert!(failures
            .iter()
            .any(|f| f.contains("train_tokens_per_sec_1thread")));
        assert!(failures.iter().any(|f| f.contains("serve_tokens_per_sec:")));
        assert!(failures
            .iter()
            .any(|f| f.contains("serve_tokens_per_sec_quantized")));
        assert!(failures.iter().any(|f| f.contains("trace_write_gbps")));
        assert!(failures.iter().any(|f| f.contains("trace_read_gbps")));
        assert!(failures
            .iter()
            .any(|f| f.contains("serve_sessions_per_sec_sharded")));
        // Speedup ratios are machine-dependent and never baseline-gated.
        assert!(!failures.iter().any(|f| f.contains("serve_speedup")));
        assert!(!failures.iter().any(|f| f.contains("shard_speedup")));
    }

    #[test]
    fn pre_data_parallel_baselines_still_parse_and_skip_new_gates() {
        // A baseline written before the 1-thread train metric existed has
        // neither new field; serde must default them to 0 and the gate
        // must then skip them.
        let json = r#"{"matmul_gflops": 4.0, "train_tokens_per_sec": 2000.0,
                       "generate_streams_per_sec": 5.0,
                       "generate_tokens_per_sec": 100.0,
                       "peak_rss_bytes": 0, "threads": 1}"#;
        let base: ThroughputReport = serde_json::from_str(json).unwrap();
        assert_eq!(base.train_tokens_per_sec_1thread, 0.0);
        assert_eq!(base.train_speedup, 0.0);
        // Pre-batched-serving baselines likewise default the serve
        // metrics to 0, skipping those gates — and pre-columnar-format
        // baselines the trace metrics.
        assert_eq!(base.serve_tokens_per_sec, 0.0);
        assert_eq!(base.serve_tokens_per_sec_quantized, 0.0);
        assert_eq!(base.serve_sessions_per_sec_sharded, 0.0);
        assert_eq!(base.shard_speedup, 0.0);
        assert_eq!(base.trace_write_gbps, 0.0);
        assert_eq!(base.trace_read_gbps, 0.0);
        let current = report(1000.0);
        assert!(check_regression(&current, &base, 2.0).is_empty());
    }

    #[test]
    fn peak_rss_is_measured_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = report(3.5);
        let json = serde_json::to_string(&r).unwrap();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.matmul_gflops, r.matmul_gflops);
        assert_eq!(back.peak_rss_bytes, r.peak_rss_bytes);
    }
}
