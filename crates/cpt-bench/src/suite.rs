//! Stage supervisor for the experiment suite: isolation, retry, resume.
//!
//! The `experiments` binary used to be a straight-line loop — one panic in
//! table 9 threw away the hours of training that tables 3–8 had already
//! consumed. This module turns every table/figure/ablation into a named
//! *stage* run under a supervisor:
//!
//! - each stage executes behind [`std::panic::catch_unwind`], so a panic
//!   becomes a typed [`SuiteError::Panic`] instead of a process abort;
//! - divergence-class failures ([`SuiteError::is_retryable`]) are retried
//!   with bounded exponential backoff and a *deterministic reseed* — the
//!   attempt number bumps every derived seed through [`bumped`], so retries
//!   explore a different random trajectory but the same plan always
//!   reproduces the same trajectory sequence;
//! - after every stage the supervisor atomically rewrites
//!   `<out>/manifest.json` ([`RunManifest`]) recording status, attempt
//!   count, duration and the seed actually used, so a crash between stages
//!   loses at most the stage in flight;
//! - `--resume` reloads the manifest, skips stages already `completed`
//!   (leaving their output files byte-for-byte untouched), and re-runs the
//!   rest; a corrupt or truncated manifest is moved aside to
//!   `manifest.json.corrupt` and the run starts over rather than panicking;
//! - trained model suites are persisted under `<out>/cache/` keyed by
//!   `(scale, device, seed)` (see [`crate::pipeline::SuiteCache`]) and the
//!   shared transfer-protocol runs under `cache/transfer-<scale>.json`, so
//!   a resumed process reuses models instead of retraining them;
//! - the final [`RunReport`] lists completed / degraded / failed stages
//!   and classifies the run for the exit-code contract: 0 all completed,
//!   8 partial success (some stages completed, some failed), 1 nothing
//!   completed, 2 usage errors (rejected before any stage runs).
//!
//! Stage budgets are *cooperative*: a stage is never killed mid-flight
//! (stages share in-process model caches, so hard-killing would poison
//! them). Instead the budget gates retries — once a stage has spent its
//! wall-clock budget, a failed attempt is not retried but converted to
//! [`SuiteError::Budget`] — and stages that complete over budget are
//! reported as degraded with `over_budget: true` in the manifest.

#![deny(clippy::unwrap_used)]

use crate::experiments::{
    ablations, distributions, downstream, memorization, scalability, transfer, violations,
};
use crate::experiments::transfer::TransferRuns;
use crate::output::Output;
use crate::pipeline::{SuiteCache, BASE_SEED};
use crate::Scale;
use cpt_gpt::{GenerateError, StageFaultPlan, TrainError};
use cpt_netshare::NetShareError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Every stage the suite knows, in the canonical `all` order.
pub const ALL_STAGES: [&str; 16] = [
    "table3",
    "fig2",
    "table4",
    "table5",
    "table6",
    "fig5",
    "table7",
    "table8",
    "fig6",
    "table9",
    "table10",
    "table11",
    "fig7",
    "ablation-logscale",
    "ablation-batchgen",
    "downstream",
];

/// Mixes an attempt bump into a base seed. Bump 0 is the identity, so the
/// fault-free path reproduces the historical seeds bit-for-bit; each retry
/// shifts every derived seed by a splitmix-style odd constant, which keeps
/// distinct bumps from colliding with neighbouring `seed + k` offsets.
pub fn bumped(seed: u64, bump: u64) -> u64 {
    seed.wrapping_add(bump.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Typed failure of one suite stage (or of suite bookkeeping).
#[derive(Debug)]
pub enum SuiteError {
    /// CPT-GPT training or fine-tuning failed.
    Train(TrainError),
    /// CPT-GPT generation failed.
    Generate(GenerateError),
    /// NetShare training, fine-tuning or generation failed.
    NetShare(NetShareError),
    /// A configuration precondition failed (unknown stage, bad flag value,
    /// scale too small for the experiment). Rejected before any stage runs
    /// where possible; maps to the usage exit code.
    Config {
        /// What was wrong.
        what: String,
    },
    /// Filesystem error on suite state (manifest, cache, results dir).
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// The stage panicked; the payload message is preserved.
    Panic {
        /// Panic payload, downcast to a string when possible.
        detail: String,
    },
    /// A deterministic injected fault (from `--inject-fail`) fired.
    Injected {
        /// Stage the fault was scheduled for.
        stage: String,
        /// Attempt number (1-based) that was failed.
        attempt: u32,
    },
    /// The stage exhausted its wall-clock budget.
    Budget {
        /// Stage that ran over.
        stage: String,
        /// Seconds actually spent.
        elapsed_secs: f64,
        /// Budget that was exceeded.
        budget_secs: f64,
    },
}

impl SuiteError {
    /// True for failure classes where a retry with a fresh seed can
    /// plausibly succeed: training divergence (a different trajectory may
    /// stay finite), panics (often data-dependent), and injected faults
    /// (which model exactly those transient classes). Config, IO, budget
    /// and untrained-model errors are deterministic — retrying repeats
    /// them, so the supervisor fails fast instead.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SuiteError::Train(TrainError::Diverged { .. })
                | SuiteError::Panic { .. }
                | SuiteError::Injected { .. }
        )
    }
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::Train(e) => write!(f, "training failed: {e}"),
            SuiteError::Generate(e) => write!(f, "generation failed: {e}"),
            SuiteError::NetShare(e) => write!(f, "NetShare failed: {e}"),
            SuiteError::Config { what } => write!(f, "configuration error: {what}"),
            SuiteError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            SuiteError::Panic { detail } => write!(f, "stage panicked: {detail}"),
            SuiteError::Injected { stage, attempt } => {
                write!(f, "injected fault: stage {stage} attempt {attempt}")
            }
            SuiteError::Budget {
                stage,
                elapsed_secs,
                budget_secs,
            } => write!(
                f,
                "stage {stage} exceeded its wall-clock budget ({elapsed_secs:.1}s > {budget_secs:.1}s)"
            ),
        }
    }
}

impl std::error::Error for SuiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuiteError::Train(e) => Some(e),
            SuiteError::Generate(e) => Some(e),
            SuiteError::NetShare(e) => Some(e),
            SuiteError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<TrainError> for SuiteError {
    fn from(e: TrainError) -> Self {
        SuiteError::Train(e)
    }
}

impl From<GenerateError> for SuiteError {
    fn from(e: GenerateError) -> Self {
        SuiteError::Generate(e)
    }
}

impl From<NetShareError> for SuiteError {
    fn from(e: NetShareError) -> Self {
        SuiteError::NetShare(e)
    }
}

/// Format version of `manifest.json`; bumped on incompatible layout
/// changes so stale manifests are recovered-from, not misread.
pub const MANIFEST_FORMAT_VERSION: u32 = 1;

/// Terminal status of one stage in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum StageStatus {
    /// The stage finished and its outputs are on disk.
    Completed,
    /// All permitted attempts failed.
    Failed,
}

/// What happened to one stage, as recorded in `manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Terminal status.
    pub status: StageStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock seconds across all attempts.
    pub duration_secs: f64,
    /// Effective base seed of the final attempt (`bumped(BASE_SEED, n-1)`).
    pub seed: u64,
    /// Final error message for failed stages.
    #[serde(default)]
    pub error: Option<String>,
    /// True if the stage ran past its wall-clock budget (degraded even
    /// when it completed).
    #[serde(default)]
    pub over_budget: bool,
}

/// The on-disk record of a suite run, written atomically after every
/// stage. `--resume` trusts `completed` entries and re-runs everything
/// else.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Layout version (see [`MANIFEST_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Scale name the run was started with; a resume under a different
    /// scale must not reuse the records.
    pub scale: String,
    /// The suite-wide base seed.
    pub base_seed: u64,
    /// Per-stage records, keyed by stage name.
    pub stages: BTreeMap<String, StageRecord>,
}

impl RunManifest {
    /// An empty manifest for `scale`.
    pub fn fresh(scale: &str) -> Self {
        RunManifest {
            format_version: MANIFEST_FORMAT_VERSION,
            scale: scale.to_string(),
            base_seed: BASE_SEED,
            stages: BTreeMap::new(),
        }
    }

    /// The manifest path inside `out_dir`.
    pub fn path(out_dir: &Path) -> PathBuf {
        out_dir.join("manifest.json")
    }

    /// Loads the manifest at `path`, tolerating every way it can be bad.
    ///
    /// Missing file → fresh manifest (first run). Unparseable, version-
    /// skewed or wrong-scale file → the file is moved aside to
    /// `<path>.corrupt` (best effort) and a fresh manifest is returned;
    /// the second tuple element is `true` so the caller can warn. Never
    /// panics: a half-written manifest must not take the suite down with
    /// it.
    pub fn load_or_recover(path: &Path, scale: &str) -> (RunManifest, bool) {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(_) => return (RunManifest::fresh(scale), false),
        };
        let parsed: Result<RunManifest, _> = serde_json::from_str(&text);
        match parsed {
            Ok(m) if m.format_version == MANIFEST_FORMAT_VERSION && m.scale == scale => (m, false),
            _ => {
                let backup = path.with_extension("json.corrupt");
                let _ = std::fs::rename(path, &backup);
                (RunManifest::fresh(scale), true)
            }
        }
    }

    /// Atomically writes the manifest to `path` (temp file + rename, via
    /// the same primitive the training checkpoints use).
    pub fn save(&self, path: &Path) -> Result<(), SuiteError> {
        cpt_nn::serialize::atomic_write_json(self, path).map_err(|e| match e {
            cpt_nn::serialize::CheckpointError::Io(source) => SuiteError::Io {
                path: path.to_path_buf(),
                source,
            },
            other => SuiteError::Config {
                what: format!("cannot serialize manifest: {other}"),
            },
        })
    }
}

/// Supervisor policy for one `experiments` invocation.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Run sizes.
    pub scale: Scale,
    /// Results directory (manifest, cache and stage outputs live here).
    pub out_dir: PathBuf,
    /// Reload the manifest and skip stages already completed.
    pub resume: bool,
    /// Continue with later stages after a stage fails (the run then exits
    /// 8 instead of stopping at the first failure).
    pub keep_going: bool,
    /// Attempts per stage (>= 1); retries apply only to retryable errors.
    pub max_attempts: u32,
    /// First-retry backoff in milliseconds; doubles per retry.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_ms: u64,
    /// Optional per-stage wall-clock budget (cooperative; see module docs).
    pub stage_budget_secs: Option<f64>,
    /// Deterministic stage-failure injection for tests and CI drills.
    pub fault: Option<StageFaultPlan>,
}

impl SuiteConfig {
    /// Defaults: no resume, stop on first failure, two attempts, 250 ms
    /// base backoff capped at 4 s, no budget, no injected faults.
    pub fn new(scale: Scale, out_dir: impl Into<PathBuf>) -> Self {
        SuiteConfig {
            scale,
            out_dir: out_dir.into(),
            resume: false,
            keep_going: false,
            max_attempts: 2,
            backoff_base_ms: 250,
            backoff_cap_ms: 4000,
            stage_budget_secs: None,
            fault: None,
        }
    }
}

/// Overall classification of a supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Every requested stage completed (now or in the resumed-from run).
    AllCompleted,
    /// Some stages completed, some failed or never ran.
    PartialFailure,
    /// No requested stage completed.
    AllFailed,
}

/// Final report of a supervised run; rendered to stdout and
/// `<out>/run_report.txt`.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Overall classification.
    pub status: RunStatus,
    /// True if a corrupt manifest was moved aside during startup.
    pub manifest_recovered: bool,
    /// Stages completed in this invocation.
    pub completed: Vec<String>,
    /// Stages skipped because the manifest already records them completed.
    pub skipped: Vec<String>,
    /// Completed stages that needed retries or ran over budget.
    pub degraded: Vec<String>,
    /// Stages whose every permitted attempt failed.
    pub failed: Vec<String>,
    /// Stages never started (failure earlier in the plan without
    /// `--keep-going`).
    pub not_run: Vec<String>,
    /// Wall-clock seconds for the whole invocation.
    pub total_seconds: f64,
}

impl RunReport {
    /// Process exit code under the documented contract: 0 all completed,
    /// 8 partial success, 1 nothing completed.
    pub fn exit_code(&self) -> u8 {
        match self.status {
            RunStatus::AllCompleted => 0,
            RunStatus::PartialFailure => 8,
            RunStatus::AllFailed => 1,
        }
    }

    /// Human-readable run report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let status = match self.status {
            RunStatus::AllCompleted => "all stages completed",
            RunStatus::PartialFailure => "PARTIAL FAILURE",
            RunStatus::AllFailed => "ALL STAGES FAILED",
        };
        s.push_str(&format!(
            "== Suite run report: {status} (exit {}) in {:.1}s ==\n",
            self.exit_code(),
            self.total_seconds
        ));
        if self.manifest_recovered {
            s.push_str("manifest.json was corrupt; moved aside and rebuilt from scratch\n");
        }
        let section = |s: &mut String, label: &str, names: &[String]| {
            if !names.is_empty() {
                s.push_str(&format!("{label}: {}\n", names.join(" ")));
            }
        };
        section(&mut s, "completed", &self.completed);
        section(&mut s, "skipped (already completed)", &self.skipped);
        section(&mut s, "degraded (retried or over budget)", &self.degraded);
        section(&mut s, "failed", &self.failed);
        section(&mut s, "not run", &self.not_run);
        s
    }
}

/// Expands `all`, validates every stage name against [`ALL_STAGES`] and
/// drops duplicates while preserving first-occurrence order. Rejecting
/// unknown names here — before any stage executes — is what keeps a typo
/// from costing a half-run suite.
pub fn expand_commands(commands: &[String]) -> Result<Vec<String>, SuiteError> {
    let mut plan: Vec<String> = Vec::new();
    for cmd in commands {
        if cmd == "all" {
            for s in ALL_STAGES {
                if !plan.iter().any(|p| p == s) {
                    plan.push(s.to_string());
                }
            }
        } else if ALL_STAGES.contains(&cmd.as_str()) {
            if !plan.iter().any(|p| p == cmd) {
                plan.push(cmd.clone());
            }
        } else {
            return Err(SuiteError::Config {
                what: format!("unknown command {cmd:?}"),
            });
        }
    }
    Ok(plan)
}

fn backoff_ms(cfg: &SuiteConfig, retry_index: u32) -> u64 {
    let shift = retry_index.min(16);
    cfg.backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_cap_ms)
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt of `stage`, converting panics into
/// [`SuiteError::Panic`]. `AssertUnwindSafe` is sound here because the
/// mutable state crossing the boundary (the model cache and transfer slot)
/// is only published *after* a computation fully succeeds, so an unwound
/// stage leaves both exactly as they were.
fn run_guarded(
    stage: &str,
    cfg: &SuiteConfig,
    out: &Output,
    cache: &mut SuiteCache,
    transfer_runs: &mut Option<TransferRuns>,
    bump: u64,
) -> Result<(), SuiteError> {
    match catch_unwind(AssertUnwindSafe(|| {
        dispatch(stage, cfg, out, cache, transfer_runs, bump)
    })) {
        Ok(r) => r,
        Err(payload) => Err(SuiteError::Panic {
            detail: panic_detail(payload),
        }),
    }
}

/// Loads the shared transfer-protocol runs from the on-disk cache or
/// computes (and persists) them. Tables 4, 9 and 10 all consume the same
/// runs, and they are the most expensive thing the suite trains — reusing
/// them across restarts is most of what `--resume` buys.
fn ensure_transfer<'a>(
    cfg: &SuiteConfig,
    out: &Output,
    slot: &'a mut Option<TransferRuns>,
    bump: u64,
) -> Result<&'a TransferRuns, SuiteError> {
    if slot.is_none() {
        let path = cfg
            .out_dir
            .join("cache")
            .join(format!("transfer-{}.json", cfg.scale.name));
        if let Some(runs) = transfer::load_cached_runs(&path, &cfg.scale) {
            out.note("  [reusing cached transfer-protocol runs]");
            *slot = Some(runs);
        } else {
            out.note("== Running the transfer-learning protocol (shared by Tables 4/9/10) ==");
            let runs = transfer::run_transfer_protocol(&cfg.scale, out, bump)?;
            transfer::persist_runs(&path, &cfg.scale, &runs, bump);
            *slot = Some(runs);
        }
    }
    slot.as_ref().ok_or_else(|| SuiteError::Config {
        what: "transfer runs missing after initialization".to_string(),
    })
}

fn dispatch(
    stage: &str,
    cfg: &SuiteConfig,
    out: &Output,
    cache: &mut SuiteCache,
    transfer_runs: &mut Option<TransferRuns>,
    bump: u64,
) -> Result<(), SuiteError> {
    let scale = &cfg.scale;
    match stage {
        "table3" => violations::run_table3(scale, out, cache),
        "table5" => violations::run_table5(scale, out, cache),
        "fig2" => distributions::run_fig2(scale, out, cache),
        "table6" => distributions::run_table6(scale, out, cache),
        "fig5" => distributions::run_fig5(scale, out, cache),
        "table7" => distributions::run_table7(scale, out, cache),
        "table8" => ablations::run_table8(scale, out, bump),
        "fig6" => scalability::run_fig6(scale, out, cache, bump),
        "table4" => {
            let runs = ensure_transfer(cfg, out, transfer_runs, bump)?;
            transfer::run_table4(out, runs, scale.hours);
            Ok(())
        }
        "table9" => {
            let runs = ensure_transfer(cfg, out, transfer_runs, bump)?;
            transfer::run_table9(out, runs, scale.hours);
            Ok(())
        }
        "table10" => {
            ensure_transfer(cfg, out, transfer_runs, bump)?;
            let runs = transfer_runs.as_ref().ok_or_else(|| SuiteError::Config {
                what: "transfer runs missing after initialization".to_string(),
            })?;
            transfer::run_table10(scale, out, runs, bump)
        }
        "table11" => memorization::run_table11(scale, out, cache),
        "fig7" => memorization::run_fig7(scale, out, cache),
        "downstream" => downstream::run_downstream(scale, out, cache, bump),
        "ablation-logscale" => ablations::run_ablation_logscale(scale, out, bump),
        "ablation-batchgen" => ablations::run_ablation_batchgen(scale, out, bump),
        other => Err(SuiteError::Config {
            what: format!("unknown stage {other:?} reached the dispatcher"),
        }),
    }
}

/// Runs `commands` under the supervisor. Returns `Err` only for setup
/// failures (unknown commands, unwritable results dir, manifest write
/// failures); per-stage failures are captured in the returned
/// [`RunReport`] instead.
pub fn run_stages(cfg: &SuiteConfig, commands: &[String]) -> Result<RunReport, SuiteError> {
    let stages = expand_commands(commands)?;
    if stages.is_empty() {
        return Err(SuiteError::Config {
            what: "no stages requested".to_string(),
        });
    }
    if cfg.max_attempts == 0 {
        return Err(SuiteError::Config {
            what: "--max-attempts must be at least 1".to_string(),
        });
    }
    if let Some(fault) = &cfg.fault {
        if !ALL_STAGES.contains(&fault.stage.as_str()) {
            return Err(SuiteError::Config {
                what: format!("--inject-fail names unknown stage {:?}", fault.stage),
            });
        }
    }
    let out = Output::new(&cfg.out_dir).map_err(|source| SuiteError::Io {
        path: cfg.out_dir.clone(),
        source,
    })?;
    let manifest_path = RunManifest::path(&cfg.out_dir);
    let (mut manifest, manifest_recovered) = if cfg.resume {
        RunManifest::load_or_recover(&manifest_path, cfg.scale.name)
    } else {
        (RunManifest::fresh(cfg.scale.name), false)
    };
    if manifest_recovered {
        out.note(&format!(
            "warning: {} was unreadable or from a different run; moved aside to manifest.json.corrupt",
            manifest_path.display()
        ));
    }
    let mut cache = SuiteCache::persistent(cfg.out_dir.join("cache"));
    let mut transfer_runs: Option<TransferRuns> = None;
    let started = Instant::now();
    let mut completed = Vec::new();
    let mut skipped = Vec::new();
    let mut degraded = Vec::new();
    let mut failed = Vec::new();
    let mut not_run = Vec::new();
    let mut stopped = false;

    for stage in &stages {
        if stopped {
            not_run.push(stage.clone());
            continue;
        }
        if cfg.resume {
            if let Some(rec) = manifest.stages.get(stage.as_str()) {
                if rec.status == StageStatus::Completed {
                    out.note(&format!(
                        "  [{stage}: already completed ({} attempt(s)), skipping]",
                        rec.attempts
                    ));
                    skipped.push(stage.clone());
                    continue;
                }
            }
        }
        let stage_started = Instant::now();
        let mut attempts = 0u32;
        let mut seed_used = bumped(BASE_SEED, 0);
        let mut result: Result<(), SuiteError> = Ok(());
        for attempt in 1..=cfg.max_attempts {
            attempts = attempt;
            let bump = (attempt - 1) as u64;
            seed_used = bumped(BASE_SEED, bump);
            cache.set_seed_bump(bump);
            result = if cfg
                .fault
                .as_ref()
                .is_some_and(|f| f.should_fail(stage, attempt))
            {
                Err(SuiteError::Injected {
                    stage: stage.clone(),
                    attempt,
                })
            } else {
                run_guarded(stage, cfg, &out, &mut cache, &mut transfer_runs, bump)
            };
            let Err(err) = &result else { break };
            out.note(&format!("  [{stage}: attempt {attempt} failed: {err}]"));
            let elapsed = stage_started.elapsed().as_secs_f64();
            if let Some(budget) = cfg.stage_budget_secs {
                if elapsed > budget {
                    result = Err(SuiteError::Budget {
                        stage: stage.clone(),
                        elapsed_secs: elapsed,
                        budget_secs: budget,
                    });
                    break;
                }
            }
            if attempt >= cfg.max_attempts || !err.is_retryable() {
                break;
            }
            let wait = backoff_ms(cfg, attempt - 1);
            out.note(&format!(
                "  [{stage}: retrying with reseed (seed bump {attempt}) after {wait} ms backoff]"
            ));
            std::thread::sleep(Duration::from_millis(wait));
        }
        let duration_secs = stage_started.elapsed().as_secs_f64();
        let over_budget = cfg.stage_budget_secs.is_some_and(|b| duration_secs > b);
        manifest.stages.insert(
            stage.clone(),
            StageRecord {
                status: if result.is_ok() {
                    StageStatus::Completed
                } else {
                    StageStatus::Failed
                },
                attempts,
                duration_secs,
                seed: seed_used,
                error: result.as_ref().err().map(|e| e.to_string()),
                over_budget,
            },
        );
        manifest.save(&manifest_path)?;
        match result {
            Ok(()) => {
                if attempts > 1 || over_budget {
                    degraded.push(stage.clone());
                }
                completed.push(stage.clone());
                out.note(&format!("  [{stage} done in {duration_secs:.1}s]\n"));
            }
            Err(_) => {
                failed.push(stage.clone());
                if !cfg.keep_going {
                    out.note(&format!(
                        "  [stopping after failed stage {stage}; pass --keep-going to continue]"
                    ));
                    stopped = true;
                }
            }
        }
    }

    let status = if failed.is_empty() && not_run.is_empty() {
        RunStatus::AllCompleted
    } else if completed.is_empty() && skipped.is_empty() {
        RunStatus::AllFailed
    } else {
        RunStatus::PartialFailure
    };
    let report = RunReport {
        status,
        manifest_recovered,
        completed,
        skipped,
        degraded,
        failed,
        not_run,
        total_seconds: started.elapsed().as_secs_f64(),
    };
    out.table("run_report", &report.render());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpt-suite-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn bump_zero_is_identity() {
        assert_eq!(bumped(42, 0), 42);
        assert_ne!(bumped(42, 1), 42);
        assert_ne!(bumped(42, 1), bumped(42, 2));
        // Bumps must not collide with the small `seed + k` offsets the
        // pipeline derives from a base seed.
        for k in 0..100u64 {
            assert_ne!(bumped(42, 1), 42 + k);
        }
    }

    #[test]
    fn expand_rejects_unknown_and_dedups() {
        let cmds = vec!["table3".to_string(), "table3".to_string(), "fig2".to_string()];
        let plan = expand_commands(&cmds).expect("valid");
        assert_eq!(plan, vec!["table3".to_string(), "fig2".to_string()]);

        let all = expand_commands(&["all".to_string()]).expect("valid");
        assert_eq!(all.len(), ALL_STAGES.len());

        let err = expand_commands(&["table99".to_string()]).expect_err("unknown");
        assert!(matches!(err, SuiteError::Config { .. }), "{err}");
    }

    #[test]
    fn manifest_roundtrips_and_recovers_from_corruption() {
        let dir = tmp_dir("manifest");
        let path = RunManifest::path(&dir);
        let mut m = RunManifest::fresh("quick");
        m.stages.insert(
            "table3".to_string(),
            StageRecord {
                status: StageStatus::Completed,
                attempts: 2,
                duration_secs: 1.5,
                seed: bumped(BASE_SEED, 1),
                error: None,
                over_budget: false,
            },
        );
        m.save(&path).expect("save");
        let (back, recovered) = RunManifest::load_or_recover(&path, "quick");
        assert!(!recovered);
        assert_eq!(back, m);

        // Truncated file: recovered flag set, backup written, fresh state.
        cpt_gpt::faultinject::truncate_file(&path, 0.5).expect("truncate");
        let (fresh, recovered) = RunManifest::load_or_recover(&path, "quick");
        assert!(recovered);
        assert!(fresh.stages.is_empty());
        assert!(path.with_extension("json.corrupt").exists());
        assert!(!path.exists(), "corrupt manifest must be moved aside");

        // Wrong scale is also treated as unusable.
        m.save(&path).expect("save");
        let (_, recovered) = RunManifest::load_or_recover(&path, "full");
        assert!(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_manifest_is_a_fresh_start_not_a_recovery() {
        let dir = tmp_dir("manifest-missing");
        let (m, recovered) = RunManifest::load_or_recover(&RunManifest::path(&dir), "quick");
        assert!(!recovered);
        assert!(m.stages.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retryability_is_limited_to_divergence_class() {
        assert!(SuiteError::Panic {
            detail: "x".into()
        }
        .is_retryable());
        assert!(SuiteError::Injected {
            stage: "table3".into(),
            attempt: 1
        }
        .is_retryable());
        assert!(!SuiteError::Config { what: "x".into() }.is_retryable());
        assert!(!SuiteError::NetShare(NetShareError::Untrained).is_retryable());
        assert!(!SuiteError::Budget {
            stage: "table3".into(),
            elapsed_secs: 2.0,
            budget_secs: 1.0
        }
        .is_retryable());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut cfg = SuiteConfig::new(Scale::tiny(), "unused");
        cfg.backoff_base_ms = 100;
        cfg.backoff_cap_ms = 350;
        assert_eq!(backoff_ms(&cfg, 0), 100);
        assert_eq!(backoff_ms(&cfg, 1), 200);
        assert_eq!(backoff_ms(&cfg, 2), 350);
        assert_eq!(backoff_ms(&cfg, 60), 350, "shift must not overflow");
    }

    #[test]
    fn run_report_classifies_exit_codes() {
        let base = RunReport {
            status: RunStatus::AllCompleted,
            manifest_recovered: false,
            completed: vec!["table3".into()],
            skipped: vec![],
            degraded: vec![],
            failed: vec![],
            not_run: vec![],
            total_seconds: 1.0,
        };
        assert_eq!(base.exit_code(), 0);
        let partial = RunReport {
            status: RunStatus::PartialFailure,
            failed: vec!["fig2".into()],
            ..base.clone()
        };
        assert_eq!(partial.exit_code(), 8);
        assert!(partial.render().contains("PARTIAL FAILURE"));
        assert!(partial.render().contains("failed: fig2"));
        let dead = RunReport {
            status: RunStatus::AllFailed,
            completed: vec![],
            ..base
        };
        assert_eq!(dead.exit_code(), 1);
    }

    #[test]
    fn config_errors_are_rejected_before_any_stage_runs() {
        let dir = tmp_dir("reject");
        let cfg = SuiteConfig::new(Scale::tiny(), dir.join("results"));
        let err = run_stages(&cfg, &["definitely-not-a-stage".to_string()])
            .expect_err("unknown command");
        assert!(matches!(err, SuiteError::Config { .. }));
        assert!(
            !dir.join("results").join("manifest.json").exists(),
            "validation failures must not touch the results dir"
        );

        let mut bad = SuiteConfig::new(Scale::tiny(), dir.join("results"));
        bad.fault = Some(StageFaultPlan::always("not-a-stage"));
        let err = run_stages(&bad, &["table3".to_string()]).expect_err("bad fault spec");
        assert!(matches!(err, SuiteError::Config { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
