//! Adapted NetShare baseline (§4.2.1 of the paper).
//!
//! NetShare (Yin et al., SIGCOMM'22) is the state-of-the-art GAN-based
//! traffic generator the paper compares against. The paper adapts it to
//! control-plane traffic as follows, and this crate implements exactly
//! that adapted form:
//!
//! - the MLP **metadata generator is discarded** (a UE ID is a hashed
//!   string with no semantics; it is produced by a plain random-ID
//!   generator instead);
//! - the **LSTM time-series generator** produces samples with three
//!   fields: event type, interarrival time and a stop flag;
//! - **batch generation**: each LSTM step emits `batch_gen` consecutive
//!   samples, NetShare's workaround for LSTM forgetting (L4) — which
//!   sacrifices intra-batch dependencies, one cause of its semantic
//!   violations;
//! - **per-stream min/max normalization** of the interarrival field,
//!   NetShare's mode-collapse mitigation (L5). The per-stream (min, max)
//!   pair is part of the metadata NetShare would generate; since the
//!   metadata generator is dropped, generation samples a (min, max) pair
//!   from the empirical distribution of training streams;
//! - adversarial training of the LSTM generator against an LSTM + MLP
//!   critic using the Wasserstein objective with weight clipping
//!   (NetShare itself uses Wasserstein-GP; the gradient penalty needs
//!   second-order autodiff — see DESIGN.md). Categorical fields are
//!   sampled with Gumbel-softmax during training so fake tokens are
//!   near-one-hot like real ones; a plain BCE objective remains available
//!   via [`NetShareConfig::wasserstein`].
//!
//! The point of this crate is to be a *faithful baseline*, including its
//! published weaknesses: it has no notion of the 3GPP state machine, so
//! a measurable fraction of its streams violate stateful semantics
//! (Tables 3 and 5), and GAN fine-tuning converges slowly (Tables 4/9).

pub mod error;
pub mod gan;
pub mod norm;

pub use error::NetShareError;
pub use gan::{NetShare, NetShareConfig, NetShareTrainReport};
pub use norm::StreamNormalizer;
