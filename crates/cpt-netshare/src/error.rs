//! Typed errors for the NetShare baseline.
//!
//! The GAN used to panic on the two conditions a long experiment run can
//! actually hit — generating from an untrained model and decoding an
//! out-of-range event index — which aborted the whole suite instead of
//! failing one stage. Both are now values the experiment supervisor can
//! catch, record in the run manifest, and retry or skip.

#![deny(clippy::unwrap_used)]

use serde::{Deserialize, Serialize};

/// Errors raised by [`crate::NetShare`] training and generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetShareError {
    /// Generation was requested before [`crate::NetShare::train`] fitted
    /// the per-stream normalizer; there is no metadata distribution to
    /// sample stream bounds from.
    Untrained,
    /// The training dataset contains no stream with at least two events.
    NoTrainableStreams,
    /// The sampled categorical index does not name an event type — the
    /// generator head width and the event vocabulary disagree, which
    /// means the model bundle does not match this build.
    BadEventIndex {
        /// Index sampled from the event-type field.
        index: usize,
        /// Size of the event vocabulary it must index into.
        vocab: usize,
    },
}

impl std::fmt::Display for NetShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetShareError::Untrained => {
                write!(f, "NetShare model has no fitted normalizer; train it before generation")
            }
            NetShareError::NoTrainableStreams => {
                write!(f, "no trainable streams (all shorter than 2 events)")
            }
            NetShareError::BadEventIndex { index, vocab } => write!(
                f,
                "sampled event index {index} outside the {vocab}-event vocabulary \
                 (model/build mismatch)"
            ),
        }
    }
}

impl std::error::Error for NetShareError {}
