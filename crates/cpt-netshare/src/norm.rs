//! Per-stream min/max normalization of interarrival times (NetShare's
//! mode-collapse mitigation, L5 in §4.2.2).
//!
//! Each stream's log-scaled interarrivals are normalized with the *stream's
//! own* min and max rather than global bounds. The (min, max) pair is
//! stream metadata; with the metadata generator dropped (§4.2.1), inference
//! draws a pair from the empirical distribution of training pairs.

use cpt_trace::stats::{log_scale, log_unscale};
use cpt_trace::{Dataset, Stream};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-stream normalization bounds in log space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamBounds {
    /// Min of `ln(iat+1)` within the stream.
    pub log_min: f64,
    /// Max of `ln(iat+1)` within the stream.
    pub log_max: f64,
}

impl StreamBounds {
    /// Bounds of one stream (first-token zero interarrival included, as in
    /// the tokenization convention). Degenerate streams get a unit span.
    pub fn of(stream: &Stream) -> Self {
        let mut log_min = f64::INFINITY;
        let mut log_max = f64::NEG_INFINITY;
        for iat in stream.interarrivals() {
            let l = log_scale(iat);
            log_min = log_min.min(l);
            log_max = log_max.max(l);
        }
        if !log_min.is_finite() || log_max - log_min < 1e-9 {
            let base = if log_min.is_finite() { log_min } else { 0.0 };
            return StreamBounds {
                log_min: base,
                log_max: base + 1.0,
            };
        }
        StreamBounds { log_min, log_max }
    }

    /// Normalizes an interarrival (seconds) to `[0, 1]` under these bounds.
    pub fn normalize(&self, iat: f64) -> f32 {
        (((log_scale(iat.max(0.0)) - self.log_min) / (self.log_max - self.log_min))
            .clamp(0.0, 1.0)) as f32
    }

    /// Inverse of [`StreamBounds::normalize`].
    pub fn denormalize(&self, v: f32) -> f64 {
        let l = self.log_min + (v as f64).clamp(0.0, 1.0) * (self.log_max - self.log_min);
        log_unscale(l).max(0.0)
    }
}

/// Empirical distribution of per-stream bounds, sampled at inference in
/// lieu of NetShare's metadata generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamNormalizer {
    bounds: Vec<StreamBounds>,
}

impl StreamNormalizer {
    /// Fits per-stream bounds over a dataset.
    pub fn fit(dataset: &Dataset) -> Self {
        let mut bounds: Vec<StreamBounds> = dataset
            .streams
            .iter()
            .filter(|s| s.len() >= 2)
            .map(StreamBounds::of)
            .collect();
        if bounds.is_empty() {
            bounds.push(StreamBounds {
                log_min: 0.0,
                log_max: log_scale(3600.0),
            });
        }
        StreamNormalizer { bounds }
    }

    /// Number of fitted (min, max) pairs.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether any pairs were fitted (never false after `fit`).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Bounds of training stream `i` (for encoding real batches).
    pub fn bounds_of(&self, stream: &Stream) -> StreamBounds {
        StreamBounds::of(stream)
    }

    /// Samples a (min, max) pair for a generated stream.
    pub fn sample(&self, rng: &mut impl Rng) -> StreamBounds {
        self.bounds[rng.gen_range(0..self.bounds.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, UeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(gaps: &[f64]) -> Stream {
        let mut t = 0.0;
        Stream::new(
            UeId(0),
            DeviceType::Phone,
            gaps.iter()
                .map(|g| {
                    t += g;
                    Event::new(EventType::ServiceRequest, t)
                })
                .collect(),
        )
    }

    #[test]
    fn bounds_normalize_within_stream() {
        let s = stream(&[0.0, 10.0, 100.0]);
        let b = StreamBounds::of(&s);
        // Stream interarrivals: 0, 10, 100 → min log(1)=0, max log(101).
        assert!((b.normalize(0.0) - 0.0).abs() < 1e-6);
        assert!((b.normalize(100.0) - 1.0).abs() < 1e-6);
        let mid = b.normalize(10.0);
        assert!(mid > 0.0 && mid < 1.0);
        // Roundtrip.
        assert!((b.denormalize(mid) - 10.0).abs() < 0.1);
    }

    #[test]
    fn degenerate_stream_gets_unit_span() {
        let s = stream(&[0.0]);
        let b = StreamBounds::of(&s);
        assert!(b.log_max > b.log_min);
        let v = b.normalize(0.0);
        assert!((b.denormalize(v) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn normalizer_fits_and_samples_deterministically() {
        let d = Dataset::new(vec![stream(&[0.0, 5.0, 20.0]), stream(&[0.0, 300.0])]);
        let n = StreamNormalizer::fit(&d);
        assert_eq!(n.len(), 2);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(n.sample(&mut r1), n.sample(&mut r2));
    }

    #[test]
    fn empty_dataset_has_fallback() {
        let n = StreamNormalizer::fit(&Dataset::new(vec![]));
        assert_eq!(n.len(), 1);
    }
}
