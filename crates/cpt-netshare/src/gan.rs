//! The adapted NetShare GAN: LSTM generator with batch generation vs
//! LSTM discriminator, trained adversarially.

use crate::error::NetShareError;
use crate::norm::{StreamBounds, StreamNormalizer};
use cpt_nn::{Adam, clip_grad_norm, Linear, Lstm, ParamId, ParamStore, Session, Tensor, Var};
use cpt_trace::{Dataset, DeviceType, EventType, Generation, Stream, UeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Architecture and training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetShareConfig {
    /// Cellular generation (event vocabulary).
    pub generation: Generation,
    /// Generator LSTM hidden size.
    pub hidden: usize,
    /// Noise vector width fed to the generator each step.
    pub noise_dim: usize,
    /// Samples emitted per LSTM step — NetShare's batch generation (L4).
    pub batch_gen: usize,
    /// Maximum stream length (padded/truncated to this for the GAN).
    pub max_len: usize,
    /// Discriminator LSTM/MLP hidden size.
    pub d_hidden: usize,
    /// Weight-init seed.
    pub seed: u64,
    /// Epochs over the training streams.
    pub epochs: usize,
    /// Streams per batch.
    pub batch_size: usize,
    /// Generator learning rate.
    pub lr_g: f32,
    /// Discriminator learning rate.
    pub lr_d: f32,
    /// Gumbel-softmax temperature for the categorical fields. Without
    /// Gumbel sampling, real (exact one-hot) and fake (smooth softmax)
    /// tokens are trivially separable and the discriminator wins
    /// immediately — the practical GAN fragility the paper's L5 is about.
    pub gumbel_tau: f32,
    /// Label-smoothing target for real samples in the discriminator loss
    /// (BCE objective only).
    pub real_label: f32,
    /// Generator updates happen once every `g_every` batches; the critic
    /// updates every batch (WGAN trains the critic more often).
    pub g_every: usize,
    /// Weight-clipping bound for the WGAN critic.
    pub weight_clip: f32,
    /// Use the Wasserstein objective (weight-clipped critic) instead of
    /// BCE. NetShare itself uses Wasserstein-GP; weight clipping is the
    /// first-order-autodiff-friendly variant (DESIGN.md).
    pub wasserstein: bool,
    /// If `Some(n)`, snapshot parameters every `n` epochs.
    pub snapshot_every: Option<usize>,
}

impl NetShareConfig {
    /// CPU-sized default.
    pub fn small() -> Self {
        NetShareConfig {
            generation: Generation::Lte,
            hidden: 48,
            noise_dim: 16,
            batch_gen: 5,
            max_len: 50,
            d_hidden: 48,
            seed: 0,
            epochs: 10,
            batch_size: 32,
            lr_g: 1e-3,
            lr_d: 5e-4,
            gumbel_tau: 0.7,
            real_label: 0.9,
            g_every: 2,
            weight_clip: 0.05,
            wasserstein: true,
            snapshot_every: None,
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder: sets max stream length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    fn steps(&self) -> usize {
        self.max_len.div_ceil(self.batch_gen)
    }

    fn sample_dim(&self) -> usize {
        self.generation.num_event_types() + 1 + 2
    }

    /// Raw (pre-activation) generator output width per sample.
    fn raw_dim(&self) -> usize {
        self.generation.num_event_types() + 1 + 2
    }
}

impl Default for NetShareConfig {
    fn default() -> Self {
        NetShareConfig::small()
    }
}

/// Per-epoch GAN losses and timing.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct NetShareTrainReport {
    /// `(epoch, discriminator loss, generator loss, seconds)` per epoch.
    pub epochs: Vec<(usize, f64, f64, f64)>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Parameter snapshots `(epoch, params)` for checkpoint selection.
    #[serde(skip)]
    pub snapshots: Vec<(usize, ParamStore)>,
}

/// Per-position Gumbel noise for Gumbel-softmax sampling of the
/// categorical fields during GAN training.
struct GumbelNoise {
    ev: Vec<Tensor>,
    stop: Vec<Tensor>,
}

/// The adapted NetShare model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetShare {
    /// Configuration.
    pub config: NetShareConfig,
    /// All parameters (generator + discriminator).
    pub store: ParamStore,
    g_lstm: Lstm,
    g_out: Linear,
    d_lstm: Lstm,
    d_fc1: Linear,
    d_fc2: Linear,
    g_params: Vec<ParamId>,
    d_params: Vec<ParamId>,
    /// Per-stream (min, max) metadata distribution, fitted at training.
    pub normalizer: Option<StreamNormalizer>,
}

impl NetShare {
    /// Builds a freshly initialized model.
    pub fn new(config: NetShareConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let g_lstm = Lstm::new(&mut store, "g.lstm", config.noise_dim, config.hidden, &mut rng);
        let g_out = Linear::new(
            &mut store,
            "g.out",
            config.hidden,
            config.batch_gen * config.raw_dim(),
            true,
            &mut rng,
        );
        let g_params = store.ids();
        let before_d = g_params.len();
        let d_lstm = Lstm::new(&mut store, "d.lstm", config.sample_dim(), config.d_hidden, &mut rng);
        let d_fc1 = Linear::new(&mut store, "d.fc1", config.d_hidden, config.d_hidden, true, &mut rng);
        let d_fc2 = Linear::new(&mut store, "d.fc2", config.d_hidden, 1, true, &mut rng);
        let d_params = store.ids()[before_d..].to_vec();
        NetShare {
            config,
            store,
            g_lstm,
            g_out,
            d_lstm,
            d_fc1,
            d_fc2,
            g_params,
            d_params,
            normalizer: None,
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_params()
    }

    /// Runs the generator inside `sess`, producing `max_len` soft tokens of
    /// shape `[B, sample_dim]` each. `noise` holds `steps()` tensors of
    /// shape `[B, noise_dim]`. When `gumbel` is provided (training), the
    /// categorical fields use Gumbel-softmax sampling so fake tokens are
    /// near-one-hot like the real ones.
    fn generator_forward(
        &self,
        sess: &mut Session<'_>,
        noise: &[Tensor],
        gumbel: Option<&GumbelNoise>,
        b: usize,
    ) -> Vec<Var> {
        let e = self.config.generation.num_event_types();
        let raw = self.config.raw_dim();
        let inv_tau = 1.0 / self.config.gumbel_tau.max(1e-3);
        let (mut h, mut c) = self.g_lstm.zero_state(sess, b);
        let mut tokens = Vec::with_capacity(self.config.max_len);
        for z in noise {
            let x = sess.input(z.clone());
            let (nh, nc) = self.g_lstm.step(sess, x, h, c);
            h = nh;
            c = nc;
            let out = self.g_out.forward(sess, h); // [B, batch_gen * raw]
            for j in 0..self.config.batch_gen {
                let t = tokens.len();
                if t >= self.config.max_len {
                    break;
                }
                let mut ev_logits = sess.graph.slice_cols(out, j * raw, e);
                let mut stop_logits = sess.graph.slice_cols(out, j * raw + e + 1, 2);
                if let Some(g) = gumbel {
                    let gv = sess.input(g.ev[t].clone());
                    ev_logits = sess.graph.add(ev_logits, gv);
                    ev_logits = sess.graph.scale(ev_logits, inv_tau);
                    let gs = sess.input(g.stop[t].clone());
                    stop_logits = sess.graph.add(stop_logits, gs);
                    stop_logits = sess.graph.scale(stop_logits, inv_tau);
                }
                let ev = sess.graph.softmax_lastdim(ev_logits);
                let iat_pre = sess.graph.slice_cols(out, j * raw + e, 1);
                let iat = sess.graph.sigmoid(iat_pre);
                let stop = sess.graph.softmax_lastdim(stop_logits);
                tokens.push(sess.graph.concat_cols(&[ev, iat, stop]));
            }
        }
        tokens
    }

    /// Clamps every critic weight to `[-c, c]` (WGAN weight clipping).
    fn clip_critic_weights(&mut self, c: f32) {
        for id in &self.d_params {
            for w in &mut self.store.value_mut(*id).data {
                *w = w.clamp(-c, c);
            }
        }
    }

    /// Runs the discriminator over a token sequence, returning `[B]`
    /// logits.
    fn discriminator_forward(&self, sess: &mut Session<'_>, tokens: &[Var], b: usize) -> Var {
        let (mut h, mut c) = self.d_lstm.zero_state(sess, b);
        for t in tokens {
            let (nh, nc) = self.d_lstm.step(sess, *t, h, c);
            h = nh;
            c = nc;
        }
        let f = self.d_fc1.forward(sess, h);
        let f = sess.graph.relu(f);
        let logit = self.d_fc2.forward(sess, f); // [B,1]
        sess.graph.reshape(logit, &[b])
    }

    /// Encodes real streams as fixed-length padded token sequences with
    /// per-stream min/max interarrival normalization.
    fn encode_real(&self, streams: &[&Stream]) -> Vec<Tensor> {
        let e = self.config.generation.num_event_types();
        let d = self.config.sample_dim();
        let t_max = self.config.max_len;
        let b = streams.len();
        let mut per_t: Vec<Tensor> = (0..t_max).map(|_| Tensor::zeros(&[b, d])).collect();
        for (bi, stream) in streams.iter().enumerate() {
            let bounds = StreamBounds::of(stream);
            let iats = stream.interarrivals();
            let n = stream.len().min(t_max);
            for t in 0..n {
                let tok = &mut per_t[t];
                let ev = stream.events[t].event_type;
                tok.data[bi * d + ev.index()] = 1.0;
                tok.data[bi * d + e] = bounds.normalize(iats[t]);
                let stop = t + 1 == n;
                tok.data[bi * d + e + 1 + usize::from(stop)] = 1.0;
            }
        }
        per_t
    }

    fn sample_noise(&self, b: usize, rng: &mut StdRng) -> Vec<Tensor> {
        (0..self.config.steps())
            .map(|_| Tensor::randn(&[b, self.config.noise_dim], 1.0, rng))
            .collect()
    }

    fn sample_gumbel(&self, b: usize, rng: &mut StdRng) -> GumbelNoise {
        let e = self.config.generation.num_event_types();
        let draw = |shape: &[usize], rng: &mut StdRng| {
            let n: usize = shape.iter().product();
            let data = (0..n)
                .map(|_| {
                    let u: f32 = rng.gen_range(1e-9f32..1.0);
                    -(-(u.ln())).ln()
                })
                .collect();
            Tensor::new(data, shape.to_vec())
        };
        GumbelNoise {
            ev: (0..self.config.max_len).map(|_| draw(&[b, e], rng)).collect(),
            stop: (0..self.config.max_len).map(|_| draw(&[b, 2], rng)).collect(),
        }
    }

    /// Trains the GAN on `dataset`, fitting the normalizer and recording
    /// per-epoch losses.
    pub fn train(&mut self, dataset: &Dataset) -> Result<NetShareTrainReport, NetShareError> {
        let trainable: Vec<usize> = dataset
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() >= 2)
            .map(|(i, _)| i)
            .collect();
        if trainable.is_empty() {
            return Err(NetShareError::NoTrainableStreams);
        }
        self.normalizer = Some(StreamNormalizer::fit(dataset));
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let mut adam_g = Adam::new(&self.store, cfg.lr_g);
        let mut adam_d = Adam::new(&self.store, cfg.lr_d);
        let mut report = NetShareTrainReport::default();
        let start = Instant::now();

        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            let mut order = trainable.clone();
            order.shuffle(&mut rng);
            let mut d_loss_sum = 0.0f64;
            let mut g_loss_sum = 0.0f64;
            let mut batches = 0usize;
            for (batch_idx, chunk) in order.chunks(cfg.batch_size).enumerate() {
                let streams: Vec<&Stream> =
                    chunk.iter().map(|i| &dataset.streams[*i]).collect();
                let b = streams.len();
                let real = self.encode_real(&streams);
                let ones = vec![1.0f32; b];

                // --- Discriminator / critic step (every batch) ---
                {
                    let noise = self.sample_noise(b, &mut rng);
                    let gumbel = self.sample_gumbel(b, &mut rng);
                    let mut sess = Session::new(&self.store);
                    let fake = self.generator_forward(&mut sess, &noise, Some(&gumbel), b);
                    let real_vars: Vec<Var> =
                        real.iter().map(|t| sess.input(t.clone())).collect();
                    let d_real = self.discriminator_forward(&mut sess, &real_vars, b);
                    let d_fake = self.discriminator_forward(&mut sess, &fake, b);
                    let loss = if cfg.wasserstein {
                        // Critic maximizes E[D(real)] - E[D(fake)].
                        let m_real = sess.graph.mean_all(d_real);
                        let m_fake = sess.graph.mean_all(d_fake);
                        sess.graph.weighted_sum(&[(m_fake, 1.0), (m_real, -1.0)])
                    } else {
                        let l_real = sess
                            .graph
                            .bce_with_logits(d_real, &vec![cfg.real_label; b], &ones);
                        let l_fake =
                            sess.graph.bce_with_logits(d_fake, &vec![0.0; b], &ones);
                        sess.graph.weighted_sum(&[(l_real, 0.5), (l_fake, 0.5)])
                    };
                    d_loss_sum += sess.graph.value(loss).item() as f64;
                    sess.backward(loss);
                    let grads = sess.grads();
                    self.store.accumulate_grads(&grads);
                    clip_grad_norm(&mut self.store, 5.0);
                    adam_d.step_subset(&mut self.store, &self.d_params);
                    self.store.zero_grads();
                    if cfg.wasserstein {
                        self.clip_critic_weights(cfg.weight_clip);
                    }
                }

                // --- Generator step (once every g_every batches) ---
                if batch_idx % cfg.g_every.max(1) == 0 {
                    let noise = self.sample_noise(b, &mut rng);
                    let gumbel = self.sample_gumbel(b, &mut rng);
                    let mut sess = Session::new(&self.store);
                    let fake = self.generator_forward(&mut sess, &noise, Some(&gumbel), b);
                    let d_fake = self.discriminator_forward(&mut sess, &fake, b);
                    let loss = if cfg.wasserstein {
                        // Generator maximizes E[D(fake)].
                        let m_fake = sess.graph.mean_all(d_fake);
                        sess.graph.scale(m_fake, -1.0)
                    } else {
                        sess.graph.bce_with_logits(d_fake, &vec![1.0; b], &ones)
                    };
                    g_loss_sum += sess.graph.value(loss).item() as f64;
                    sess.backward(loss);
                    let grads = sess.grads();
                    self.store.accumulate_grads(&grads);
                    clip_grad_norm(&mut self.store, 5.0);
                    adam_g.step_subset(&mut self.store, &self.g_params);
                    self.store.zero_grads();
                }
                batches += 1;
            }
            report.epochs.push((
                epoch,
                d_loss_sum / batches.max(1) as f64,
                g_loss_sum / batches.max(1) as f64,
                epoch_start.elapsed().as_secs_f64(),
            ));
            if let Some(every) = cfg.snapshot_every {
                if (epoch + 1) % every == 0 {
                    report.snapshots.push((epoch, self.store.clone()));
                }
            }
        }
        report.total_seconds = start.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Continues adversarial training on `new_data` for `epochs` epochs —
    /// the transfer-learning mode measured by Tables 4/9 (GANs benefit far
    /// less from this than supervised transformers).
    pub fn fine_tune(
        &self,
        new_data: &Dataset,
        epochs: usize,
    ) -> Result<(NetShare, NetShareTrainReport), NetShareError> {
        let mut model = self.clone();
        model.config.epochs = epochs;
        // Continue from current weights; keep the seed distinct so batch
        // order differs from the base run.
        model.config.seed = self.config.seed.wrapping_add(7919);
        let report = model.train(new_data)?;
        Ok((model, report))
    }

    /// Synthesizes `n` streams.
    pub fn generate(
        &self,
        n: usize,
        device: DeviceType,
        seed: u64,
    ) -> Result<Dataset, NetShareError> {
        let normalizer = self.normalizer.as_ref().ok_or(NetShareError::Untrained)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let e = self.config.generation.num_event_types();
        let d = self.config.sample_dim();
        let mut streams = Vec::with_capacity(n);
        let mut next_id = 0u64;
        let batch = 64usize;
        let mut remaining = n;
        while remaining > 0 {
            let b = remaining.min(batch);
            remaining -= b;
            let noise = self.sample_noise(b, &mut rng);
            let mut sess = Session::new(&self.store);
            let tokens = self.generator_forward(&mut sess, &noise, None, b);
            let token_values: Vec<Tensor> = tokens
                .iter()
                .map(|t| sess.graph.value(*t).clone())
                .collect();
            for bi in 0..b {
                let bounds = normalizer.sample(&mut rng);
                let mut events = Vec::new();
                let mut iats = Vec::new();
                for tok in &token_values {
                    let row = &tok.data[bi * d..(bi + 1) * d];
                    let ev_idx = sample_probs(&row[..e], &mut rng);
                    events.push(
                        EventType::from_index(ev_idx)
                            .ok_or(NetShareError::BadEventIndex { index: ev_idx, vocab: e })?,
                    );
                    iats.push(bounds.denormalize(row[e]));
                    let stop = sample_probs(&row[e + 1..e + 3], &mut rng) == 1;
                    if stop {
                        break;
                    }
                }
                // First token's interarrival is a start offset; zero it to
                // match the trace convention.
                if let Some(first) = iats.first_mut() {
                    *first = 0.0;
                }
                let id = UeId(next_id);
                next_id += 1;
                streams.push(Stream::from_interarrivals(id, device, &events, &iats));
            }
        }
        Ok(Dataset::with_generation(self.config.generation, streams))
    }
}

fn sample_probs(probs: &[f32], rng: &mut impl Rng) -> usize {
    let total: f32 = probs.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut target = rng.gen::<f32>() * total;
    for (i, p) in probs.iter().enumerate() {
        if target < *p {
            return i;
        }
        target -= p;
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_synth::{generate_device, SynthConfig};

    fn tiny_config() -> NetShareConfig {
        NetShareConfig {
            hidden: 16,
            noise_dim: 8,
            batch_gen: 4,
            max_len: 16,
            d_hidden: 16,
            epochs: 2,
            batch_size: 16,
            ..NetShareConfig::small()
        }
    }

    fn small_data() -> Dataset {
        generate_device(&SynthConfig::new(0, 31), DeviceType::Phone, 60)
    }

    #[test]
    fn parameters_partition_into_g_and_d() {
        let m = NetShare::new(tiny_config());
        let total = m.store.num_tensors();
        assert_eq!(m.g_params.len() + m.d_params.len(), total);
        // Names are consistent with the partition.
        for id in &m.g_params {
            assert!(m.store.name(*id).starts_with("g."));
        }
        for id in &m.d_params {
            assert!(m.store.name(*id).starts_with("d."));
        }
    }

    #[test]
    fn training_runs_and_losses_are_finite() {
        let mut m = NetShare::new(tiny_config());
        let report = m.train(&small_data()).expect("train");
        assert_eq!(report.epochs.len(), 2);
        for (_, dl, gl, _) in &report.epochs {
            // Wasserstein losses are signed; only finiteness is invariant.
            assert!(dl.is_finite() && gl.is_finite(), "non-finite GAN loss");
        }
        assert!(m.normalizer.is_some());
    }

    #[test]
    fn generation_shapes_and_determinism() {
        let mut m = NetShare::new(tiny_config());
        m.train(&small_data()).expect("train");
        let a = m.generate(12, DeviceType::Phone, 5).expect("generate");
        assert_eq!(a.num_streams(), 12);
        for s in &a.streams {
            assert!(!s.is_empty() && s.len() <= 16);
            assert!(s.events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        }
        assert_eq!(a, m.generate(12, DeviceType::Phone, 5).expect("generate"));
        assert_ne!(a, m.generate(12, DeviceType::Phone, 6).expect("generate"));
    }

    #[test]
    fn discriminator_step_moves_only_d_params() {
        let m = NetShare::new(tiny_config());
        let data = small_data();
        let model = m.clone();
        // One manual D step.
        let streams: Vec<&Stream> = data.streams.iter().take(4).collect();
        let real = model.encode_real(&streams);
        let mut rng = StdRng::seed_from_u64(0);
        let noise = model.sample_noise(4, &mut rng);
        let mut sess = Session::new(&model.store);
        let gumbel = model.sample_gumbel(4, &mut rng);
        let fake = model.generator_forward(&mut sess, &noise, Some(&gumbel), 4);
        let real_vars: Vec<Var> = real.iter().map(|t| sess.input(t.clone())).collect();
        let d_real = model.discriminator_forward(&mut sess, &real_vars, 4);
        let d_fake = model.discriminator_forward(&mut sess, &fake, 4);
        let ones = vec![1.0f32; 4];
        let l_real = sess.graph.bce_with_logits(d_real, &[1.0; 4], &ones);
        let l_fake = sess.graph.bce_with_logits(d_fake, &[0.0; 4], &ones);
        let loss = sess.graph.weighted_sum(&[(l_real, 0.5), (l_fake, 0.5)]);
        sess.backward(loss);
        let grads = sess.grads();
        let mut store = model.store.clone();
        store.accumulate_grads(&grads);
        let mut adam = Adam::new(&store, 1e-2);
        adam.step_subset(&mut store, &model.d_params);
        for id in &model.g_params {
            assert_eq!(
                store.value(*id).data,
                model.store.value(*id).data,
                "generator param {} moved on a D step",
                store.name(*id)
            );
        }
        // At least one D param moved.
        assert!(model
            .d_params
            .iter()
            .any(|id| store.value(*id).data != model.store.value(*id).data));
    }

    #[test]
    fn untrained_generation_is_a_typed_error() {
        let m = NetShare::new(tiny_config());
        assert_eq!(
            m.generate(1, DeviceType::Phone, 0).unwrap_err(),
            NetShareError::Untrained
        );
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let mut m = NetShare::new(tiny_config());
        assert_eq!(
            m.train(&Dataset::default()).unwrap_err(),
            NetShareError::NoTrainableStreams
        );
        // The failed fit must not leave a half-trained normalizer behind.
        assert!(m.normalizer.is_none());
    }

    #[test]
    fn fine_tune_returns_new_model() {
        let mut m = NetShare::new(tiny_config());
        m.train(&small_data()).expect("train");
        let other = generate_device(&SynthConfig::new(0, 32), DeviceType::Phone, 40);
        let (ft, report) = m.fine_tune(&other, 1).expect("fine-tune");
        assert_eq!(report.epochs.len(), 1);
        // Base model unchanged.
        let id = m.store.ids()[0];
        assert_ne!(ft.store.value(id).data, m.store.value(id).data);
    }
}
