//! A single semi-Markov model on the two-level 3GPP state machine
//! (SMM-1 when used alone; the building block of [`crate::SmmEnsemble`]).

use crate::empirical::EmpiricalDist;
use cpt_statemachine::{StateMachine, SubState, UeState};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fitted semi-Markov model: per-state transition probabilities over
/// legal events plus one empirical sojourn CDF per (state, event)
/// transition, as in §3.3 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiMarkovModel {
    machine: StateMachine,
    device: DeviceType,
    /// Initial-state weights over [`SubState`] indices.
    initial: Vec<f64>,
    /// `counts[state][event]` transition weights (0 where illegal or
    /// unobserved).
    transition_weights: Vec<Vec<f64>>,
    /// Sojourn CDFs keyed by (state index, event index).
    sojourns: HashMap<(usize, usize), EmpiricalDist>,
    /// Empirical offset of each stream's first event within the window,
    /// so generated traffic starts mid-hour like real traffic.
    initial_offset: EmpiricalDist,
}

impl SemiMarkovModel {
    /// Fits an SMM on `dataset` (expected: single device type). Streams
    /// are replayed through `machine`; violating events are skipped the
    /// same way the replay skips them (the ground truth has none anyway).
    pub fn fit(machine: StateMachine, dataset: &Dataset, device: DeviceType) -> Self {
        let n_states = SubState::ALL.len();
        let n_events = EventType::ALL.len();
        let mut initial = vec![0.0; n_states];
        let mut weights = vec![vec![0.0; n_events]; n_states];
        let mut sojourn_samples: HashMap<(usize, usize), Vec<f64>> = HashMap::new();
        let mut offsets = Vec::new();

        for stream in &dataset.streams {
            // Determine the bootstrap point exactly like the metric replay.
            let mut state: Option<(UeState, f64)> = None;
            for ev in &stream.events {
                match state {
                    None => {
                        if let Some(s) = machine.bootstrap_state(ev.event_type) {
                            initial[s.sub().index()] += 1.0;
                            offsets.push(ev.timestamp);
                            state = Some((s, ev.timestamp));
                        }
                    }
                    Some((s, since)) => {
                        if let Ok(next) = machine.transition(s, ev.event_type) {
                            let key = (s.sub().index(), ev.event_type.index());
                            weights[key.0][key.1] += 1.0;
                            sojourn_samples
                                .entry(key)
                                .or_default()
                                .push((ev.timestamp - since).max(0.0));
                            state = Some((next, ev.timestamp));
                        }
                        // Violating events in the fitting data are ignored.
                    }
                }
            }
        }

        let sojourns = sojourn_samples
            .into_iter()
            .map(|(k, v)| (k, EmpiricalDist::fit(v)))
            .collect();
        if offsets.is_empty() {
            offsets.push(0.0);
        }
        SemiMarkovModel {
            machine,
            device,
            initial,
            transition_weights: weights,
            sojourns,
            initial_offset: EmpiricalDist::fit(offsets),
        }
    }

    /// Number of (state, event) transitions with fitted CDFs — the paper's
    /// "283,024 CDFs" count at ensemble scale.
    pub fn num_cdfs(&self) -> usize {
        self.sojourns.len()
    }

    /// The machine this model walks.
    pub fn machine(&self) -> &StateMachine {
        &self.machine
    }

    /// Generates `n` streams covering `duration` seconds each.
    pub fn generate(&self, n: usize, duration: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let streams = (0..n)
            .map(|i| self.generate_stream(UeId(i as u64), duration, &mut rng))
            .collect();
        Dataset::new(streams)
    }

    /// Generates one stream (exposed for the ensemble).
    pub fn generate_stream(&self, ue_id: UeId, duration: f64, rng: &mut StdRng) -> Stream {
        let mut events = Vec::new();
        let Some(start_idx) = sample_weights(&self.initial, rng) else {
            return Stream::new(ue_id, self.device, events);
        };
        let mut state = UeState(SubState::ALL[start_idx]);
        let mut t = self.initial_offset.sample(rng).min(duration * 0.95);
        // Emit the bootstrap event itself: pick among events that
        // bootstrap into `state` — by construction of the machine each
        // bootstrap state has a canonical event.
        if let Some(first_event) = bootstrap_event_for(&self.machine, state) {
            events.push(Event::new(first_event, t));
        }
        loop {
            let weights = &self.transition_weights[state.sub().index()];
            let Some(ev_idx) = sample_weights(weights, rng) else {
                break; // Absorbing in the fitted data (e.g. DEREGISTERED
                       // with no observed re-attach).
            };
            let event = EventType::from_index(ev_idx).expect("valid event index");
            let key = (state.sub().index(), ev_idx);
            let hold = self
                .sojourns
                .get(&key)
                .map(|d| d.sample(rng))
                .unwrap_or(0.0);
            t += hold;
            if t >= duration {
                break;
            }
            events.push(Event::new(event, t));
            state = self
                .machine
                .transition(state, event)
                .expect("fitted transitions are legal");
        }
        Stream::new(ue_id, self.device, events)
    }

    /// Consistency check used by tests: every positive transition weight
    /// corresponds to a legal machine transition with a fitted CDF.
    pub fn validate(&self) -> Result<(), String> {
        for (si, row) in self.transition_weights.iter().enumerate() {
            for (ei, w) in row.iter().enumerate() {
                if *w > 0.0 {
                    let state = UeState(SubState::ALL[si]);
                    let event = EventType::from_index(ei).expect("event index");
                    if self.machine.transition(state, event).is_err() {
                        return Err(format!("illegal fitted transition ({state}, {event})"));
                    }
                    if !self.sojourns.contains_key(&(si, ei)) {
                        return Err(format!("missing CDF for ({state}, {event})"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The event that the replay bootstrap would map to `state`, used to emit
/// the generated stream's first event. Inverse of
/// [`StateMachine::bootstrap_state`] restricted to its canonical images.
fn bootstrap_event_for(machine: &StateMachine, state: UeState) -> Option<EventType> {
    for ev in machine.generation().event_types() {
        if machine.bootstrap_state(*ev) == Some(state) {
            // Prefer SRV_REQ over ATCH for the CONNECTED bootstrap; both
            // map there but SRV_REQ dominates real traces.
            if state.sub() == SubState::SrvS {
                return Some(EventType::ServiceRequest);
            }
            return Some(*ev);
        }
    }
    None
}

fn sample_weights(weights: &[f64], rng: &mut impl Rng) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return Some(i);
        }
        target -= w;
    }
    Some(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_metrics::violation_stats;
    use cpt_synth::{generate_device, SynthConfig};

    fn ground_truth() -> Dataset {
        generate_device(&SynthConfig::new(0, 11), DeviceType::Phone, 300)
    }

    #[test]
    fn fit_produces_valid_model() {
        let data = ground_truth();
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
        smm.validate().unwrap();
        assert!(smm.num_cdfs() >= 5, "too few fitted CDFs: {}", smm.num_cdfs());
    }

    #[test]
    fn generated_streams_have_zero_violations() {
        let data = ground_truth();
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
        let synth = smm.generate(200, 3600.0, 42);
        let v = violation_stats(&StateMachine::lte(), &synth);
        assert_eq!(v.violating_events, 0, "SMM must be violation-free");
        assert!(v.streams_checked > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let data = ground_truth();
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
        assert_eq!(smm.generate(20, 3600.0, 1), smm.generate(20, 3600.0, 1));
        assert_ne!(smm.generate(20, 3600.0, 1), smm.generate(20, 3600.0, 2));
    }

    #[test]
    fn event_breakdown_roughly_matches_training_data() {
        let data = ground_truth();
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
        let synth = smm.generate(300, 3600.0, 7);
        let real_b = data.event_breakdown();
        let synth_b = synth.event_breakdown();
        for et in [EventType::ServiceRequest, EventType::ConnectionRelease] {
            assert!(
                (real_b[&et] - synth_b[&et]).abs() < 0.05,
                "{et}: real {} vs synth {}",
                real_b[&et],
                synth_b[&et]
            );
        }
    }

    #[test]
    fn timestamps_bounded_by_duration() {
        let data = ground_truth();
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &data, DeviceType::Phone);
        let synth = smm.generate(100, 1800.0, 3);
        for s in &synth.streams {
            assert!(s.events.iter().all(|e| e.timestamp < 1800.0));
            assert!(s.events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        }
    }

    #[test]
    fn empty_dataset_yields_empty_streams() {
        let empty = Dataset::new(vec![]);
        let smm = SemiMarkovModel::fit(StateMachine::lte(), &empty, DeviceType::Phone);
        let synth = smm.generate(5, 3600.0, 0);
        assert_eq!(synth.num_streams(), 5);
        assert!(synth.streams.iter().all(|s| s.is_empty()));
    }
}
