//! Empirical (sample-based) distributions for sojourn times.
//!
//! The SMM paper found that classic parametric families (Poisson, Pareto,
//! Weibull, TCPlib) cannot fit cellular sojourn times, and instead derives
//! one CDF per transition. We store the sorted fitted sample and draw by
//! inverse-CDF with linear interpolation between order statistics.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical distribution over non-negative durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Fits from samples. Panics on NaN or an empty sample.
    pub fn fit(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empirical distribution needs samples");
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        EmpiricalDist { sorted: samples }
    }

    /// Number of fitted samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the distribution is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Draws one value: a uniform quantile mapped through the interpolated
    /// inverse CDF.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let q: f64 = rng.gen();
        self.quantile(q)
    }

    /// Interpolated inverse CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Fitted sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_interpolate() {
        let d = EmpiricalDist::fit(vec![10.0, 0.0, 20.0]);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(0.5), 10.0);
        assert_eq!(d.quantile(1.0), 20.0);
        assert!((d.quantile(0.25) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_reproduces_the_sample_distribution() {
        let src = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let d = EmpiricalDist::fit(src);
        let mut rng = StdRng::seed_from_u64(0);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        // Samples stay within the fitted range.
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn single_sample_is_constant() {
        let d = EmpiricalDist::fit(vec![7.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.0);
        }
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn rejects_empty() {
        EmpiricalDist::fit(vec![]);
    }
}
