//! Seeded k-means with k-means++-style initialization, used to cluster
//! UEs by behavioural features (the SMM-20k mechanism).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster centroids, `k × dim`.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
}

/// Runs k-means on `points` (each of equal dimension). `k` is clamped to
/// the number of points. Deterministic for a given seed.
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans needs points");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    let k = k.clamp(1, points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ init: first centroid uniform, then proportional to
    // squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, d) in d2.iter().enumerate() {
                if target < *d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[next].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|a, b| {
                    sq_dist(p, &centroids[*a])
                        .partial_cmp(&sq_dist(p, &centroids[*b]))
                        .expect("no NaN")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, a) in points.iter().zip(&assignments) {
            counts[*a] += 1;
            for (s, v) in sums[*a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                for (cv, sv) in c.iter_mut().zip(sum) {
                    *cv = sv / *count as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    KmeansResult {
        centroids,
        assignments,
    }
}

/// Z-normalizes each feature column in place (zero mean, unit variance;
/// constant columns become zero).
pub fn z_normalize(points: &mut [Vec<f64>]) {
    if points.is_empty() {
        return;
    }
    let dim = points[0].len();
    let n = points.len() as f64;
    for d in 0..dim {
        let mean: f64 = points.iter().map(|p| p[d]).sum::<f64>() / n;
        let var: f64 = points.iter().map(|p| (p[d] - mean) * (p[d] - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        for p in points.iter_mut() {
            p[d] = if std > 1e-12 { (p[d] - mean) / std } else { 0.0 };
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_blobs() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            points.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        let r = kmeans(&points, 2, 0, 50);
        // All even indices in one cluster, all odd in the other.
        let c0 = r.assignments[0];
        let c1 = r.assignments[1];
        assert_ne!(c0, c1);
        for (i, a) in r.assignments.iter().enumerate() {
            assert_eq!(*a, if i % 2 == 0 { c0 } else { c1 }, "point {i}");
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let points = vec![vec![1.0], vec![2.0]];
        let r = kmeans(&points, 10, 0, 10);
        assert_eq!(r.centroids.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let points: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let a = kmeans(&points, 3, 5, 50);
        let b = kmeans(&points, 3, 5, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn z_normalize_standardizes_columns() {
        let mut points = vec![vec![1.0, 100.0], vec![3.0, 100.0], vec![5.0, 100.0]];
        z_normalize(&mut points);
        let mean: f64 = points.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // Constant column becomes zero.
        assert!(points.iter().all(|p| p[1] == 0.0));
    }
}
