//! The clustered SMM ensemble ("SMM-20k" mechanism, §3.3).
//!
//! UEs are clustered on behavioural features (flow length, interarrival
//! scale, sojourn means, mobility fractions), one [`SemiMarkovModel`] is
//! fitted per cluster, and generation samples a cluster by population
//! weight before sampling a stream from its model. This is exactly how
//! the original system captures the per-UE heterogeneity that a single
//! SMM averages away.

use crate::kmeans::{kmeans, z_normalize};
use crate::smm::SemiMarkovModel;
use cpt_statemachine::{replay, StateMachine, TopState};
use cpt_trace::{Dataset, DeviceType, EventType, Stream, UeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An ensemble of per-cluster semi-Markov models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmmEnsemble {
    models: Vec<SemiMarkovModel>,
    weights: Vec<f64>,
    device: DeviceType,
}

impl SmmEnsemble {
    /// Clusters the dataset's UEs into (at most) `k` clusters and fits one
    /// SMM per non-empty cluster.
    pub fn fit(
        machine: StateMachine,
        dataset: &Dataset,
        device: DeviceType,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(k >= 1, "k must be >= 1");
        let usable: Vec<&Stream> = dataset.streams.iter().filter(|s| !s.is_empty()).collect();
        if usable.is_empty() {
            return SmmEnsemble {
                models: vec![SemiMarkovModel::fit(machine, dataset, device)],
                weights: vec![1.0],
                device,
            };
        }
        let mut features: Vec<Vec<f64>> = usable
            .iter()
            .map(|s| stream_features(&machine, s))
            .collect();
        z_normalize(&mut features);
        let clustering = kmeans(&features, k, seed, 50);

        let n_clusters = clustering.centroids.len();
        let mut buckets: Vec<Vec<Stream>> = vec![Vec::new(); n_clusters];
        for (s, a) in usable.iter().zip(&clustering.assignments) {
            buckets[*a].push((*s).clone());
        }
        let mut models = Vec::new();
        let mut weights = Vec::new();
        for bucket in buckets {
            if bucket.is_empty() {
                continue;
            }
            weights.push(bucket.len() as f64);
            models.push(SemiMarkovModel::fit(
                machine,
                &Dataset::with_generation(dataset.generation, bucket),
                device,
            ));
        }
        SmmEnsemble {
            models,
            weights,
            device,
        }
    }

    /// Number of cluster models (≤ the requested k).
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Total fitted CDF count across the ensemble (the paper quotes
    /// 283,024 at full scale).
    pub fn num_cdfs(&self) -> usize {
        self.models.iter().map(SemiMarkovModel::num_cdfs).sum()
    }

    /// Generates `n` streams of `duration` seconds, sampling a cluster per
    /// stream by population weight.
    pub fn generate(&self, n: usize, duration: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let total: f64 = self.weights.iter().sum();
        let streams = (0..n)
            .map(|i| {
                let mut target = rng.gen::<f64>() * total;
                let mut chosen = self.models.len() - 1;
                for (ci, w) in self.weights.iter().enumerate() {
                    if target < *w {
                        chosen = ci;
                        break;
                    }
                    target -= w;
                }
                self.models[chosen].generate_stream(UeId(i as u64), duration, &mut rng)
            })
            .collect();
        Dataset::new(streams)
    }
}

/// Behavioural feature vector for clustering a single UE's stream:
/// log flow length, log mean interarrival, log mean CONNECTED and IDLE
/// sojourns, HO and TAU fractions.
fn stream_features(machine: &StateMachine, stream: &Stream) -> Vec<f64> {
    let len = stream.len() as f64;
    let iats: Vec<f64> = stream.interarrivals().into_iter().skip(1).collect();
    let mean_iat = if iats.is_empty() {
        0.0
    } else {
        iats.iter().sum::<f64>() / iats.len() as f64
    };
    let outcome = replay(machine, stream);
    let conn = outcome.mean_sojourn_in(TopState::Connected).unwrap_or(0.0);
    let idle = outcome.mean_sojourn_in(TopState::Idle).unwrap_or(0.0);
    let frac = |et: EventType| stream.count_of(et) as f64 / len.max(1.0);
    vec![
        (1.0 + len).ln(),
        (1.0 + mean_iat).ln(),
        (1.0 + conn).ln(),
        (1.0 + idle).ln(),
        frac(EventType::Handover),
        frac(EventType::TrackingAreaUpdate),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_metrics::{flow_length_distance, violation_stats, FlowLenKind};
    use cpt_synth::{generate_device, SynthConfig};

    fn ground_truth(seed: u64) -> Dataset {
        generate_device(&SynthConfig::new(0, seed), DeviceType::Phone, 400)
    }

    #[test]
    fn ensemble_fits_multiple_clusters() {
        let data = ground_truth(21);
        let ens = SmmEnsemble::fit(StateMachine::lte(), &data, DeviceType::Phone, 12, 0);
        assert!(ens.num_models() > 1, "expected multiple clusters");
        assert!(ens.num_cdfs() > ens.num_models());
    }

    #[test]
    fn ensemble_generation_is_violation_free_and_deterministic() {
        let data = ground_truth(22);
        let ens = SmmEnsemble::fit(StateMachine::lte(), &data, DeviceType::Phone, 8, 0);
        let synth = ens.generate(150, 3600.0, 5);
        assert_eq!(synth.num_streams(), 150);
        let v = violation_stats(&StateMachine::lte(), &synth);
        assert_eq!(v.violating_events, 0);
        assert_eq!(ens.generate(50, 3600.0, 9), ens.generate(50, 3600.0, 9));
    }

    #[test]
    fn clustered_beats_single_on_flow_length() {
        // The paper's core SMM finding (Table 6): the clustered ensemble
        // models flow-length distributions far better than SMM-1.
        let train = ground_truth(23);
        let test = ground_truth(24);
        let machine = StateMachine::lte();
        let smm1 = SemiMarkovModel::fit(machine, &train, DeviceType::Phone);
        let smmk = SmmEnsemble::fit(machine, &train, DeviceType::Phone, 16, 0);
        let d1 = flow_length_distance(&test, &smm1.generate(400, 3600.0, 1), FlowLenKind::All);
        let dk = flow_length_distance(&test, &smmk.generate(400, 3600.0, 1), FlowLenKind::All);
        assert!(
            dk < d1,
            "clustered SMM ({dk:.3}) should beat SMM-1 ({d1:.3}) on flow length"
        );
    }

    #[test]
    fn empty_dataset_degrades_gracefully() {
        let empty = Dataset::new(vec![]);
        let ens = SmmEnsemble::fit(StateMachine::lte(), &empty, DeviceType::Phone, 4, 0);
        assert_eq!(ens.num_models(), 1);
        let synth = ens.generate(3, 3600.0, 0);
        assert_eq!(synth.num_streams(), 3);
    }
}
