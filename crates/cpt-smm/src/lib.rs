//! Semi-Markov-model baselines (SMM, Meng et al. IMC'23 — §3.3 of the
//! paper).
//!
//! SMM is the domain-knowledge-heavy prior art that CPT-GPT is compared
//! against: the two-level 3GPP state machine is converted into a
//! semi-Markov model whose transition probabilities and sojourn-time CDFs
//! are fitted per transition on the real trace. The paper evaluates two
//! variants:
//!
//! - **SMM-1** ([`SemiMarkovModel`]): a single model per device type.
//!   Cheap, but a single parameterization cannot capture per-UE
//!   heterogeneity — the paper shows it badly misses flow-length and
//!   sojourn distributions (Table 6).
//! - **SMM-20k** ([`SmmEnsemble`]): the original system clusters UEs into
//!   hundreds of clusters per device type and hour and fits one SMM per
//!   cluster (20 216 models, 283 024 CDFs in total). We implement the same
//!   mechanism with a configurable cluster count (`SMM-k`): k-means over
//!   per-UE behavioural features, one SMM per cluster, generation samples
//!   clusters by population weight.
//!
//! By construction both variants replay the state machine, so they never
//! emit semantic violations (which is why Table 5 omits them).

pub mod clustered;
pub mod empirical;
pub mod kmeans;
pub mod smm;

pub use clustered::SmmEnsemble;
pub use empirical::EmpiricalDist;
pub use kmeans::kmeans;
pub use smm::SemiMarkovModel;
