//! Sampling primitives used by the simulator.
//!
//! The SMM paper (Meng et al., IMC'23) found that classic interarrival
//! models (Poisson, Pareto, Weibull, TCPlib) cannot fit cellular
//! control-plane sojourn times; real sojourns are heavy-tailed and
//! multi-modal. We model ground-truth sojourns as mixtures of log-normals,
//! which produce exactly that shape while staying cheap to sample.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Standard normal sample via the Box–Muller transform.
///
/// `rand` 0.8 ships the uniform distribution only (the normal lives in the
/// separate `rand_distr` crate, which is not in our allowed dependency set),
/// so we generate normals ourselves.
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution parameterized by the underlying normal's
/// mean (`mu`) and standard deviation (`sigma`): `X = exp(mu + sigma·Z)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X` (must be `>= 0`).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose *median* is `median` and whose log-space
    /// spread is `sigma`. The median parameterization is more intuitive for
    /// profile tuning ("typical CONNECTED sojourn ≈ 12 s").
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0 && sigma >= 0.0, "invalid log-normal params");
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }

    /// Analytic mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Mixture of log-normals with non-negative component weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogNormalMix {
    components: Vec<(f64, LogNormal)>,
    total_weight: f64,
}

impl LogNormalMix {
    /// Creates a mixture from `(weight, component)` pairs. Weights need not
    /// be normalized but must be non-negative with a positive sum.
    pub fn new(components: Vec<(f64, LogNormal)>) -> Self {
        assert!(!components.is_empty(), "mixture needs >= 1 component");
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0),
            "negative mixture weight"
        );
        let total_weight: f64 = components.iter().map(|(w, _)| w).sum();
        assert!(total_weight > 0.0, "mixture weights sum to zero");
        LogNormalMix {
            components,
            total_weight,
        }
    }

    /// Single-component convenience constructor.
    pub fn single(median: f64, sigma: f64) -> Self {
        LogNormalMix::new(vec![(1.0, LogNormal::with_median(median, sigma))])
    }

    /// Draws one sample: picks a component by weight, then samples it.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let mut target = rng.gen::<f64>() * self.total_weight;
        for (w, comp) in &self.components {
            if target < *w {
                return comp.sample(rng);
            }
            target -= w;
        }
        // Floating-point fallthrough: use the last component.
        self.components
            .last()
            .expect("nonempty mixture")
            .1
            .sample(rng)
    }

    /// Analytic mean of the mixture.
    pub fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|(w, c)| w / self.total_weight * c.mean())
            .sum()
    }

    /// Returns a copy with every component's median scaled by `factor`
    /// (log-space shift). Used for per-UE activity multipliers and
    /// hour-of-day modulation.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        LogNormalMix {
            components: self
                .components
                .iter()
                .map(|(w, c)| {
                    (
                        *w,
                        LogNormal {
                            mu: c.mu + factor.ln(),
                            sigma: c.sigma,
                        },
                    )
                })
                .collect(),
            total_weight: self.total_weight,
        }
    }
}

/// Categorical distribution over `0..n` with explicit weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Categorical {
    weights: Vec<f64>,
    total: f64,
}

impl Categorical {
    /// Creates a categorical from non-negative weights with a positive sum.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "categorical needs >= 1 weight");
        assert!(weights.iter().all(|w| *w >= 0.0), "negative weight");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        Categorical { weights, total }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let mut target = rng.gen::<f64>() * self.total;
        for (i, w) in self.weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        self.weights.len() - 1
    }

    /// Normalized probability of index `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the distribution has no categories (never true after
    /// construction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| x * x).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = LogNormal::with_median(12.0, 0.8);
        assert!((d.median() - 12.0).abs() < 1e-9);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_median = samples[n / 2];
        assert!((emp_median - 12.0).abs() / 12.0 < 0.05, "median {emp_median}");
        let emp_mean = samples.iter().sum::<f64>() / n as f64;
        assert!((emp_mean - d.mean()).abs() / d.mean() < 0.05, "mean {emp_mean}");
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let mix = LogNormalMix::new(vec![
            (3.0, LogNormal::with_median(10.0, 0.0)),
            (1.0, LogNormal::with_median(100.0, 0.0)),
        ]);
        // sigma = 0 → components are point masses at their medians.
        assert!((mix.mean() - (0.75 * 10.0 + 0.25 * 100.0)).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| mix.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - mix.mean()).abs() / mix.mean() < 0.02);
    }

    #[test]
    fn mixture_scaled_shifts_median() {
        let mix = LogNormalMix::single(10.0, 0.5).scaled(3.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| mix.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        assert!((med - 30.0).abs() / 30.0 < 0.05, "median {med}");
    }

    #[test]
    fn categorical_frequencies() {
        let cat = Categorical::new(vec![1.0, 2.0, 7.0]);
        assert!((cat.prob(2) - 0.7).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[cat.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!((emp - cat.prob(i)).abs() < 0.01, "cat {i}: {emp}");
        }
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn categorical_rejects_zero_weights() {
        Categorical::new(vec![0.0, 0.0]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = LogNormalMix::single(10.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..10).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
