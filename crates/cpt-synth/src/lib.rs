//! Ground-truth control-plane trace simulator.
//!
//! The paper trains and evaluates on a proprietary trace from a major US
//! carrier (73 M events, 430 939 UEs over 8 days — §4.1) that cannot be
//! redistributed. This crate is the substitute mandated by our reproduction
//! plan: a seeded stochastic simulator that drives the 4G two-level 3GPP
//! state machine of `cpt-statemachine` with per-device-type behaviour
//! profiles tuned to the *published* statistics of that trace:
//!
//! - event-type breakdowns per device type (Table 7's "Real" columns);
//! - CONNECTED sojourns concentrated in 5–50 s for phones (§4.2.1, Fig. 2),
//!   heavier-tailed for connected cars and tablets (Fig. 5);
//! - long-tailed interarrival times spanning several orders of magnitude
//!   (Fig. 7), which is the rationale for CPT-GPT's log-scaling;
//! - per-UE activity heterogeneity, producing the wide flow-length spread
//!   SMM-1 famously fails to model (Fig. 5, middle column);
//! - hour-of-day drift, so that the transfer-learning experiments
//!   (Tables 4/9/10) have a real distribution shift to adapt to.
//!
//! Because the generated "real" traces are replayed through the same state
//! machine used by the violation metric, they are semantically correct by
//! construction (verified by tests), exactly like a real carrier trace.

pub mod config;
pub mod dist;
pub mod generator;
pub mod profile;

pub use config::SynthConfig;
pub use dist::{Categorical, LogNormal, LogNormalMix};
pub use generator::{generate, generate_ctb, generate_device, generate_streaming};
pub use profile::{DeviceProfile, DiurnalCurve};
