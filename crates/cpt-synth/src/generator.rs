//! The simulation loop: drives the two-level state machine per UE.

use crate::config::SynthConfig;
use crate::dist::sample_standard_normal;
use crate::profile::DeviceProfile;
use cpt_statemachine::StateMachine;
use cpt_trace::columnar::{ColumnarWriter, CtbError, CtbSummary};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Generation, Stream, UeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::path::Path;

/// UEs simulated per parallel chunk by [`generate_streaming`]; bounds the
/// number of materialized streams while keeping every core busy.
const STREAM_CHUNK_UES: usize = 4096;

/// Per-device UE counts matching the paper's population shares, with the
/// rounding remainder assigned to phones.
fn device_counts(config: &SynthConfig) -> [usize; 3] {
    let mut counts = [0usize; 3];
    for dt in DeviceType::ALL {
        counts[dt.index()] =
            (config.num_ues as f64 * dt.population_share()).round() as usize;
    }
    // Rounding may drop/add a UE; give the remainder to phones.
    let assigned: usize = counts.iter().sum();
    counts[0] = (counts[0] as i64 + config.num_ues as i64 - assigned as i64).max(0) as usize;
    counts
}

/// Simulates UE `i` of `device` with its deterministic per-UE RNG.
///
/// The seed derivation makes generation deterministic under any thread
/// count and any chunking. The multiplier is splitmix64's increment, a
/// good odd constant for decorrelating consecutive indices.
fn simulate_indexed_ue(config: &SynthConfig, profile: &DeviceProfile, i: usize) -> Stream {
    let ue_seed = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(profile.device.index() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64 + 1);
    let mut rng = StdRng::seed_from_u64(ue_seed);
    simulate_ue(config, profile, UeId(i as u64), &mut rng)
}

/// Generates a mixed-device trace with the paper's population shares
/// (§4.1: ~65 % phones, ~26 % connected cars, ~9 % tablets).
pub fn generate(config: &SynthConfig) -> Dataset {
    let counts = device_counts(config);
    let mut streams = Vec::with_capacity(config.num_ues);
    let mut next_id = 0u64;
    for dt in DeviceType::ALL {
        let ds = generate_device(config, dt, counts[dt.index()]);
        for mut s in ds.streams {
            s.ue_id = UeId(next_id);
            next_id += 1;
            streams.push(s);
        }
    }
    Dataset::with_generation(config.generation, streams)
}

/// Generates the same trace as [`generate`] — stream for stream, bit for
/// bit — but hands each stream to `sink` in order instead of materializing
/// a [`Dataset`]. Peak memory is one [`STREAM_CHUNK_UES`]-sized chunk of
/// simulated streams, so paper-scale traces can be written straight to disk.
///
/// Returns `(streams, events)` emitted.
pub fn generate_streaming<E>(
    config: &SynthConfig,
    mut sink: impl FnMut(&Stream) -> Result<(), E>,
) -> Result<(u64, u64), E> {
    let counts = device_counts(config);
    let mut next_id = 0u64;
    let mut events = 0u64;
    for dt in DeviceType::ALL {
        let profile = DeviceProfile::for_device(dt);
        let count = counts[dt.index()];
        let mut start = 0usize;
        while start < count {
            let end = (start + STREAM_CHUNK_UES).min(count);
            let chunk: Vec<Stream> = (start..end)
                .into_par_iter()
                .map(|i| simulate_indexed_ue(config, &profile, i))
                .filter(|s| !s.is_empty())
                .collect();
            for mut s in chunk {
                s.ue_id = UeId(next_id);
                next_id += 1;
                events += s.len() as u64;
                sink(&s)?;
            }
            start = end;
        }
    }
    Ok((next_id, events))
}

/// Simulates straight into a `.ctb` columnar trace at `path` without ever
/// holding more than one generation chunk in memory.
pub fn generate_ctb(config: &SynthConfig, path: impl AsRef<Path>) -> Result<CtbSummary, CtbError> {
    let mut writer = ColumnarWriter::create(path, config.generation)?;
    generate_streaming(config, |s| writer.push_stream(s))?;
    writer.finish()
}

/// Generates `count` UEs of a single device type.
pub fn generate_device(config: &SynthConfig, device: DeviceType, count: usize) -> Dataset {
    let profile = DeviceProfile::for_device(device);
    let streams: Vec<Stream> = (0..count)
        .into_par_iter()
        .map(|i| simulate_indexed_ue(config, &profile, i))
        .filter(|s| !s.is_empty())
        .collect();
    Dataset::with_generation(config.generation, streams)
}

/// Draws a Poisson count (Knuth's algorithm; fine for the small λ used by
/// the profiles).
fn sample_poisson(rng: &mut impl Rng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological λ; the profiles stay below 1.
        if k > 10_000 {
            return k;
        }
    }
}

/// Simulates one UE over the configured duration, emitting only events
/// whose timestamps fall in `[0, duration)`.
fn simulate_ue(
    config: &SynthConfig,
    profile: &DeviceProfile,
    ue_id: UeId,
    rng: &mut StdRng,
) -> Stream {
    let duration = config.duration_seconds();
    let is_lte = config.generation == Generation::Lte;
    // Per-UE activity multiplier: scales all dwell times (heterogeneity).
    let activity = (profile.activity_sigma * sample_standard_normal(rng)).exp();

    let mut events: Vec<Event> = Vec::new();
    let push = |t: f64, et: EventType, events: &mut Vec<Event>| {
        if (0.0..duration).contains(&t) && (et.exists_in(config.generation)) {
            events.push(Event::new(et, t));
        }
    };

    // Start mid-cycle: begin IDLE with a uniformly sampled residual so the
    // UE population is unsynchronized. Start the clock one mean cycle early
    // so the window begins in steady state.
    let warmup = profile.mean_cycle_seconds() * activity;
    let mut t = -warmup * rng.gen::<f64>();

    // The diurnal factor at absolute simulation time `t` seconds.
    let hour_at = |t: f64| config.start_hour + t / 3600.0;

    while t < duration {
        let dfac = profile.diurnal.factor(hour_at(t)) * activity;

        // ---- IDLE period ----
        let idle_len = profile.idle_sojourn.scaled(dfac).sample(rng);
        // Idle-mode TAUs (4G only), uniform within the idle period.
        if is_lte {
            let n_tau = sample_poisson(rng, profile.idle_tau_per_idle);
            let mut tau_offsets: Vec<f64> =
                (0..n_tau).map(|_| rng.gen::<f64>() * idle_len).collect();
            tau_offsets.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            for off in tau_offsets {
                push(t + off, EventType::TrackingAreaUpdate, &mut events);
            }
        }
        t += idle_len;
        if t >= duration {
            break;
        }

        // ---- End of idle: reconnect, or detach → dwell → re-attach ----
        if rng.gen::<f64>() < profile.p_detach {
            push(t, EventType::Detach, &mut events);
            let dwell = profile.deregistered_dwell.scaled(activity).sample(rng);
            t += dwell;
            if t >= duration {
                break;
            }
            push(t, EventType::Attach, &mut events);
        } else {
            push(t, EventType::ServiceRequest, &mut events);
        }

        // ---- CONNECTED period ----
        let conn_len = profile
            .connected_sojourn
            .scaled(profile.diurnal.factor(hour_at(t)) * activity)
            .sample(rng);
        let n_ho = sample_poisson(rng, profile.ho_per_connection);
        let mut ho_offsets: Vec<f64> = (0..n_ho)
            .map(|_| rng.gen::<f64>() * conn_len * 0.95)
            .collect();
        ho_offsets.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        for (j, off) in ho_offsets.iter().enumerate() {
            push(t + off, EventType::Handover, &mut events);
            if is_lte && rng.gen::<f64>() < profile.p_tau_after_ho {
                // Complete the handover with a TAU shortly after, strictly
                // before the next HO and before the release.
                let next_boundary = ho_offsets.get(j + 1).copied().unwrap_or(conn_len);
                let gap = (next_boundary - off).max(1e-3);
                let tau_off = off + (0.5 + 1.5 * rng.gen::<f64>()).min(gap * 0.5);
                push(t + tau_off, EventType::TrackingAreaUpdate, &mut events);
            }
        }
        t += conn_len;
        push(t, EventType::ConnectionRelease, &mut events);
    }

    events.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).expect("no NaN"));
    Stream::new(ue_id, profile.device, events)
}

/// Asserts (by replay) that a dataset is semantically correct. Used by
/// tests; exported so downstream integration tests can reuse it.
pub fn assert_semantically_valid(dataset: &Dataset) -> Result<(), String> {
    let machine = StateMachine::for_generation(dataset.generation);
    for stream in &dataset.streams {
        let outcome = cpt_statemachine::replay(&machine, stream);
        if outcome.has_violation() {
            return Err(format!(
                "stream {} ({} events) violates: {:?}",
                stream.ue_id,
                stream.len(),
                outcome.violations.first()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::stats::mean;

    #[test]
    fn deterministic_given_seed() {
        let c = SynthConfig::new(50, 42);
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a, b);
        let c2 = SynthConfig::new(50, 43);
        assert_ne!(generate(&c2), a);
    }

    #[test]
    fn generated_traces_are_semantically_valid() {
        let d = generate(&SynthConfig::new(200, 1));
        assert!(d.num_streams() > 0);
        assert_semantically_valid(&d).unwrap();
    }

    #[test]
    fn nr_traces_are_semantically_valid_and_tau_free() {
        let c = SynthConfig::new(100, 2).generation(Generation::Nr);
        let d = generate(&c);
        assert_semantically_valid(&d).unwrap();
        for s in &d.streams {
            assert!(s
                .events
                .iter()
                .all(|e| e.event_type != EventType::TrackingAreaUpdate));
        }
    }

    #[test]
    fn timestamps_inside_window_and_sorted() {
        let c = SynthConfig::new(100, 3).hours(2.0);
        let d = generate(&c);
        for s in &d.streams {
            assert!(s
                .events
                .iter()
                .all(|e| (0.0..7200.0).contains(&e.timestamp)));
            assert!(s
                .events
                .windows(2)
                .all(|w| w[0].timestamp <= w[1].timestamp));
        }
    }

    #[test]
    fn event_breakdown_close_to_paper_for_phones() {
        // Table 7 "Real" column for phones. Generous tolerances: this is a
        // simulator, not a curve fit, but dominant shares must match.
        let d = generate_device(&SynthConfig::new(0, 4).hours(4.0), DeviceType::Phone, 800);
        let b = d.event_breakdown();
        let srv = b[&EventType::ServiceRequest];
        let rel = b[&EventType::ConnectionRelease];
        let ho = b[&EventType::Handover];
        let tau = b[&EventType::TrackingAreaUpdate];
        assert!((srv - 0.4706).abs() < 0.05, "SRV_REQ {srv}");
        assert!((rel - 0.4825).abs() < 0.05, "S1_CONN_REL {rel}");
        assert!((ho - 0.0288).abs() < 0.015, "HO {ho}");
        assert!((tau - 0.0159).abs() < 0.015, "TAU {tau}");
        assert!(b[&EventType::Attach] < 0.02);
        assert!(b[&EventType::Detach] < 0.02);
    }

    #[test]
    fn connected_cars_have_more_handovers_than_phones() {
        let cfg = SynthConfig::new(0, 5).hours(2.0);
        let phones = generate_device(&cfg, DeviceType::Phone, 300).event_breakdown();
        let cars = generate_device(&cfg, DeviceType::ConnectedCar, 300).event_breakdown();
        assert!(cars[&EventType::Handover] > 2.0 * phones[&EventType::Handover]);
    }

    #[test]
    fn phone_connected_sojourns_mostly_5_to_50_seconds() {
        // §4.2.1: "the majority of streams in the real dataset have an
        // averaged CONNECTED state sojourn time ranging from 5 to 50 s".
        let d = generate_device(&SynthConfig::new(0, 6), DeviceType::Phone, 400);
        let machine = StateMachine::lte();
        let means: Vec<f64> = d
            .streams
            .iter()
            .filter_map(|s| {
                cpt_statemachine::replay(&machine, s)
                    .mean_sojourn_in(cpt_statemachine::TopState::Connected)
            })
            .collect();
        assert!(means.len() > 100, "not enough UEs with sojourns");
        let in_range = means.iter().filter(|m| (5.0..=50.0).contains(*m)).count();
        assert!(
            in_range as f64 / means.len() as f64 > 0.6,
            "only {}/{} in 5–50 s",
            in_range,
            means.len()
        );
    }

    #[test]
    fn flow_lengths_are_heterogeneous() {
        let d = generate_device(&SynthConfig::new(0, 7), DeviceType::Phone, 400);
        let lens = d.flow_lengths();
        let m = mean(&lens);
        let max = lens.iter().cloned().fold(0.0f64, f64::max);
        let min = lens.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(m > 5.0, "mean flow length {m}");
        assert!(max > 4.0 * m, "max {max} vs mean {m}");
        assert!(min < m, "min {min} vs mean {m}");
    }

    #[test]
    fn diurnal_drift_changes_hourly_volume() {
        // An evening-peak trace must contain more phone events than an
        // overnight-trough trace of equal population.
        let peak = generate_device(
            &SynthConfig::new(0, 8).starting_at(19.0),
            DeviceType::Phone,
            300,
        );
        let trough = generate_device(
            &SynthConfig::new(0, 8).starting_at(7.0),
            DeviceType::Phone,
            300,
        );
        assert!(
            peak.num_events() as f64 > 1.15 * trough.num_events() as f64,
            "peak {} vs trough {}",
            peak.num_events(),
            trough.num_events()
        );
    }

    #[test]
    fn mixed_generation_respects_population_shares() {
        let d = generate(&SynthConfig::new(1000, 9));
        let s = d.summary();
        let phone_share = s.phones as f64 / s.streams as f64;
        assert!((phone_share - 0.646).abs() < 0.05, "phone share {phone_share}");
        // UE ids are unique.
        let mut ids: Vec<u64> = d.streams.iter().map(|s| s.ue_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), d.num_streams());
    }

    #[test]
    fn streaming_generation_matches_batch_exactly() {
        let c = SynthConfig::new(300, 11);
        let batch = generate(&c);
        let mut streamed: Vec<Stream> = Vec::new();
        let (n_streams, n_events) = generate_streaming(&c, |s| {
            streamed.push(s.clone());
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        assert_eq!(streamed, batch.streams);
        assert_eq!(n_streams as usize, batch.num_streams());
        assert_eq!(n_events as usize, batch.num_events());
    }

    #[test]
    fn generate_ctb_equals_batch_written_ctb() {
        let c = SynthConfig::new(120, 12);
        let dir = std::env::temp_dir().join(format!("cpt-synth-ctb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let streamed_path = dir.join("streamed.ctb");
        let batch_path = dir.join("batch.ctb");
        let summary = generate_ctb(&c, &streamed_path).unwrap();
        let batch = generate(&c);
        cpt_trace::columnar::write_ctb(&batch, &batch_path).unwrap();
        assert_eq!(summary.streams as usize, batch.num_streams());
        assert_eq!(summary.events as usize, batch.num_events());
        // The two paths must agree byte for byte.
        assert_eq!(
            std::fs::read(&streamed_path).unwrap(),
            std::fs::read(&batch_path).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean_emp: f64 = (0..n)
            .map(|_| sample_poisson(&mut rng, 0.2) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean_emp - 0.2).abs() < 0.01, "{mean_emp}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }
}
