//! Per-device-type behaviour profiles.
//!
//! Each profile is tuned so that the simulated trace reproduces the
//! *published* statistics of the paper's proprietary dataset for that device
//! type: the "Real" event-type breakdown columns of Table 7, the sojourn
//! ranges discussed in §4.2.1/Fig. 5, and the long-tailed interarrival
//! distribution of Fig. 7. The derivations are spelled out inline.

use crate::dist::LogNormalMix;
use cpt_trace::DeviceType;
use serde::{Deserialize, Serialize};

/// Hour-of-day activity modulation.
///
/// `factor(h)` multiplies the medians of the sojourn distributions at hour
/// `h`: a factor > 1 means *slower* UEs (longer sojourns, fewer events) —
/// the overnight trough — and < 1 means the evening busy-hour. This is the
/// long-term data drift (C5) that the transfer-learning experiments adapt
/// to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Peak-to-trough amplitude; 0 disables diurnal variation.
    pub amplitude: f64,
    /// Hour (0–23) of maximum activity (minimum factor).
    pub peak_hour: f64,
}

impl DiurnalCurve {
    /// A flat curve (no drift).
    pub fn flat() -> Self {
        DiurnalCurve {
            amplitude: 0.0,
            peak_hour: 19.0,
        }
    }

    /// Sojourn-median multiplier at hour-of-day `h` (fractional hours
    /// allowed; wraps modulo 24).
    pub fn factor(&self, h: f64) -> f64 {
        let phase = (h - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        // cos = 1 at the peak hour → minimum factor (most active).
        (1.0 - self.amplitude * phase.cos()).max(0.05)
    }
}

/// Stochastic behaviour profile of one device type.
///
/// A UE alternates CONNECTED and IDLE periods while registered; handovers
/// (optionally completed by TAU) happen inside CONNECTED periods, idle-mode
/// TAUs inside IDLE periods, and occasionally the UE detaches, dwells
/// deregistered, and re-attaches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// The device type this profile models.
    pub device: DeviceType,
    /// Total duration of one CONNECTED period (seconds).
    pub connected_sojourn: LogNormalMix,
    /// Total duration of one IDLE period (seconds).
    pub idle_sojourn: LogNormalMix,
    /// Expected handovers per CONNECTED period (Poisson).
    pub ho_per_connection: f64,
    /// Probability that a handover is completed by a TAU (inter-tracking-
    /// area handovers record one; intra-TA handovers do not).
    pub p_tau_after_ho: f64,
    /// Expected idle-mode (periodic) TAUs per IDLE period (Poisson).
    pub idle_tau_per_idle: f64,
    /// Probability that an IDLE period ends in DTCH (+ deregistered dwell +
    /// ATCH) instead of SRV_REQ.
    pub p_detach: f64,
    /// Dwell time while deregistered (seconds).
    pub deregistered_dwell: LogNormalMix,
    /// Std-dev of the per-UE log-normal activity multiplier. Larger values
    /// spread per-UE flow lengths more (the heterogeneity SMM-1 cannot
    /// capture).
    pub activity_sigma: f64,
    /// Hour-of-day modulation.
    pub diurnal: DiurnalCurve,
}

impl DeviceProfile {
    /// Profile for a device type, tuned to the paper's published
    /// statistics.
    ///
    /// Breakdown targets (Table 7, "Real"): with `connects` = SRV_REQ +
    /// ATCH fractions, the per-cycle rates below follow as
    /// `ho_per_connection = HO / connects`, `TAU = HO·p_tau_after_ho +
    /// idle_tau_per_idle·connects`, `p_detach = ATCH / connects`.
    pub fn for_device(device: DeviceType) -> Self {
        match device {
            // Phones: SRV_REQ 47.06 %, S1_CONN_REL 48.25 %, HO 2.88 %,
            // TAU 1.59 %, ATCH 0.12 %, DTCH 0.11 %. CONNECTED sojourns
            // mostly 5–50 s (§4.2.1).
            DeviceType::Phone => DeviceProfile {
                device,
                connected_sojourn: LogNormalMix::new(vec![
                    (0.85, crate::dist::LogNormal::with_median(12.0, 0.6)),
                    (0.15, crate::dist::LogNormal::with_median(45.0, 0.5)),
                ]),
                idle_sojourn: LogNormalMix::new(vec![
                    (0.70, crate::dist::LogNormal::with_median(60.0, 1.0)),
                    (0.30, crate::dist::LogNormal::with_median(300.0, 0.8)),
                ]),
                ho_per_connection: 0.061,
                p_tau_after_ho: 0.40,
                idle_tau_per_idle: 0.009,
                p_detach: 0.0025,
                deregistered_dwell: LogNormalMix::single(600.0, 1.0),
                activity_sigma: 0.70,
                diurnal: DiurnalCurve {
                    amplitude: 0.45,
                    peak_hour: 19.0,
                },
            },
            // Connected cars: SRV_REQ 39.75 %, S1_CONN_REL 44.14 %,
            // HO 8.59 %, TAU 5.55 %, ATCH 1.00 %, DTCH 0.97 % — heavy
            // mobility, long idle periods (Fig. 5 shows idle modes around
            // 200–300 s).
            DeviceType::ConnectedCar => DeviceProfile {
                device,
                connected_sojourn: LogNormalMix::new(vec![
                    (0.70, crate::dist::LogNormal::with_median(18.0, 0.9)),
                    (0.30, crate::dist::LogNormal::with_median(80.0, 0.7)),
                ]),
                idle_sojourn: LogNormalMix::new(vec![
                    (0.60, crate::dist::LogNormal::with_median(200.0, 0.9)),
                    (0.40, crate::dist::LogNormal::with_median(500.0, 0.7)),
                ]),
                ho_per_connection: 0.211,
                p_tau_after_ho: 0.50,
                idle_tau_per_idle: 0.031,
                p_detach: 0.0245,
                deregistered_dwell: LogNormalMix::single(900.0, 1.0),
                activity_sigma: 0.50,
                diurnal: DiurnalCurve {
                    amplitude: 0.60,
                    peak_hour: 8.0,
                },
            },
            // Tablets: SRV_REQ 44.51 %, S1_CONN_REL 47.70 %, HO 2.61 %,
            // TAU 2.97 %, ATCH 1.13 %, DTCH 1.08 % — phone-like mix, lower
            // activity, wider spread.
            DeviceType::Tablet => DeviceProfile {
                device,
                connected_sojourn: LogNormalMix::new(vec![
                    (0.80, crate::dist::LogNormal::with_median(10.0, 0.9)),
                    (0.20, crate::dist::LogNormal::with_median(100.0, 0.8)),
                ]),
                idle_sojourn: LogNormalMix::new(vec![
                    (0.50, crate::dist::LogNormal::with_median(90.0, 1.2)),
                    (0.50, crate::dist::LogNormal::with_median(400.0, 0.9)),
                ]),
                ho_per_connection: 0.057,
                p_tau_after_ho: 0.50,
                idle_tau_per_idle: 0.037,
                p_detach: 0.0248,
                deregistered_dwell: LogNormalMix::single(1200.0, 1.2),
                activity_sigma: 0.90,
                diurnal: DiurnalCurve {
                    amplitude: 0.35,
                    peak_hour: 21.0,
                },
            },
        }
    }

    /// Expected seconds per CONNECTED+IDLE cycle (ignoring detach dwells),
    /// handy for sizing simulations.
    pub fn mean_cycle_seconds(&self) -> f64 {
        self.connected_sojourn.mean() + self.idle_sojourn.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_flat_is_identity() {
        let d = DiurnalCurve::flat();
        for h in 0..24 {
            assert!((d.factor(h as f64) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_peak_hour_is_most_active() {
        let d = DiurnalCurve {
            amplitude: 0.5,
            peak_hour: 19.0,
        };
        let peak = d.factor(19.0);
        let trough = d.factor(7.0);
        assert!(peak < trough);
        assert!((peak - 0.5).abs() < 1e-9);
        assert!((trough - 1.5).abs() < 1e-9);
        // Factors stay positive no matter the amplitude.
        let extreme = DiurnalCurve {
            amplitude: 2.0,
            peak_hour: 0.0,
        };
        for h in 0..24 {
            assert!(extreme.factor(h as f64) > 0.0);
        }
    }

    #[test]
    fn profiles_exist_and_are_sane() {
        for dt in DeviceType::ALL {
            let p = DeviceProfile::for_device(dt);
            assert_eq!(p.device, dt);
            assert!(p.ho_per_connection > 0.0 && p.ho_per_connection < 1.0);
            assert!((0.0..=1.0).contains(&p.p_tau_after_ho));
            assert!((0.0..=1.0).contains(&p.p_detach));
            assert!(p.mean_cycle_seconds() > 10.0);
        }
    }

    #[test]
    fn cars_are_more_mobile_than_phones() {
        let phone = DeviceProfile::for_device(DeviceType::Phone);
        let car = DeviceProfile::for_device(DeviceType::ConnectedCar);
        assert!(car.ho_per_connection > 3.0 * phone.ho_per_connection);
        assert!(car.idle_sojourn.mean() > phone.idle_sojourn.mean());
    }
}
