//! Simulation configuration.

use cpt_trace::Generation;
use serde::{Deserialize, Serialize};

/// Configuration for one simulated trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Master seed; every derived RNG (one per UE) is a deterministic
    /// function of this and the UE index.
    pub seed: u64,
    /// Number of UEs to simulate (mixed across device types by the paper's
    /// population shares when using [`crate::generate`]).
    pub num_ues: usize,
    /// Trace duration in hours.
    pub duration_hours: f64,
    /// Hour-of-day at trace start (0–23); drives the diurnal drift so that
    /// e.g. an "hour 3" trace differs from an "hour 19" trace.
    pub start_hour: f64,
    /// Cellular generation to simulate.
    pub generation: Generation,
}

impl SynthConfig {
    /// A 1-hour LTE trace starting at 10:00 with `num_ues` UEs.
    pub fn new(num_ues: usize, seed: u64) -> Self {
        SynthConfig {
            seed,
            num_ues,
            duration_hours: 1.0,
            start_hour: 10.0,
            generation: Generation::Lte,
        }
    }

    /// Sets the duration in hours.
    pub fn hours(mut self, hours: f64) -> Self {
        self.duration_hours = hours;
        self
    }

    /// Sets the starting hour-of-day.
    pub fn starting_at(mut self, hour: f64) -> Self {
        self.start_hour = hour;
        self
    }

    /// Sets the generation.
    pub fn generation(mut self, generation: Generation) -> Self {
        self.generation = generation;
        self
    }

    /// Trace duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_hours * 3600.0
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig::new(1000, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = SynthConfig::new(10, 7).hours(6.0).starting_at(3.0);
        assert_eq!(c.num_ues, 10);
        assert_eq!(c.seed, 7);
        assert!((c.duration_seconds() - 21_600.0).abs() < 1e-9);
        assert!((c.start_hour - 3.0).abs() < 1e-12);
    }
}
