//! Autoregressive inference (§4.5) with numeric guardrails.
//!
//! Each stream starts from a token whose event type is sampled from the
//! released initial-event-type distribution and whose interarrival and
//! stop flag are zero (matching training, where the first token always has
//! interarrival 0 and length-1 streams are excluded). The model is then
//! decoded recursively — the (K+1)-th token is predicted from the previous
//! K — until it emits a stop flag or hits the configured maximum length.
//!
//! Categorical fields are sampled from the predicted softmax; the
//! interarrival is sampled from the predicted Gaussian (Design 2). Streams
//! are generated in chunks of `batch_size` — one KV-cached decode step per
//! position per chunk — and the chunks run in parallel under rayon. Each
//! chunk's RNG is derived from `(seed, chunk_index)` alone, so output is
//! bit-identical at any thread count (see [`chunk_rng`]).
//!
//! Guardrails: a poisoned or half-trained model can emit NaN logits or a
//! non-finite interarrival. Inference never panics on these — non-finite
//! interarrival draws are resampled up to
//! [`GenerateConfig::max_resample`] times and then clamped; non-finite
//! logits fall back to sanitized (ultimately uniform) sampling; stream
//! length is capped. Every intervention is tallied in [`GenCounters`] so
//! callers can tell a clean run from a degraded one.

use crate::error::GenerateError;
use crate::model::CptGpt;
use cpt_nn::Tensor;
use cpt_trace::{Dataset, DeviceType, EventType, Stream, UeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Inference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerateConfig {
    /// Number of UE streams to synthesize.
    pub num_streams: usize,
    /// Device type stamped on the generated streams (the model itself is
    /// per-device-type, as in §5.1).
    pub device_type: DeviceType,
    /// RNG seed.
    pub seed: u64,
    /// Softmax temperature for the categorical heads (1.0 = the paper's
    /// plain sampling).
    pub temperature: f32,
    /// Streams decoded per batched forward pass.
    pub batch_size: usize,
    /// Truncated sampling for the event-type head. The paper samples the
    /// full softmax; truncation is a standard inference-time knob that
    /// trades diversity for semantic precision.
    pub sampling: Sampling,
    /// Retry budget for non-finite interarrival draws before degrading to
    /// a clamped value.
    #[serde(default = "default_max_resample")]
    pub max_resample: u32,
    /// Optional stream-length cap below the model's `max_len` (runaway
    /// guard); `None` uses the model's limit.
    #[serde(default)]
    pub max_stream_len: Option<usize>,
}

fn default_max_resample() -> u32 {
    8
}

/// Categorical sampling strategies for the event-type head.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Sampling {
    /// Sample the full softmax (the paper's default).
    #[default]
    Full,
    /// Sample only among the `k` most probable events.
    TopK(usize),
    /// Sample the smallest probability mass that reaches `p` (nucleus /
    /// top-p sampling).
    Nucleus(f32),
}

impl GenerateConfig {
    /// Generates `n` phone streams with default sampling settings.
    pub fn new(n: usize, seed: u64) -> Self {
        GenerateConfig {
            num_streams: n,
            device_type: DeviceType::Phone,
            seed,
            temperature: 1.0,
            batch_size: 64,
            sampling: Sampling::Full,
            max_resample: default_max_resample(),
            max_stream_len: None,
        }
    }

    /// Builder: sets the device type.
    pub fn device(mut self, device_type: DeviceType) -> Self {
        self.device_type = device_type;
        self
    }

    /// Builder: sets the event-head sampling strategy.
    pub fn sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Builder: caps generated stream length below the model's `max_len`.
    pub fn with_max_stream_len(mut self, n: usize) -> Self {
        self.max_stream_len = Some(n);
        self
    }

    /// Checks every field against its domain, returning the first
    /// violation as [`GenerateError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), GenerateError> {
        fn bad(field: &'static str, message: impl Into<String>) -> GenerateError {
            GenerateError::InvalidConfig {
                field,
                message: message.into(),
            }
        }
        if self.batch_size == 0 {
            return Err(bad("batch_size", "must be at least 1"));
        }
        if !self.temperature.is_finite() || self.temperature <= 0.0 {
            return Err(bad(
                "temperature",
                format!("must be finite and positive, got {}", self.temperature),
            ));
        }
        if self.max_stream_len == Some(0) {
            return Err(bad("max_stream_len", "must be at least 1 when set"));
        }
        match self.sampling {
            Sampling::TopK(0) => return Err(bad("sampling", "top-k needs k >= 1")),
            Sampling::Nucleus(p) if !(p.is_finite() && p > 0.0 && p <= 1.0) => {
                return Err(bad("sampling", format!("nucleus p must be in (0, 1], got {p}")))
            }
            _ => {}
        }
        Ok(())
    }
}

/// Per-run tally of inference guardrail interventions.
///
/// All zeros means the model behaved numerically cleanly and no stream hit
/// the length cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenCounters {
    /// Non-finite interarrival draws retried within the resample budget.
    pub resampled_iat: u64,
    /// Interarrivals that exhausted the budget and were clamped to a safe
    /// fallback (degraded output).
    pub clamped_iat: u64,
    /// Sampler invocations that saw at least one non-finite logit and fell
    /// back to sanitized/uniform sampling.
    pub non_finite_logits: u64,
    /// Streams cut at the length cap without the model emitting stop.
    pub truncated_streams: u64,
}

impl GenCounters {
    /// Total number of guardrail interventions.
    pub fn total_interventions(&self) -> u64 {
        self.resampled_iat + self.clamped_iat + self.non_finite_logits + self.truncated_streams
    }

    /// Sums another tally into this one (used to merge per-chunk counters
    /// after parallel generation).
    pub fn merge(&mut self, other: &GenCounters) {
        self.resampled_iat += other.resampled_iat;
        self.clamped_iat += other.clamped_iat;
        self.non_finite_logits += other.non_finite_logits;
        self.truncated_streams += other.truncated_streams;
    }

    /// True if generation required no intervention at all.
    pub fn is_clean(&self) -> bool {
        self.total_interventions() == 0
    }
}

impl std::fmt::Display for GenCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resampled_iat={} clamped_iat={} non_finite_logits={} truncated_streams={}",
            self.resampled_iat, self.clamped_iat, self.non_finite_logits, self.truncated_streams
        )
    }
}

impl CptGpt {
    /// Synthesizes a dataset of `cfg.num_streams` streams.
    pub fn generate(&self, cfg: &GenerateConfig) -> Result<Dataset, GenerateError> {
        self.generate_with_report(cfg).map(|(d, _)| d)
    }

    /// Like [`CptGpt::generate`], additionally returning the guardrail
    /// counters so callers can detect degraded output.
    ///
    /// Streams are generated in chunks of `cfg.batch_size`, in parallel
    /// across however many rayon threads are available. Each chunk owns an
    /// RNG derived from `(cfg.seed, chunk_index)` alone and a UE-id range
    /// `chunk_index · batch_size ..`, so the output is a pure function of
    /// the config: bit-identical at any thread count, including 1.
    pub fn generate_with_report(
        &self,
        cfg: &GenerateConfig,
    ) -> Result<(Dataset, GenCounters), GenerateError> {
        cfg.validate()?;
        if self.initial_event_dist.is_empty() {
            return Err(GenerateError::UntrainedModel);
        }
        let max_len = cfg
            .max_stream_len
            .map_or(self.config.max_len, |m| m.min(self.config.max_len))
            .max(1);
        // Hoisted once per run: the initial-event probabilities never
        // change, so the per-stream bootstrap must not re-collect them.
        let init_probs: Vec<f64> = self.initial_event_dist.iter().map(|(_, p)| *p).collect();
        let n_chunks = cfg.num_streams.div_ceil(cfg.batch_size);
        let per_chunk: Vec<(Vec<Stream>, GenCounters)> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let b = cfg.batch_size.min(cfg.num_streams - c * cfg.batch_size);
                let mut rng = chunk_rng(cfg.seed, c as u64);
                let mut counters = GenCounters::default();
                let id_base = (c * cfg.batch_size) as u64;
                let streams =
                    self.generate_batch(b, cfg, max_len, id_base, &init_probs, &mut rng, &mut counters);
                (streams, counters)
            })
            .collect();
        let mut counters = GenCounters::default();
        let mut streams = Vec::with_capacity(cfg.num_streams);
        for (chunk, tally) in per_chunk {
            counters.merge(&tally);
            streams.extend(chunk);
        }
        Ok((
            Dataset::with_generation(self.config.generation, streams),
            counters,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_batch(
        &self,
        b: usize,
        cfg: &GenerateConfig,
        max_len: usize,
        id_base: u64,
        init_probs: &[f64],
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> Vec<Stream> {
        let d = self.tokenizer.token_dim();
        let e = self.tokenizer.num_events();

        // Per-stream decoded fields; `step` holds the newest token per
        // stream and is re-encoded in place each iteration.
        let mut events: Vec<Vec<EventType>> = vec![Vec::new(); b];
        let mut iats: Vec<Vec<f64>> = vec![Vec::new(); b];
        let mut alive: Vec<bool> = vec![true; b];
        let mut step = Tensor::zeros(&[b, 1, d]);

        for s in 0..b {
            let ev = sample_categorical(init_probs, rng);
            let ev = self.initial_event_dist[ev].0;
            events[s].push(ev);
            iats[s].push(0.0);
            self.tokenizer
                .encode_sample_into(ev, 0.0, false, &mut step.data[s * d..(s + 1) * d]);
        }

        // Incremental KV-cached decoding: each step feeds only the newest
        // token per stream (O(T) per step instead of O(T²)), and all
        // buffers live in `state` (zero allocation per token).
        let mut state = self.begin_decode(b);
        for _t in 1..max_len {
            if alive.iter().all(|a| !a) {
                break;
            }
            let out = self.decode_step(&mut state, &step);

            for s in 0..b {
                if !alive[s] {
                    continue;
                }
                let ev_logits = &out.event_logits.data[s * e..(s + 1) * e];
                if ev_logits.iter().any(|l| !l.is_finite()) {
                    counters.non_finite_logits += 1;
                }
                let ev_idx =
                    sample_logits_truncated(ev_logits, cfg.temperature, cfg.sampling, rng);
                let event = EventType::from_index(ev_idx).expect("valid event index");
                let scaled_iat = self.sample_scaled_iat(out, s, cfg, rng, counters);
                let iat = self.tokenizer.unscale_iat(scaled_iat);
                let stop_logits = &out.stop_logits.data[s * 2..(s + 1) * 2];
                if stop_logits.iter().any(|l| !l.is_finite()) {
                    counters.non_finite_logits += 1;
                }
                let stop_idx = sample_logits(stop_logits, cfg.temperature, rng);
                let stop = stop_idx == 1;

                events[s].push(event);
                iats[s].push(iat);
                self.tokenizer
                    .encode_sample_into(event, iat, stop, &mut step.data[s * d..(s + 1) * d]);
                if stop {
                    alive[s] = false;
                }
            }
        }
        counters.truncated_streams += alive.iter().filter(|a| **a).count() as u64;

        (0..b)
            .map(|s| {
                Stream::from_interarrivals(
                    UeId(id_base + s as u64),
                    cfg.device_type,
                    &events[s],
                    &iats[s],
                )
            })
            .collect()
    }

    /// Draws the scaled interarrival for stream `s`, guarding against
    /// non-finite head outputs: retry up to `cfg.max_resample` times, then
    /// degrade to a clamped mean (or 0 if the mean itself is poisoned).
    /// The returned value is always in `[0, 1]`.
    pub(crate) fn sample_scaled_iat(
        &self,
        out: &crate::model::InferStep,
        s: usize,
        cfg: &GenerateConfig,
        rng: &mut StdRng,
        counters: &mut GenCounters,
    ) -> f32 {
        let mu = out.iat_mean[s];
        if self.config.point_iat_head {
            return if mu.is_finite() {
                mu.clamp(0.0, 1.0)
            } else {
                counters.clamped_iat += 1;
                0.0
            };
        }
        let sigma = out.iat_log_std[s].clamp(-7.0, 3.0).exp();
        let mut draw = mu + sigma * sample_normal(rng);
        let mut attempts = 0u32;
        while !draw.is_finite() && attempts < cfg.max_resample {
            attempts += 1;
            counters.resampled_iat += 1;
            draw = mu + sigma * sample_normal(rng);
        }
        if draw.is_finite() {
            draw.clamp(0.0, 1.0)
        } else {
            counters.clamped_iat += 1;
            if mu.is_finite() {
                mu.clamp(0.0, 1.0)
            } else {
                0.0
            }
        }
    }
}

/// Derives the RNG for one generation chunk from `(seed, chunk)` alone
/// (splitmix64 finalizer, same scheme as the per-epoch shuffle RNG in
/// training). Because no RNG state flows between chunks, the chunks are
/// order- and schedule-independent: a rayon pool of any size produces the
/// same streams as a serial loop, bit for bit.
pub(crate) fn chunk_rng(seed: u64, chunk: u64) -> StdRng {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

fn sample_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Samples an index proportional to `probs`, tolerating zero, negative and
/// non-finite entries (they contribute no mass). A fully degenerate vector
/// (no positive finite mass) falls back to a uniform draw, so this never
/// panics and never returns an out-of-range index for non-empty input.
pub(crate) fn sample_categorical(probs: &[f64], rng: &mut impl Rng) -> usize {
    if probs.is_empty() {
        return 0;
    }
    let total: f64 = probs.iter().filter(|p| p.is_finite() && **p > 0.0).sum();
    if !(total.is_finite() && total > 0.0) {
        return rng.gen_range(0..probs.len());
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, p) in probs.iter().enumerate() {
        if !(p.is_finite() && *p > 0.0) {
            continue;
        }
        if target < *p {
            return i;
        }
        target -= p;
    }
    probs.len() - 1
}

pub(crate) fn sample_logits(logits: &[f32], temperature: f32, rng: &mut impl Rng) -> usize {
    sample_logits_truncated(logits, temperature, Sampling::Full, rng)
}

/// Temperature + truncation sampling over raw logits. Panic-free by
/// construction: ordering uses `total_cmp` and non-finite logits map to
/// zero probability (degenerating to a uniform draw if nothing survives).
pub(crate) fn sample_logits_truncated(
    logits: &[f32],
    temperature: f32,
    sampling: Sampling,
    rng: &mut impl Rng,
) -> usize {
    let t = temperature.max(1e-3);
    let max = logits
        .iter()
        .cloned()
        .filter(|l| l.is_finite())
        .fold(f32::NEG_INFINITY, f32::max);
    let mut probs: Vec<f64> = logits
        .iter()
        .map(|l| {
            let x = ((l - max) / t) as f64;
            if x.is_finite() {
                x.exp()
            } else {
                0.0
            }
        })
        .collect();
    match sampling {
        Sampling::Full => {}
        Sampling::TopK(k) => {
            let k = k.clamp(1, probs.len());
            let mut order: Vec<usize> = (0..probs.len()).collect();
            order.sort_by(|a, b| probs[*b].total_cmp(&probs[*a]));
            for i in &order[k..] {
                probs[*i] = 0.0;
            }
        }
        Sampling::Nucleus(p) => {
            let p = p.clamp(1e-6, 1.0) as f64;
            let total: f64 = probs.iter().sum();
            if total.is_finite() && total > 0.0 {
                let mut order: Vec<usize> = (0..probs.len()).collect();
                order.sort_by(|a, b| probs[*b].total_cmp(&probs[*a]));
                let mut cum = 0.0;
                let mut keep = 0;
                for i in &order {
                    cum += probs[*i] / total;
                    keep += 1;
                    if cum >= p {
                        break;
                    }
                }
                for i in &order[keep..] {
                    probs[*i] = 0.0;
                }
            }
        }
    }
    sample_categorical(&probs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CptGptConfig, TrainConfig};
    use crate::token::Tokenizer;
    use crate::train::train;
    use cpt_trace::Event;

    fn tiny_config() -> CptGptConfig {
        CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        }
    }

    fn alternating_dataset(n: usize) -> Dataset {
        let streams = (0..n)
            .map(|i| {
                let mut t = 0.0;
                let events = (0..8)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        Dataset::new(streams)
    }

    fn trained_model() -> CptGpt {
        let data = alternating_dataset(24);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(200).with_lr(1e-2),
        )
        .expect("training succeeds");
        model
    }

    #[test]
    fn generates_requested_count_within_max_len() {
        let model = trained_model();
        let d = model.generate(&GenerateConfig::new(10, 3)).expect("generate");
        assert_eq!(d.num_streams(), 10);
        for s in &d.streams {
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
            assert_eq!(s.device_type, DeviceType::Phone);
        }
        // UE ids unique.
        let mut ids: Vec<u64> = d.streams.iter().map(|s| s.ue_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn healthy_model_generates_numerically_clean() {
        let model = trained_model();
        let (_, counters) = model
            .generate_with_report(&GenerateConfig::new(10, 3))
            .expect("generate");
        assert_eq!(counters.resampled_iat, 0);
        assert_eq!(counters.clamped_iat, 0);
        assert_eq!(counters.non_finite_logits, 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let model = trained_model();
        let a = model.generate(&GenerateConfig::new(5, 7)).expect("generate");
        let b = model.generate(&GenerateConfig::new(5, 7)).expect("generate");
        let c = model.generate(&GenerateConfig::new(5, 8)).expect("generate");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn learned_model_mostly_alternates() {
        // Trained on strict SRV/REL alternation, generated streams should
        // follow SRV_REQ → S1_CONN_REL most of the time.
        let model = trained_model();
        let d = model.generate(&GenerateConfig::new(30, 1)).expect("generate");
        let mut follows = 0usize;
        let mut total = 0usize;
        for s in &d.streams {
            for w in s.events.windows(2) {
                if w[0].event_type == EventType::ServiceRequest {
                    total += 1;
                    if w[1].event_type == EventType::ConnectionRelease {
                        follows += 1;
                    }
                }
            }
        }
        assert!(total > 10, "not enough transitions generated");
        assert!(
            follows as f64 / total as f64 > 0.8,
            "alternation not learned: {follows}/{total}"
        );
    }

    #[test]
    fn near_zero_temperature_is_argmax_like() {
        // At a tiny temperature the categorical sampling collapses to the
        // argmax, so two different seeds produce identical event
        // sequences whenever interarrival sampling does not diverge the
        // context (point-head ablation removes that source too).
        let data = alternating_dataset(24);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config().with_point_iat_head(), tok);
        train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(30).with_lr(5e-3),
        )
        .expect("training succeeds");
        let mk = |seed| {
            let mut cfg = GenerateConfig::new(4, seed);
            cfg.temperature = 1e-4;
            model
                .generate(&cfg)
                .expect("generate")
                .streams
                .iter()
                .map(|s| s.event_types())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(2));
    }

    #[test]
    fn truncated_sampling_restricts_support() {
        // With top-1 sampling the event head becomes deterministic argmax.
        let model = trained_model();
        let mk = |sampling| {
            let cfg = GenerateConfig::new(6, 11).sampling(sampling);
            model
                .generate(&cfg)
                .expect("generate")
                .streams
                .iter()
                .map(|s| s.event_types())
                .collect::<Vec<_>>()
        };
        // Top-1 twice with different seeds in the iat path can still agree
        // on events only if iat noise doesn't shift context; instead test
        // the sampler directly on fixed logits.
        let logits = [3.0f32, 1.0, 0.5, -1.0, -2.0, -3.0];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let i = sample_logits_truncated(&logits, 1.0, Sampling::TopK(1), &mut rng);
            assert_eq!(i, 0, "top-1 must always pick the argmax");
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(sample_logits_truncated(&logits, 1.0, Sampling::TopK(2), &mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        // Nucleus with tiny p behaves like top-1.
        for _ in 0..200 {
            let i = sample_logits_truncated(&logits, 1.0, Sampling::Nucleus(0.05), &mut rng);
            assert_eq!(i, 0);
        }
        // Nucleus with p = 1 covers the full support eventually.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5000 {
            seen.insert(sample_logits_truncated(&logits, 1.0, Sampling::Nucleus(1.0), &mut rng));
        }
        assert!(seen.len() >= 4, "full nucleus too narrow: {seen:?}");
        // And generation with a truncated sampler still runs end to end.
        let full = mk(Sampling::Full);
        let topk = mk(Sampling::TopK(2));
        assert_eq!(full.len(), 6);
        assert_eq!(topk.len(), 6);
    }

    #[test]
    fn device_type_is_stamped() {
        let model = trained_model();
        let d = model
            .generate(&GenerateConfig::new(3, 0).device(DeviceType::Tablet))
            .expect("generate");
        assert!(d.streams.iter().all(|s| s.device_type == DeviceType::Tablet));
    }

    #[test]
    fn untrained_model_is_typed_error() {
        let data = alternating_dataset(2);
        let tok = Tokenizer::fit(&data);
        let model = CptGpt::new(tiny_config(), tok);
        let err = model
            .generate(&GenerateConfig::new(1, 0))
            .expect_err("untrained model must be rejected");
        assert!(matches!(err, GenerateError::UntrainedModel));
    }

    #[test]
    fn invalid_generate_config_is_typed_error() {
        let model = trained_model();
        let cases: Vec<(&'static str, GenerateConfig)> = vec![
            ("batch_size", {
                let mut c = GenerateConfig::new(1, 0);
                c.batch_size = 0;
                c
            }),
            ("temperature", {
                let mut c = GenerateConfig::new(1, 0);
                c.temperature = 0.0;
                c
            }),
            ("temperature", {
                let mut c = GenerateConfig::new(1, 0);
                c.temperature = f32::NAN;
                c
            }),
            ("max_stream_len", {
                let mut c = GenerateConfig::new(1, 0);
                c.max_stream_len = Some(0);
                c
            }),
            ("sampling", GenerateConfig::new(1, 0).sampling(Sampling::TopK(0))),
            (
                "sampling",
                GenerateConfig::new(1, 0).sampling(Sampling::Nucleus(0.0)),
            ),
        ];
        for (field, cfg) in cases {
            match model.generate(&cfg) {
                Err(GenerateError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn max_stream_len_caps_output() {
        let model = trained_model();
        let (d, counters) = model
            .generate_with_report(&GenerateConfig::new(12, 5).with_max_stream_len(3))
            .expect("generate");
        assert!(d.streams.iter().all(|s| s.len() <= 3));
        // Trained on 8-event streams, a 3-token cap must truncate at least
        // one of 12 streams.
        assert!(counters.truncated_streams > 0);
    }

    #[test]
    fn samplers_survive_non_finite_logits() {
        let mut rng = StdRng::seed_from_u64(9);
        let bad = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0];
        for sampling in [Sampling::Full, Sampling::TopK(2), Sampling::Nucleus(0.9)] {
            for _ in 0..200 {
                let i = sample_logits_truncated(&bad, 1.0, sampling, &mut rng);
                assert!(i < bad.len());
            }
        }
        let all_nan = [f32::NAN; 4];
        for _ in 0..200 {
            assert!(sample_logits_truncated(&all_nan, 1.0, Sampling::Full, &mut rng) < 4);
        }
        // Degenerate categorical vectors never panic or go out of range.
        for probs in [
            vec![0.0, 0.0],
            vec![f64::NAN, f64::NAN],
            vec![-1.0, -2.0],
            vec![f64::INFINITY, 1.0],
        ] {
            for _ in 0..100 {
                assert!(sample_categorical(&probs, &mut rng) < probs.len());
            }
        }
    }
}
