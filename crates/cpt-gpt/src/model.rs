//! The CPT-GPT network (Figure 3 of the paper).
//!
//! ```text
//! tokens [B,T,9] ──linear──► [B,T,d_model] ──(+ positional emb.)──►
//!   TransformerBlock × n ──LayerNorm──► features [B,T,d_model]
//!     ├── MLP head: event-type logits   [B·T, |E|]
//!     ├── MLP head: interarrival (μ, log σ)  [B·T] each
//!     └── MLP head: stop-flag logits    [B·T, 2]
//! ```
//!
//! The "embedding" layer of NLP transformers is replaced by a linear
//! projection from the 9-dimensional multimodal token space (Design 1);
//! the interarrival head outputs distribution parameters rather than a
//! scalar (Design 2), unless the Table 8 ablation `point_iat_head` is on.

#![deny(clippy::unwrap_used)]

use crate::config::CptGptConfig;
use crate::error::CheckpointError;
use crate::token::Tokenizer;
use cpt_nn::{Linear, LayerNorm, ParamId, ParamStore, Session, Tensor, TransformerBlock, Var};
use cpt_trace::EventType;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A two-layer MLP output head (`d_model → d_head → out`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MlpHead {
    fc1: Linear,
    fc2: Linear,
}

impl MlpHead {
    fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        d_out: usize,
        rng: &mut StdRng,
    ) -> Self {
        MlpHead {
            fc1: Linear::new(store, &format!("{name}.fc1"), d_in, d_hidden, true, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), d_hidden, d_out, true, rng),
        }
    }

    fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let h = self.fc1.forward(sess, x);
        let h = sess.graph.gelu(h);
        self.fc2.forward(sess, h)
    }

    /// Allocation-free application on raw rows: `hbuf` is the hidden
    /// scratch (`rows × d_hidden`), `out` the head output (both
    /// overwritten).
    fn apply_rows_into(
        &self,
        store: &ParamStore,
        x: &[f32],
        rows: usize,
        hbuf: &mut [f32],
        out: &mut [f32],
    ) {
        self.fc1.apply_rows_into(store, x, rows, hbuf);
        for v in hbuf.iter_mut() {
            *v = cpt_nn::gelu_scalar(*v);
        }
        self.fc2.apply_rows_into(store, hbuf, rows, out);
    }
}

/// Per-position outputs of one forward pass, flattened to `[B·T, …]`.
#[derive(Debug, Clone, Copy)]
pub struct StepOutput {
    /// Event-type logits, `[B·T, |E|]`.
    pub event_logits: Var,
    /// Interarrival μ (scaled space), `[B·T]`.
    pub iat_mean: Var,
    /// Interarrival log σ, `[B·T]`. For the point-head ablation this is
    /// unused (zeros).
    pub iat_log_std: Var,
    /// Stop-flag logits, `[B·T, 2]`.
    pub stop_logits: Var,
}

/// The CPT-GPT model: configuration, parameters, tokenizer and the
/// initial-event-type distribution released with the weights (§4.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CptGpt {
    /// Architecture configuration.
    pub config: CptGptConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    /// Fitted tokenizer (scaling bounds travel with the weights).
    pub tokenizer: Tokenizer,
    /// Initial-event-type distribution used to bootstrap inference.
    pub initial_event_dist: Vec<(EventType, f64)>,
    /// Integrity header: FNV-1a checksum of the parameter store, stamped
    /// by [`save_model_file`] at write time and verified (then cleared) on
    /// load. `None` for pre-checksum artifacts, which still load, and for
    /// in-memory models, whose weights may since have been trained.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    weights_checksum: Option<u64>,
    input_proj: Linear,
    pos_emb: ParamId,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head_event: MlpHead,
    head_iat: MlpHead,
    head_stop: MlpHead,
}

impl CptGpt {
    /// Builds a freshly initialized model for `tokenizer`'s vocabulary.
    pub fn new(config: CptGptConfig, tokenizer: Tokenizer) -> Self {
        assert_eq!(
            tokenizer.generation(),
            config.generation,
            "tokenizer/config generation mismatch"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let d = config.d_model;
        let input_proj = Linear::new(
            &mut store,
            "input_proj",
            tokenizer.token_dim(),
            d,
            true,
            &mut rng,
        );
        let pos_emb = store.add(
            "pos_emb",
            Tensor::randn(&[config.max_len, d], 0.02, &mut rng),
        );
        let blocks = (0..config.n_blocks)
            .map(|i| {
                TransformerBlock::new(
                    &mut store,
                    &format!("block{i}"),
                    d,
                    config.n_heads,
                    config.d_mlp,
                    &mut rng,
                )
            })
            .collect();
        let ln_f = LayerNorm::new(&mut store, "ln_f", d);
        let n_events = tokenizer.num_events();
        let head_event = MlpHead::new(&mut store, "head_event", d, config.d_head, n_events, &mut rng);
        let iat_out = if config.point_iat_head { 1 } else { 2 };
        let head_iat = MlpHead::new(&mut store, "head_iat", d, config.d_head, iat_out, &mut rng);
        let head_stop = MlpHead::new(&mut store, "head_stop", d, config.d_head, 2, &mut rng);
        CptGpt {
            config,
            store,
            tokenizer,
            initial_event_dist: Vec::new(),
            weights_checksum: None,
            input_proj,
            pos_emb,
            blocks,
            ln_f,
            head_event,
            head_iat,
            head_stop,
        }
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_params()
    }

    /// Deterministic checksum of the current weights (names, shapes, exact
    /// f32 bits). Two models hash equal iff their parameters are
    /// bit-identical.
    pub fn checksum(&self) -> u64 {
        cpt_nn::serialize::store_checksum(&self.store)
    }

    /// Serializes the model bundle (config + tokenizer + weights +
    /// initial-event distribution) to a JSON string.
    ///
    /// Library code must never `unwrap()` a serde round-trip: a model that
    /// fails to serialize (however unlikely) is a value the caller handles,
    /// not a panic inside a long-running server.
    pub fn to_json(&self) -> Result<String, CheckpointError> {
        serde_json::to_string(self).map_err(|e| CheckpointError::Corrupt {
            path: std::path::PathBuf::from("<in-memory model>"),
            detail: format!("model serialization failed: {e}"),
        })
    }

    /// Parses a model bundle from JSON and validates its weights.
    ///
    /// Well-formed JSON can still carry garbage (NaN weights from a
    /// diverged run, tensor shapes torn by partial edits); those are
    /// rejected as [`CheckpointError::Validation`] so a server loading an
    /// untrusted payload gets a typed error, never a panic downstream.
    pub fn from_json(json: &str) -> Result<Self, CheckpointError> {
        let mut model: CptGpt =
            serde_json::from_str(json).map_err(|e| CheckpointError::Corrupt {
                path: std::path::PathBuf::from("<in-memory model>"),
                detail: e.to_string(),
            })?;
        verify_checksum_header(&mut model, std::path::Path::new("<in-memory model>"))?;
        cpt_nn::serialize::validate_store(&model.store).map_err(|e| {
            CheckpointError::Validation {
                path: std::path::PathBuf::from("<in-memory model>"),
                detail: e.to_string(),
            }
        })?;
        Ok(model)
    }

    /// Runs the network on `tokens` of shape `[B, T, token_dim]`, returning
    /// per-position head outputs. `sess` must be a session over
    /// `self.store`.
    pub fn forward(&self, sess: &mut Session<'_>, tokens: Tensor) -> StepOutput {
        let shape = tokens.shape.clone();
        assert_eq!(shape.len(), 3, "expected [B,T,token_dim]");
        let (b, t, dtok) = (shape[0], shape[1], shape[2]);
        assert_eq!(dtok, self.tokenizer.token_dim(), "token dim");
        assert!(
            t <= self.config.max_len,
            "sequence length {t} exceeds max_len {}",
            self.config.max_len
        );

        let x = sess.input(tokens);
        let mut h = self.input_proj.forward(sess, x); // [B,T,D]
        let pe_full = sess.param(self.pos_emb);
        let pe = sess.graph.slice_rows(pe_full, 0, t); // [T,D]
        h = sess.graph.add(h, pe); // suffix broadcast over batch
        for block in &self.blocks {
            h = block.forward(sess, h);
        }
        let h = self.ln_f.forward(sess, h);

        let n = b * t;
        let event_logits_3d = self.head_event.forward(sess, h);
        let event_logits =
            sess.graph
                .reshape(event_logits_3d, &[n, self.tokenizer.num_events()]);
        let stop_logits_3d = self.head_stop.forward(sess, h);
        let stop_logits = sess.graph.reshape(stop_logits_3d, &[n, 2]);

        let iat_3d = self.head_iat.forward(sess, h);
        let (iat_mean, iat_log_std) = if self.config.point_iat_head {
            let flat = sess.graph.reshape(iat_3d, &[n]);
            let zeros = sess.input(Tensor::zeros(&[n]));
            (flat, zeros)
        } else {
            let flat = sess.graph.reshape(iat_3d, &[n, 2]);
            let mean = sess.graph.slice_cols(flat, 0, 1);
            let log_std = sess.graph.slice_cols(flat, 1, 1);
            let mean = sess.graph.reshape(mean, &[n]);
            let log_std = sess.graph.reshape(log_std, &[n]);
            (mean, log_std)
        };

        StepOutput {
            event_logits,
            iat_mean,
            iat_log_std,
            stop_logits,
        }
    }

    /// Computes the paper's weighted three-field loss for a batch
    /// (cross-entropy for event type and stop flag, Gaussian NLL — or MSE
    /// under the ablation — for the interarrival).
    pub fn loss(&self, sess: &mut Session<'_>, batch: &crate::batch::Batch) -> Var {
        let out = self.forward(sess, batch.inputs.clone());
        let (we, wi, ws) = self.config.loss_weights;
        let l_event =
            sess.graph
                .cross_entropy_logits(out.event_logits, &batch.event_targets, &batch.mask);
        let l_iat = if self.config.point_iat_head {
            sess.graph
                .mse_masked(out.iat_mean, &batch.iat_targets, &batch.mask)
        } else {
            sess.graph.gaussian_nll(
                out.iat_mean,
                out.iat_log_std,
                &batch.iat_targets,
                &batch.mask,
            )
        };
        let l_stop =
            sess.graph
                .cross_entropy_logits(out.stop_logits, &batch.stop_targets, &batch.mask);
        sess.graph
            .weighted_sum(&[(l_event, we), (l_iat, wi), (l_stop, ws)])
    }
}

/// Incremental decoding state: one KV cache per transformer block, the
/// current position, and every buffer a decode step needs. All buffers are
/// sized once in [`CptGpt::begin_decode`] and overwritten in place each
/// step, so steady-state decoding performs zero heap allocation per token.
pub struct DecodeState {
    caches: Vec<cpt_nn::AttnKvCache>,
    scratch: cpt_nn::DecodeScratch,
    /// Residual stream for the current position, `[B·D]`.
    h: Vec<f32>,
    /// Post-`ln_f` features, `[B·D]`.
    feat: Vec<f32>,
    /// Shared MLP-head hidden scratch, `[B·d_head]`.
    head_h: Vec<f32>,
    /// Raw interarrival-head output (`[B]` or `[B·2]`).
    iat_raw: Vec<f32>,
    /// Persistent output buffers, returned by reference from each step.
    out: InferStep,
    pos: usize,
    batch: usize,
    /// Position capacity the caches were sized for (the model's `max_len`
    /// at [`CptGpt::begin_decode`] time).
    max_len: usize,
}

impl DecodeState {
    /// Number of tokens decoded so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Batch size this state was sized for.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Position capacity this state was sized for.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Rewinds the state to position 0 so its buffers can be reused for a
    /// new stream without reallocating. All per-step buffers are fully
    /// overwritten each step and the KV caches only ever read rows below
    /// their length counter, so a reset state decodes byte-identically to a
    /// freshly allocated one (the serving free-list and
    /// [`crate::stream::SessionDecoder`] reuse depend on this).
    pub fn reset(&mut self) {
        for cache in &mut self.caches {
            cache.reset();
        }
        self.pos = 0;
    }
}

/// Per-step head outputs from the incremental decoder (plain tensors, no
/// autodiff tape).
pub struct InferStep {
    /// Event-type logits, `[B, |E|]`.
    pub event_logits: Tensor,
    /// Interarrival μ per stream (scaled space).
    pub iat_mean: Vec<f32>,
    /// Interarrival log σ per stream (zeros for the point-head ablation).
    pub iat_log_std: Vec<f32>,
    /// Stop-flag logits, `[B, 2]`.
    pub stop_logits: Tensor,
}

impl CptGpt {
    /// Starts incremental decoding for a batch of `batch` streams,
    /// preallocating every per-step buffer.
    pub fn begin_decode(&self, batch: usize) -> DecodeState {
        let d = self.config.d_model;
        let hd = d / self.config.n_heads;
        let e = self.tokenizer.num_events();
        let iat_out = if self.config.point_iat_head { 1 } else { 2 };
        DecodeState {
            caches: (0..self.config.n_blocks)
                .map(|_| {
                    cpt_nn::AttnKvCache::new(batch, self.config.n_heads, self.config.max_len, hd)
                })
                .collect(),
            scratch: cpt_nn::DecodeScratch::new(batch, d, self.config.d_mlp, self.config.max_len),
            h: vec![0.0; batch * d],
            feat: vec![0.0; batch * d],
            head_h: vec![0.0; batch * self.config.d_head],
            iat_raw: vec![0.0; batch * iat_out],
            out: InferStep {
                event_logits: Tensor::zeros(&[batch, e]),
                iat_mean: vec![0.0; batch],
                iat_log_std: vec![0.0; batch],
                stop_logits: Tensor::zeros(&[batch, 2]),
            },
            pos: 0,
            batch,
            max_len: self.config.max_len,
        }
    }

    /// Processes one token per stream (`[B, 1, token_dim]`) through the
    /// KV-cached fast path and returns the heads' outputs for that
    /// position. Equivalent to [`CptGpt::forward`] on the full prefix
    /// (verified by tests) but O(T) instead of O(T²) per step. The
    /// returned reference points into `state`'s persistent buffers — no
    /// allocation happens per token.
    pub fn decode_step<'s>(&self, state: &'s mut DecodeState, tokens: &Tensor) -> &'s InferStep {
        assert_eq!(
            tokens.shape,
            vec![state.batch, 1, self.tokenizer.token_dim()],
            "decode_step expects [B,1,token_dim]"
        );
        assert!(state.pos < self.config.max_len, "decode past max_len");
        let b = state.batch;
        let d = self.config.d_model;

        self.input_proj
            .apply_rows_into(&self.store, &tokens.data, b, &mut state.h);
        let pe = self.store.value(self.pos_emb);
        for bi in 0..b {
            let row = &mut state.h[bi * d..(bi + 1) * d];
            for (hv, pv) in row.iter_mut().zip(&pe.data[state.pos * d..(state.pos + 1) * d]) {
                *hv += pv;
            }
        }
        for (block, cache) in self.blocks.iter().zip(&mut state.caches) {
            block.decode_step_into(&self.store, &mut state.h, cache, &mut state.scratch);
        }
        state.pos += 1;
        self.ln_f
            .apply_rows_into(&self.store, &state.h, b, &mut state.feat);

        self.head_event.apply_rows_into(
            &self.store,
            &state.feat,
            b,
            &mut state.head_h,
            &mut state.out.event_logits.data,
        );
        self.head_stop.apply_rows_into(
            &self.store,
            &state.feat,
            b,
            &mut state.head_h,
            &mut state.out.stop_logits.data,
        );
        self.head_iat.apply_rows_into(
            &self.store,
            &state.feat,
            b,
            &mut state.head_h,
            &mut state.iat_raw,
        );
        if self.config.point_iat_head {
            state.out.iat_mean.copy_from_slice(&state.iat_raw);
            state.out.iat_log_std.fill(0.0);
        } else {
            for i in 0..b {
                state.out.iat_mean[i] = state.iat_raw[i * 2];
                state.out.iat_log_std[i] = state.iat_raw[i * 2 + 1];
            }
        }
        &state.out
    }
}

/// Shared buffers for cross-session batched decoding: the same per-step
/// buffers as [`DecodeState`] but *without* KV caches — those stay with
/// each session. Sized once for `max_batch` rows by
/// [`CptGpt::begin_batch_decode`]; a round of `n ≤ max_batch` sessions
/// uses the first `n` rows of every buffer, so rounds of any composition
/// allocate nothing.
pub struct BatchDecodeState {
    scratch: cpt_nn::DecodeScratch,
    h: Vec<f32>,
    feat: Vec<f32>,
    head_h: Vec<f32>,
    iat_raw: Vec<f32>,
    out: InferStep,
    max_batch: usize,
}

impl BatchDecodeState {
    /// Largest round this state was sized for.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// int8 per-channel quantized snapshot of every weight matrix the decode
/// path touches (LayerNorms and biases stay f32). Built once per model
/// with [`CptGpt::quantize_decode_weights`] and shared read-only across
/// workers; ~4× smaller weight traffic per GEMM, no bit-identity claim
/// (accuracy contract: per-weight rounding ≤ scale/2, see DESIGN.md §15).
pub struct QuantDecodeWeights {
    input_proj: cpt_nn::QuantLinear,
    blocks: Vec<cpt_nn::QuantBlock>,
    head_event: QuantMlpHead,
    head_iat: QuantMlpHead,
    head_stop: QuantMlpHead,
}

/// Quantized [`MlpHead`].
struct QuantMlpHead {
    fc1: cpt_nn::QuantLinear,
    fc2: cpt_nn::QuantLinear,
}

impl MlpHead {
    fn quantize(&self, store: &ParamStore) -> QuantMlpHead {
        QuantMlpHead {
            fc1: self.fc1.quantize(store),
            fc2: self.fc2.quantize(store),
        }
    }
}

impl QuantMlpHead {
    fn apply_rows_into(&self, x: &[f32], rows: usize, hbuf: &mut [f32], out: &mut [f32]) {
        self.fc1.apply_rows_into(x, rows, hbuf);
        for v in hbuf.iter_mut() {
            *v = cpt_nn::gelu_scalar(*v);
        }
        self.fc2.apply_rows_into(hbuf, rows, out);
    }
}

impl CptGpt {
    /// Preallocates the shared buffers for cross-session batched decode
    /// rounds of up to `max_batch` sessions.
    pub fn begin_batch_decode(&self, max_batch: usize) -> BatchDecodeState {
        assert!(max_batch >= 1, "batch decode needs max_batch >= 1");
        let d = self.config.d_model;
        let e = self.tokenizer.num_events();
        let iat_out = if self.config.point_iat_head { 1 } else { 2 };
        BatchDecodeState {
            scratch: cpt_nn::DecodeScratch::new(
                max_batch,
                d,
                self.config.d_mlp,
                self.config.max_len,
            ),
            h: vec![0.0; max_batch * d],
            feat: vec![0.0; max_batch * d],
            head_h: vec![0.0; max_batch * self.config.d_head],
            iat_raw: vec![0.0; max_batch * iat_out],
            out: InferStep {
                event_logits: Tensor::zeros(&[max_batch, e]),
                iat_mean: vec![0.0; max_batch],
                iat_log_std: vec![0.0; max_batch],
                stop_logits: Tensor::zeros(&[max_batch, 2]),
            },
            max_batch,
        }
    }

    /// Snapshots the decode weights as int8 per-channel quantized copies
    /// for the flagged `--quantized` serving path.
    pub fn quantize_decode_weights(&self) -> QuantDecodeWeights {
        QuantDecodeWeights {
            input_proj: self.input_proj.quantize(&self.store),
            blocks: self.blocks.iter().map(|b| b.quantize(&self.store)).collect(),
            head_event: self.head_event.quantize(&self.store),
            head_iat: self.head_iat.quantize(&self.store),
            head_stop: self.head_stop.quantize(&self.store),
        }
    }

    /// One decode step for `n` independent batch-1 sessions at once: their
    /// pending tokens (`n × token_dim`, session-major) run through each
    /// layer as a single packed `[n × d]` GEMM, while positional-embedding
    /// adds and KV scatter/attention stay per session (each at its own
    /// position and cache). Row `i` of the returned [`InferStep`] is
    /// bit-identical to what `decode_step` would produce for session `i`
    /// alone — the GEMM kernel accumulates each output row independently
    /// of row grouping, and every non-GEMM op here is row-wise with the
    /// exact sequential scalar order (see
    /// `cpt_nn::MultiHeadSelfAttention::decode_step_multi`).
    pub fn decode_step_batch<'s>(
        &self,
        bstate: &'s mut BatchDecodeState,
        states: &mut [&mut DecodeState],
        tokens: &[f32],
    ) -> &'s InferStep {
        self.decode_step_batch_impl(None, bstate, states, tokens)
    }

    /// [`CptGpt::decode_step_batch`] through the int8 quantized weights
    /// (no bit-identity claim; see [`QuantDecodeWeights`]).
    pub fn decode_step_batch_quant<'s>(
        &self,
        quant: &QuantDecodeWeights,
        bstate: &'s mut BatchDecodeState,
        states: &mut [&mut DecodeState],
        tokens: &[f32],
    ) -> &'s InferStep {
        self.decode_step_batch_impl(Some(quant), bstate, states, tokens)
    }

    fn decode_step_batch_impl<'s>(
        &self,
        quant: Option<&QuantDecodeWeights>,
        bstate: &'s mut BatchDecodeState,
        states: &mut [&mut DecodeState],
        tokens: &[f32],
    ) -> &'s InferStep {
        let n = states.len();
        assert!(n >= 1, "batch decode needs at least one session");
        assert!(
            n <= bstate.max_batch,
            "round of {n} exceeds max_batch {}",
            bstate.max_batch
        );
        let d = self.config.d_model;
        let dtok = self.tokenizer.token_dim();
        assert_eq!(tokens.len(), n * dtok, "batch decode token size");
        for st in states.iter() {
            assert_eq!(st.batch, 1, "batch decode composes batch-1 sessions");
            assert!(st.pos < self.config.max_len, "decode past max_len");
        }

        let nd = n * d;
        match quant {
            Some(q) => q.input_proj.apply_rows_into(tokens, n, &mut bstate.h[..nd]),
            None => self
                .input_proj
                .apply_rows_into(&self.store, tokens, n, &mut bstate.h[..nd]),
        }
        let pe = self.store.value(self.pos_emb);
        for (i, st) in states.iter().enumerate() {
            let row = &mut bstate.h[i * d..(i + 1) * d];
            for (hv, pv) in row.iter_mut().zip(&pe.data[st.pos * d..(st.pos + 1) * d]) {
                *hv += pv;
            }
        }
        for j in 0..self.blocks.len() {
            // Per-round gather of each session's cache for this layer. The
            // Vec is tiny (n pointers) and the only per-round allocation.
            let mut caches: Vec<&mut cpt_nn::AttnKvCache> =
                states.iter_mut().map(|s| &mut s.caches[j]).collect();
            match quant {
                Some(q) => q.blocks[j].decode_step_multi(
                    &self.store,
                    &mut bstate.h[..nd],
                    &mut caches,
                    &mut bstate.scratch,
                ),
                None => self.blocks[j].decode_step_multi(
                    &self.store,
                    &mut bstate.h[..nd],
                    &mut caches,
                    &mut bstate.scratch,
                ),
            }
        }
        for st in states.iter_mut() {
            st.pos += 1;
        }

        self.ln_f
            .apply_rows_into(&self.store, &bstate.h[..nd], n, &mut bstate.feat[..nd]);
        let e = self.tokenizer.num_events();
        let dh = n * self.config.d_head;
        let iat_out = if self.config.point_iat_head { 1 } else { 2 };
        match quant {
            Some(q) => {
                q.head_event.apply_rows_into(
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.out.event_logits.data[..n * e],
                );
                q.head_stop.apply_rows_into(
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.out.stop_logits.data[..n * 2],
                );
                q.head_iat.apply_rows_into(
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.iat_raw[..n * iat_out],
                );
            }
            None => {
                self.head_event.apply_rows_into(
                    &self.store,
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.out.event_logits.data[..n * e],
                );
                self.head_stop.apply_rows_into(
                    &self.store,
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.out.stop_logits.data[..n * 2],
                );
                self.head_iat.apply_rows_into(
                    &self.store,
                    &bstate.feat[..nd],
                    n,
                    &mut bstate.head_h[..dh],
                    &mut bstate.iat_raw[..n * iat_out],
                );
            }
        }
        if self.config.point_iat_head {
            bstate.out.iat_mean[..n].copy_from_slice(&bstate.iat_raw[..n]);
            bstate.out.iat_log_std[..n].fill(0.0);
        } else {
            for i in 0..n {
                bstate.out.iat_mean[i] = bstate.iat_raw[i * 2];
                bstate.out.iat_log_std[i] = bstate.iat_raw[i * 2 + 1];
            }
        }
        &bstate.out
    }
}

/// Verifies a parsed artifact's checksum header against the weights it
/// arrived with, then clears the header: an in-memory model's weights can
/// be trained further, which would silently stale the stamp. Artifacts
/// written before the header existed carry `None` and are accepted as-is.
fn verify_checksum_header(
    model: &mut CptGpt,
    path: &std::path::Path,
) -> Result<(), CheckpointError> {
    if let Some(expected) = model.weights_checksum.take() {
        let actual = model.checksum();
        if actual != expected {
            return Err(CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: format!(
                    "weights checksum mismatch: header {expected:#018x}, computed {actual:#018x} \
                     — artifact bytes were altered after the model was saved"
                ),
            });
        }
    }
    Ok(())
}

/// Saves a model bundle to `path` atomically (temp file + rename), so a
/// crash mid-save cannot leave a torn file where a good model used to be.
/// The artifact is stamped with a checksum of the exact weight bits, which
/// [`load_model_file`] verifies before trusting the payload.
pub fn save_model_file(model: &CptGpt, path: &std::path::Path) -> Result<(), CheckpointError> {
    let mut stamped = model.clone();
    stamped.weights_checksum = Some(stamped.checksum());
    cpt_nn::serialize::atomic_write_json(&stamped, path).map_err(|e| match e {
        cpt_nn::serialize::CheckpointError::Io(source) => CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        },
        other => CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: other.to_string(),
        },
    })
}

/// Loads a model bundle from `path`, distinguishing unreadable files
/// ([`CheckpointError::Io`]), unparseable bytes ([`CheckpointError::Corrupt`])
/// and parseable-but-unusable weights ([`CheckpointError::Validation`]).
pub fn load_model_file(path: &std::path::Path) -> Result<CptGpt, CheckpointError> {
    let file = std::fs::File::open(path).map_err(|source| CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let mut model: CptGpt =
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(|e| {
            CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: e.to_string(),
            }
        })?;
    verify_checksum_header(&mut model, path)?;
    cpt_nn::serialize::validate_store(&model.store).map_err(|e| CheckpointError::Validation {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::build_batch;
    use cpt_trace::{Dataset, DeviceType, Event, Stream, UeId};

    fn toy_dataset() -> Dataset {
        let mk = |id: u64| {
            Stream::new(
                UeId(id),
                DeviceType::Phone,
                vec![
                    Event::new(EventType::ServiceRequest, 0.0),
                    Event::new(EventType::ConnectionRelease, 8.0),
                    Event::new(EventType::ServiceRequest, 100.0),
                    Event::new(EventType::ConnectionRelease, 111.0),
                ],
            )
        };
        Dataset::new(vec![mk(0), mk(1), mk(2)])
    }

    fn tiny_config() -> CptGptConfig {
        CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        }
    }

    #[test]
    fn forward_shapes() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok.clone());
        let streams: Vec<&Stream> = d.streams.iter().collect();
        let batch = build_batch(&tok, &streams, 16);
        let mut sess = Session::new(&model.store);
        let out = model.forward(&mut sess, batch.inputs.clone());
        let n = batch.batch * batch.seq;
        assert_eq!(sess.graph.value(out.event_logits).shape, vec![n, 6]);
        assert_eq!(sess.graph.value(out.iat_mean).shape, vec![n]);
        assert_eq!(sess.graph.value(out.iat_log_std).shape, vec![n]);
        assert_eq!(sess.graph.value(out.stop_logits).shape, vec![n, 2]);
    }

    #[test]
    fn paper_sized_model_has_about_725k_params() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(CptGptConfig::paper(), tok);
        let n = model.num_params();
        // §5.1: "a total of 725K parameters". Our reconstruction must land
        // in the same ballpark (positional table + blocks dominate).
        assert!(
            (500_000..1_000_000).contains(&n),
            "parameter count {n} not in the paper's ballpark"
        );
    }

    #[test]
    fn loss_is_finite_and_decreases_under_adam() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok.clone());
        let streams: Vec<&Stream> = d.streams.iter().collect();
        let batch = build_batch(&tok, &streams, 16);
        let mut store = model.store.clone();
        let mut adam = cpt_nn::Adam::new(&store, 1e-2);
        let mut first = f32::NAN;
        let mut last = 0.0;
        let mut m = model.clone();
        for _ in 0..30 {
            m.store = store.clone();
            let mut sess = Session::new(&m.store);
            let loss = m.loss(&mut sess, &batch);
            last = sess.graph.value(loss).item();
            assert!(last.is_finite());
            if first.is_nan() {
                first = last;
            }
            sess.backward(loss);
            let grads = sess.grads();
            store.accumulate_grads(&grads);
            adam.step(&mut store);
            store.zero_grads();
        }
        assert!(
            last < first * 0.8,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn point_head_ablation_changes_head_shape() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let cfg = tiny_config().with_point_iat_head();
        let model = CptGpt::new(cfg, tok.clone());
        let streams: Vec<&Stream> = d.streams.iter().collect();
        let batch = build_batch(&tok, &streams, 16);
        let mut sess = Session::new(&model.store);
        let loss = model.loss(&mut sess, &batch);
        assert!(sess.graph.value(loss).item().is_finite());
    }

    #[test]
    fn decode_step_matches_full_forward() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok.clone());
        let streams: Vec<&Stream> = d.streams.iter().collect();
        let batch = build_batch(&tok, &streams, 16);
        let (b, t, dtok) = (batch.batch, batch.seq, tok.token_dim());

        // Full graph forward.
        let mut sess = Session::new(&model.store);
        let out = model.forward(&mut sess, batch.inputs.clone());
        let full_events = sess.graph.value(out.event_logits).clone(); // [B*T, E]
        let full_mean = sess.graph.value(out.iat_mean).clone();
        let full_stop = sess.graph.value(out.stop_logits).clone();

        // Incremental decode, one position at a time.
        let mut state = model.begin_decode(b);
        for ti in 0..t {
            let mut step = cpt_nn::Tensor::zeros(&[b, 1, dtok]);
            for bi in 0..b {
                let src = (bi * t + ti) * dtok;
                step.data[bi * dtok..(bi + 1) * dtok]
                    .copy_from_slice(&batch.inputs.data[src..src + dtok]);
            }
            let inc = model.decode_step(&mut state, &step);
            for bi in 0..b {
                let flat = bi * t + ti;
                for c in 0..6 {
                    let a = full_events.data[flat * 6 + c];
                    let x = inc.event_logits.data[bi * 6 + c];
                    assert!((a - x).abs() < 1e-3, "event logit t={ti} b={bi} c={c}: {a} vs {x}");
                }
                assert!((full_mean.data[flat] - inc.iat_mean[bi]).abs() < 1e-3);
                for c in 0..2 {
                    let a = full_stop.data[flat * 2 + c];
                    let x = inc.stop_logits.data[bi * 2 + c];
                    assert!((a - x).abs() < 1e-3, "stop logit mismatch");
                }
            }
        }
        assert_eq!(state.pos(), t);
    }

    #[test]
    fn batched_decode_matches_sequential_decode_bitwise() {
        // n batch-1 sessions at different positions, decoded in one
        // batched step, must produce per-row bits identical to the
        // per-session `decode_step` path.
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok);
        let dtok = model.tokenizer.token_dim();
        let e = model.tokenizer.num_events();
        let n = 5;
        let mut seq_states: Vec<DecodeState> = (0..n).map(|_| model.begin_decode(1)).collect();
        let mut bat_states: Vec<DecodeState> = (0..n).map(|_| model.begin_decode(1)).collect();
        let mut bstate = model.begin_batch_decode(n);
        let mut r = StdRng::seed_from_u64(9);
        // Advance session i by i tokens on both sides via the sequential
        // path, so positions and caches differ across the batch.
        for i in 0..n {
            for _ in 0..i {
                let tokv = Tensor::randn(&[1, 1, dtok], 0.3, &mut r);
                model.decode_step(&mut seq_states[i], &tokv);
                model.decode_step(&mut bat_states[i], &tokv);
            }
        }
        let step = Tensor::randn(&[n, dtok], 0.3, &mut r);
        let mut seq_rows = Vec::new();
        for (i, st) in seq_states.iter_mut().enumerate() {
            let tokv = Tensor::new(step.data[i * dtok..(i + 1) * dtok].to_vec(), vec![1, 1, dtok]);
            let o = model.decode_step(st, &tokv);
            seq_rows.push((
                o.event_logits.data[..e].to_vec(),
                o.iat_mean[0],
                o.iat_log_std[0],
                o.stop_logits.data[..2].to_vec(),
            ));
        }
        let mut refs: Vec<&mut DecodeState> = bat_states.iter_mut().collect();
        let out = model.decode_step_batch(&mut bstate, &mut refs, &step.data);
        for (i, (ev, mean, log_std, stop)) in seq_rows.iter().enumerate() {
            for (c, x) in ev.iter().enumerate() {
                assert_eq!(
                    x.to_bits(),
                    out.event_logits.data[i * e + c].to_bits(),
                    "event logit row {i} col {c}"
                );
            }
            assert_eq!(mean.to_bits(), out.iat_mean[i].to_bits(), "iat mean row {i}");
            assert_eq!(log_std.to_bits(), out.iat_log_std[i].to_bits(), "iat log_std row {i}");
            for (c, s) in stop.iter().enumerate() {
                assert_eq!(
                    s.to_bits(),
                    out.stop_logits.data[i * 2 + c].to_bits(),
                    "stop logit row {i} col {c}"
                );
            }
        }
        for (a, b) in seq_states.iter().zip(&bat_states) {
            assert_eq!(a.pos, b.pos, "positions advance identically");
        }
    }

    #[test]
    fn quantized_batched_decode_tracks_f32_path() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok);
        let quant = model.quantize_decode_weights();
        let dtok = model.tokenizer.token_dim();
        let e = model.tokenizer.num_events();
        let n = 3;
        let mut f32_states: Vec<DecodeState> = (0..n).map(|_| model.begin_decode(1)).collect();
        let mut q_states: Vec<DecodeState> = (0..n).map(|_| model.begin_decode(1)).collect();
        let mut bstate = model.begin_batch_decode(n);
        let mut r = StdRng::seed_from_u64(10);
        for _ in 0..4 {
            let step = Tensor::randn(&[n, dtok], 0.3, &mut r);
            let f32_logits = {
                let mut refs: Vec<&mut DecodeState> = f32_states.iter_mut().collect();
                let o = model.decode_step_batch(&mut bstate, &mut refs, &step.data);
                o.event_logits.data[..n * e].to_vec()
            };
            let q_logits = {
                let mut refs: Vec<&mut DecodeState> = q_states.iter_mut().collect();
                let o = model.decode_step_batch_quant(&quant, &mut bstate, &mut refs, &step.data);
                o.event_logits.data[..n * e].to_vec()
            };
            for (a, b) in f32_logits.iter().zip(&q_logits) {
                assert!(
                    (a - b).abs() < 0.2 * a.abs().max(1.0),
                    "quantized logits drift too far: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn model_serde_roundtrip_preserves_generation() {
        // The cptgen CLI persists whole models as JSON; a deserialized
        // model must generate identically.
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let mut model = CptGpt::new(tiny_config(), tok);
        crate::train::train(
            &mut model,
            &d,
            &crate::config::TrainConfig::quick().with_epochs(2),
        )
        .expect("training succeeds");
        let json = model.to_json().expect("model serializes");
        let back = CptGpt::from_json(&json).expect("model deserializes and validates");
        let cfg = crate::generate::GenerateConfig::new(5, 3);
        assert_eq!(
            model.generate(&cfg).expect("generate"),
            back.generate(&cfg).expect("generate")
        );
    }

    #[test]
    fn model_file_checksum_roundtrip_and_corruption() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config(), tok);
        let dir = std::env::temp_dir().join(format!("cpt-gpt-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.json");

        // A saved artifact carries a checksum header and round-trips.
        save_model_file(&model, &path).expect("save");
        let bytes = std::fs::read_to_string(&path).expect("read artifact");
        assert!(bytes.contains("weights_checksum"), "header missing from artifact");
        let back = load_model_file(&path).expect("load verifies checksum");
        assert_eq!(back.checksum(), model.checksum());
        assert_eq!(back.weights_checksum, None, "header cleared after verification");
        // Re-saving the loaded model reproduces the artifact byte-for-byte.
        let resaved = dir.join("model2.json");
        save_model_file(&back, &resaved).expect("re-save");
        assert_eq!(bytes, std::fs::read_to_string(&resaved).expect("read re-saved"));

        // A flipped weight bit that keeps the JSON parseable and the value
        // finite is caught by the checksum, with the offending path named.
        let mut tampered = model.clone();
        let id = tampered.store.ids()[0];
        let v = tampered.store.value(id).data[0];
        tampered.store.value_mut(id).data[0] = f32::from_bits(v.to_bits() ^ 1);
        tampered.weights_checksum = Some(model.checksum());
        cpt_nn::serialize::atomic_write_json(&tampered, &path).expect("write tampered");
        match load_model_file(&path) {
            Err(CheckpointError::Corrupt { path: p, detail }) => {
                assert_eq!(p, path);
                assert!(detail.contains("checksum mismatch"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncation surfaces as Corrupt too (unparseable), never a panic.
        let full = std::fs::read(&resaved).expect("read bytes");
        std::fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert!(matches!(
            load_model_file(&path),
            Err(CheckpointError::Corrupt { .. })
        ));

        // A pre-checksum artifact (no header) still loads.
        let mut legacy = model.clone();
        legacy.weights_checksum = None;
        cpt_nn::serialize::atomic_write_json(&legacy, &path).expect("write legacy");
        load_model_file(&path).expect("legacy artifact loads without header");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_initialization() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let a = CptGpt::new(tiny_config().with_seed(5), tok.clone());
        let b = CptGpt::new(tiny_config().with_seed(5), tok.clone());
        let c = CptGpt::new(tiny_config().with_seed(6), tok);
        assert_eq!(
            a.store.value(a.store.ids()[0]).data,
            b.store.value(b.store.ids()[0]).data
        );
        assert_ne!(
            a.store.value(a.store.ids()[0]).data,
            c.store.value(c.store.ids()[0]).data
        );
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn rejects_overlong_sequences() {
        let d = toy_dataset();
        let tok = Tokenizer::fit(&d);
        let model = CptGpt::new(tiny_config().with_max_len(2), tok.clone());
        let streams: Vec<&Stream> = d.streams.iter().collect();
        let batch = build_batch(&tok, &streams, 16); // seq = 3 > max_len = 2
        let mut sess = Session::new(&model.store);
        model.forward(&mut sess, batch.inputs.clone());
    }
}
