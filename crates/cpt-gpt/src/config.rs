//! Model and training hyperparameters.

use cpt_trace::Generation;
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters of CPT-GPT.
///
/// The paper's tuned model uses 2 attention blocks, embedding dimension
/// 128 and MLP hidden size 1024 (725 k parameters, 2.9 MB). The defaults
/// here keep the same shape at reduced width so CPU training finishes in
/// minutes; [`CptGptConfig::paper`] reproduces the paper's exact sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CptGptConfig {
    /// Cellular generation (sets the event-type vocabulary: 6 for LTE).
    pub generation: Generation,
    /// Attention hidden size (`d_model`).
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_blocks: usize,
    /// Attention heads per block.
    pub n_heads: usize,
    /// MLP hidden size inside each block.
    pub d_mlp: usize,
    /// Hidden size of the three output MLP heads.
    pub d_head: usize,
    /// Maximum stream length the model can represent (the paper trains
    /// with 500 and discards longer streams).
    pub max_len: usize,
    /// Loss weights (event type, interarrival, stop flag); the paper's
    /// default is 1:1:1 and Table 8 shows low sensitivity.
    pub loss_weights: (f32, f32, f32),
    /// Ablation switch (Table 8, "No dist. pred."): when `true` the
    /// interarrival head outputs a single scalar trained with MSE instead
    /// of Gaussian (μ, log σ) trained with NLL, and inference uses the
    /// scalar directly without sampling.
    pub point_iat_head: bool,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl CptGptConfig {
    /// CPU-sized default (same architecture shape as the paper at reduced
    /// width).
    pub fn small() -> Self {
        CptGptConfig {
            generation: Generation::Lte,
            d_model: 48,
            n_blocks: 2,
            n_heads: 4,
            d_mlp: 192,
            d_head: 48,
            max_len: 128,
            loss_weights: (1.0, 1.0, 1.0),
            point_iat_head: false,
            seed: 0,
        }
    }

    /// The paper's exact architecture (§5.1): 2 blocks, d_model 128, MLP
    /// 1024 — ~725 k parameters.
    pub fn paper() -> Self {
        CptGptConfig {
            d_model: 128,
            d_mlp: 1024,
            d_head: 128,
            max_len: 500,
            ..CptGptConfig::small()
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the maximum stream length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Builder: sets loss weights (event : interarrival : stop).
    pub fn with_loss_weights(mut self, event: f32, iat: f32, stop: f32) -> Self {
        self.loss_weights = (event, iat, stop);
        self
    }

    /// Builder: enables the Table 8 "no distribution prediction" ablation.
    pub fn with_point_iat_head(mut self) -> Self {
        self.point_iat_head = true;
        self
    }
}

impl Default for CptGptConfig {
    fn default() -> Self {
        CptGptConfig::small()
    }
}

/// Optimization hyperparameters for one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training streams.
    pub epochs: usize,
    /// Streams per batch.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps before the cosine decay.
    pub warmup_steps: u64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Seed for batch shuffling.
    pub seed: u64,
    /// If `Some(n)`, snapshot the parameter store every `n` epochs (for
    /// the §5.5 checkpoint-selection heuristic).
    pub snapshot_every: Option<usize>,
}

impl TrainConfig {
    /// Quick default suitable for tests and examples.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            lr: 3e-3,
            warmup_steps: 5,
            clip_norm: 1.0,
            seed: 0,
            snapshot_every: None,
        }
    }

    /// Builder: sets epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder: sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Builder: sets the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: enables parameter snapshots.
    pub fn with_snapshots(mut self, every: usize) -> Self {
        self.snapshot_every = Some(every);
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = CptGptConfig::paper();
        assert_eq!(c.n_blocks, 2);
        assert_eq!(c.d_model, 128);
        assert_eq!(c.d_mlp, 1024);
        assert_eq!(c.max_len, 500);
        assert_eq!(c.loss_weights, (1.0, 1.0, 1.0));
        assert!(!c.point_iat_head);
    }

    #[test]
    fn builders() {
        let c = CptGptConfig::small()
            .with_seed(9)
            .with_max_len(64)
            .with_loss_weights(3.0, 1.0, 1.0)
            .with_point_iat_head();
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_len, 64);
        assert_eq!(c.loss_weights.0, 3.0);
        assert!(c.point_iat_head);
        let t = TrainConfig::quick().with_epochs(3).with_lr(0.1).with_seed(5);
        assert_eq!(t.epochs, 3);
        assert_eq!(t.lr, 0.1);
        assert_eq!(t.seed, 5);
    }
}
