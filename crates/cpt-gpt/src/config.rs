//! Model and training hyperparameters.

use crate::error::TrainError;
use crate::faultinject::FaultPlan;
use cpt_trace::Generation;
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters of CPT-GPT.
///
/// The paper's tuned model uses 2 attention blocks, embedding dimension
/// 128 and MLP hidden size 1024 (725 k parameters, 2.9 MB). The defaults
/// here keep the same shape at reduced width so CPU training finishes in
/// minutes; [`CptGptConfig::paper`] reproduces the paper's exact sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CptGptConfig {
    /// Cellular generation (sets the event-type vocabulary: 6 for LTE).
    pub generation: Generation,
    /// Attention hidden size (`d_model`).
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_blocks: usize,
    /// Attention heads per block.
    pub n_heads: usize,
    /// MLP hidden size inside each block.
    pub d_mlp: usize,
    /// Hidden size of the three output MLP heads.
    pub d_head: usize,
    /// Maximum stream length the model can represent (the paper trains
    /// with 500 and discards longer streams).
    pub max_len: usize,
    /// Loss weights (event type, interarrival, stop flag); the paper's
    /// default is 1:1:1 and Table 8 shows low sensitivity.
    pub loss_weights: (f32, f32, f32),
    /// Ablation switch (Table 8, "No dist. pred."): when `true` the
    /// interarrival head outputs a single scalar trained with MSE instead
    /// of Gaussian (μ, log σ) trained with NLL, and inference uses the
    /// scalar directly without sampling.
    pub point_iat_head: bool,
    /// Seed for weight initialization.
    pub seed: u64,
}

impl CptGptConfig {
    /// CPU-sized default (same architecture shape as the paper at reduced
    /// width).
    pub fn small() -> Self {
        CptGptConfig {
            generation: Generation::Lte,
            d_model: 48,
            n_blocks: 2,
            n_heads: 4,
            d_mlp: 192,
            d_head: 48,
            max_len: 128,
            loss_weights: (1.0, 1.0, 1.0),
            point_iat_head: false,
            seed: 0,
        }
    }

    /// The paper's exact architecture (§5.1): 2 blocks, d_model 128, MLP
    /// 1024 — ~725 k parameters.
    pub fn paper() -> Self {
        CptGptConfig {
            d_model: 128,
            d_mlp: 1024,
            d_head: 128,
            max_len: 500,
            ..CptGptConfig::small()
        }
    }

    /// Builder: sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the maximum stream length.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        self.max_len = max_len;
        self
    }

    /// Builder: sets loss weights (event : interarrival : stop).
    pub fn with_loss_weights(mut self, event: f32, iat: f32, stop: f32) -> Self {
        self.loss_weights = (event, iat, stop);
        self
    }

    /// Builder: enables the Table 8 "no distribution prediction" ablation.
    pub fn with_point_iat_head(mut self) -> Self {
        self.point_iat_head = true;
        self
    }
}

impl Default for CptGptConfig {
    fn default() -> Self {
        CptGptConfig::small()
    }
}

/// Divergence-watchdog policy: what the training loop does when a loss or
/// gradient norm comes back NaN/∞.
///
/// On each fault the loop rolls the model and optimizer back to the last
/// epoch boundary that completed cleanly, multiplies the effective learning
/// rate by [`lr_backoff`](WatchdogConfig::lr_backoff), and replays. After
/// [`max_retries`](WatchdogConfig::max_retries) consecutive faults the run
/// aborts with [`TrainError::Diverged`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Rollback + backoff attempts before aborting.
    pub max_retries: u32,
    /// Multiplier applied to the learning-rate scale on each rollback
    /// (must be in `(0, 1)`).
    pub lr_backoff: f32,
    /// Floor for the accumulated learning-rate scale; backoff never takes
    /// the scale below this.
    pub min_lr_scale: f32,
}

impl WatchdogConfig {
    /// Default policy: 3 retries, halve the learning rate each time, floor
    /// the scale at 1/16.
    pub fn standard() -> Self {
        WatchdogConfig {
            max_retries: 3,
            lr_backoff: 0.5,
            min_lr_scale: 0.0625,
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::standard()
    }
}

/// Optimization hyperparameters for one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training streams.
    pub epochs: usize,
    /// Streams per optimizer step (the *effective* batch size).
    pub batch_size: usize,
    /// Streams per micro-batch shard (gradient accumulation). Each
    /// optimizer-step batch is cut into `ceil(batch_size / microbatch)`
    /// shards; every shard runs forward/backward independently (possibly
    /// on different rayon workers) and the shard gradients are combined
    /// with a fixed-order tree reduction before the single optimizer step.
    /// Shard layout depends only on this field — never on thread count —
    /// so results are bit-identical at any `--threads` value.
    #[serde(default = "default_microbatch")]
    pub microbatch: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Linear warmup steps before the cosine decay.
    pub warmup_steps: u64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// Seed for batch shuffling.
    pub seed: u64,
    /// If `Some(n)`, snapshot the parameter store every `n` epochs (for
    /// the §5.5 checkpoint-selection heuristic).
    pub snapshot_every: Option<usize>,
    /// Divergence-recovery policy.
    #[serde(default)]
    pub watchdog: WatchdogConfig,
    /// Scheduled fault for chaos testing; `None` in production runs.
    #[serde(default)]
    pub fault: Option<FaultPlan>,
}

fn default_microbatch() -> usize {
    8
}

impl TrainConfig {
    /// Quick default suitable for tests and examples.
    pub fn quick() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            microbatch: default_microbatch(),
            lr: 3e-3,
            warmup_steps: 5,
            clip_norm: 1.0,
            seed: 0,
            snapshot_every: None,
            watchdog: WatchdogConfig::standard(),
            fault: None,
        }
    }

    /// Builder: sets epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Builder: sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Builder: sets the shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: sets the micro-batch (gradient-accumulation shard) size.
    pub fn with_microbatch(mut self, microbatch: usize) -> Self {
        self.microbatch = microbatch;
        self
    }

    /// Builder: enables parameter snapshots.
    pub fn with_snapshots(mut self, every: usize) -> Self {
        self.snapshot_every = Some(every);
        self
    }

    /// Builder: sets the divergence-recovery policy.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Builder: schedules a deterministic fault (chaos-testing hook).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Checks every field against its domain, returning the first
    /// violation as [`TrainError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), TrainError> {
        fn bad(field: &'static str, message: impl Into<String>) -> TrainError {
            TrainError::InvalidConfig {
                field,
                message: message.into(),
            }
        }
        if self.epochs == 0 {
            return Err(bad("epochs", "must be at least 1"));
        }
        if self.batch_size == 0 {
            return Err(bad("batch_size", "must be at least 1"));
        }
        if self.microbatch == 0 {
            return Err(bad("microbatch", "must be at least 1"));
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return Err(bad("lr", format!("must be finite and positive, got {}", self.lr)));
        }
        if !self.clip_norm.is_finite() || self.clip_norm <= 0.0 {
            return Err(bad(
                "clip_norm",
                format!("must be finite and positive, got {}", self.clip_norm),
            ));
        }
        if self.snapshot_every == Some(0) {
            return Err(bad("snapshot_every", "must be at least 1 when set"));
        }
        let w = &self.watchdog;
        if !(w.lr_backoff > 0.0 && w.lr_backoff < 1.0) {
            return Err(bad(
                "watchdog.lr_backoff",
                format!("must be in (0, 1), got {}", w.lr_backoff),
            ));
        }
        if !w.min_lr_scale.is_finite() || w.min_lr_scale <= 0.0 || w.min_lr_scale > 1.0 {
            return Err(bad(
                "watchdog.min_lr_scale",
                format!("must be in (0, 1], got {}", w.min_lr_scale),
            ));
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = CptGptConfig::paper();
        assert_eq!(c.n_blocks, 2);
        assert_eq!(c.d_model, 128);
        assert_eq!(c.d_mlp, 1024);
        assert_eq!(c.max_len, 500);
        assert_eq!(c.loss_weights, (1.0, 1.0, 1.0));
        assert!(!c.point_iat_head);
    }

    #[test]
    fn builders() {
        let c = CptGptConfig::small()
            .with_seed(9)
            .with_max_len(64)
            .with_loss_weights(3.0, 1.0, 1.0)
            .with_point_iat_head();
        assert_eq!(c.seed, 9);
        assert_eq!(c.max_len, 64);
        assert_eq!(c.loss_weights.0, 3.0);
        assert!(c.point_iat_head);
        let t = TrainConfig::quick()
            .with_epochs(3)
            .with_lr(0.1)
            .with_seed(5)
            .with_microbatch(4);
        assert_eq!(t.epochs, 3);
        assert_eq!(t.lr, 0.1);
        assert_eq!(t.seed, 5);
        assert_eq!(t.microbatch, 4);
    }

    #[test]
    fn microbatch_defaults_when_absent_from_serialized_config() {
        // Configs serialized before gradient accumulation existed must
        // still deserialize (checkpoint compatibility).
        let mut v = serde_json::to_value(TrainConfig::quick()).expect("to json");
        v.as_object_mut().expect("object").remove("microbatch");
        let back: TrainConfig = serde_json::from_value(v).expect("from json");
        assert_eq!(back.microbatch, default_microbatch());
    }

    #[test]
    fn quick_config_validates() {
        assert!(TrainConfig::quick().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_fields() {
        use crate::error::TrainError;
        let cases = [
            ("epochs", TrainConfig { epochs: 0, ..TrainConfig::quick() }),
            ("batch_size", TrainConfig { batch_size: 0, ..TrainConfig::quick() }),
            ("microbatch", TrainConfig { microbatch: 0, ..TrainConfig::quick() }),
            ("lr", TrainConfig { lr: -1.0, ..TrainConfig::quick() }),
            ("lr", TrainConfig { lr: f32::NAN, ..TrainConfig::quick() }),
            ("clip_norm", TrainConfig { clip_norm: 0.0, ..TrainConfig::quick() }),
            ("snapshot_every", TrainConfig { snapshot_every: Some(0), ..TrainConfig::quick() }),
            (
                "watchdog.lr_backoff",
                TrainConfig::quick().with_watchdog(WatchdogConfig {
                    lr_backoff: 1.5,
                    ..WatchdogConfig::standard()
                }),
            ),
            (
                "watchdog.min_lr_scale",
                TrainConfig::quick().with_watchdog(WatchdogConfig {
                    min_lr_scale: 0.0,
                    ..WatchdogConfig::standard()
                }),
            ),
        ];
        for (field, cfg) in cases {
            match cfg.validate() {
                Err(TrainError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }
}
