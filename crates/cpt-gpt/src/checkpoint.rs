//! Atomic training checkpoints and crash-safe resume.
//!
//! A [`TrainCheckpoint`] captures everything the training loop needs to
//! continue bit-for-bit where it left off: the model, the Adam moments, the
//! global step, the watchdog's learning-rate scale, and the report so far.
//! Files are written with [`cpt_nn::serialize::atomic_write_json`]
//! (temp file + rename), so a crash mid-save leaves the previous checkpoint
//! intact rather than a truncated one. Loading goes through typed
//! [`CheckpointError`]s — a corrupt or version-skewed file is a value the
//! caller handles, never a panic.

#![deny(clippy::unwrap_used)]

use crate::error::{CheckpointError, FaultKind};
use crate::model::CptGpt;
use crate::train::EpochStats;
use cpt_nn::Adam;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Format version written into every checkpoint; bumped on incompatible
/// layout changes so stale files fail with [`CheckpointError::Version`]
/// instead of deserializing into garbage.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// One watchdog intervention: a rollback to the last good epoch boundary
/// plus a learning-rate backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Epoch being attempted when the fault hit (0-based).
    pub epoch: usize,
    /// Global optimizer step at which the fault was detected.
    pub step: u64,
    /// What was detected.
    pub cause: FaultKind,
    /// Which consecutive retry this was (1-based).
    pub retry: u32,
    /// Learning-rate scale in effect *after* the backoff.
    pub lr_scale: f32,
}

/// Where and how often to checkpoint during training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (overwritten atomically on each save).
    pub path: PathBuf,
    /// Save after every `every_epochs` completed epochs.
    pub every_epochs: usize,
}

impl CheckpointSpec {
    /// Checkpoint to `path` after every epoch.
    pub fn every_epoch(path: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            path: path.into(),
            every_epochs: 1,
        }
    }

    /// Checkpoint to `path` every `every_epochs` epochs.
    pub fn every(path: impl Into<PathBuf>, every_epochs: usize) -> Self {
        CheckpointSpec {
            path: path.into(),
            every_epochs: every_epochs.max(1),
        }
    }
}

/// Complete mid-run training state.
///
/// Everything that affects the remaining epochs is here; combined with the
/// same dataset and [`crate::config::TrainConfig`], resuming reproduces the
/// uninterrupted run exactly (per-epoch RNG derivation makes batch
/// shuffling independent of how training was sliced across processes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Layout version (see [`CHECKPOINT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Model weights, tokenizer and initial-event distribution.
    pub model: CptGpt,
    /// Adam moments and step counter.
    pub optimizer: Adam,
    /// Number of fully completed epochs.
    pub epochs_done: usize,
    /// Global optimizer step after the last completed epoch.
    pub step: u64,
    /// Watchdog learning-rate scale in effect.
    pub lr_scale: f32,
    /// Per-epoch stats accumulated so far.
    pub epoch_stats: Vec<EpochStats>,
    /// Watchdog interventions so far.
    pub recoveries: Vec<RecoveryEvent>,
}

/// Saves `checkpoint` to `path` atomically.
pub fn save_checkpoint(
    checkpoint: &TrainCheckpoint,
    path: &Path,
) -> Result<(), CheckpointError> {
    cpt_nn::serialize::atomic_write_json(checkpoint, path).map_err(|e| match e {
        cpt_nn::serialize::CheckpointError::Io(source) => CheckpointError::Io {
            path: path.to_path_buf(),
            source,
        },
        other => CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: other.to_string(),
        },
    })
}

/// Loads a checkpoint from `path`, distinguishing missing/unreadable files
/// ([`CheckpointError::Io`]), unparseable bytes ([`CheckpointError::Corrupt`])
/// and format skew ([`CheckpointError::Version`]).
pub fn load_checkpoint(path: &Path) -> Result<TrainCheckpoint, CheckpointError> {
    let file = File::open(path).map_err(|source| CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let ckpt: TrainCheckpoint =
        serde_json::from_reader(BufReader::new(file)).map_err(|e| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    if ckpt.format_version != CHECKPOINT_FORMAT_VERSION {
        return Err(CheckpointError::Version {
            path: path.to_path_buf(),
            found: ckpt.format_version,
            expected: CHECKPOINT_FORMAT_VERSION,
        });
    }
    // Bit-flips inside a float literal still parse as JSON; reject weights
    // that are non-finite or shape-inconsistent before they train garbage.
    cpt_nn::serialize::validate_store(&ckpt.model.store).map_err(|e| {
        CheckpointError::Validation {
            path: path.to_path_buf(),
            detail: e.to_string(),
        }
    })?;
    Ok(ckpt)
}
