//! Supervised training loop (no GAN — the paper's point is that plain
//! next-token supervision suffices, avoiding mode collapse entirely, §4.3)
//! with a divergence watchdog and crash-safe checkpointing.
//!
//! Fault model: a batch can produce a NaN/∞ loss or gradient norm (bad
//! learning rate, degenerate batch, injected fault). The watchdog rolls the
//! model and optimizer back to the last clean epoch boundary, backs the
//! learning rate off, and replays; after
//! [`WatchdogConfig::max_retries`](crate::config::WatchdogConfig)
//! consecutive faults it aborts with [`TrainError::Diverged`] carrying the
//! full report. Batch shuffling derives a fresh RNG per epoch from
//! `(seed, epoch)`, so a replayed or resumed epoch sees exactly the batches
//! the uninterrupted run would have — resuming from a checkpoint reproduces
//! the original run bit for bit.
//!
//! Data parallelism (DESIGN.md §13): each optimizer step's batch is cut
//! into micro-batch shards ([`TrainConfig::microbatch`]); every shard runs
//! forward/backward on its own [`Session`] (drawing scratch from a
//! per-thread arena) across whatever rayon pool is installed, and the
//! shard gradients are combined with a fixed-order tree reduction
//! ([`cpt_nn::tree_reduce_grads`]) before one optimizer step. Shard layout
//! and reduction order depend only on the config — never on thread
//! scheduling — so training is bit-identical at any thread count, and a
//! checkpoint written by a 1-thread run resumes bit-identically under an
//! 8-thread pool.

use crate::batch::Batch;
use crate::checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointSpec, RecoveryEvent, TrainCheckpoint,
    CHECKPOINT_FORMAT_VERSION,
};
use crate::config::TrainConfig;
use crate::error::{FaultKind, TrainError};
use crate::model::CptGpt;
use crate::source::{DatasetSource, ShardSource};
use cpt_nn::{
    clip_grad_norm, scale_grads, tree_reduce_grads, Adam, GradSet, LrSchedule, ParamStore,
    ScratchArena, Session,
};
use cpt_trace::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Loss/timing record for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Watchdog interventions (rollback + learning-rate backoff), in order.
    #[serde(default)]
    pub recoveries: Vec<RecoveryEvent>,
    /// True if the run stopped early at a simulated crash
    /// ([`crate::faultinject::FaultPlan::interrupt_after_epoch`]); resume
    /// from the checkpoint to finish it.
    #[serde(default)]
    pub interrupted: bool,
    /// Parameter snapshots taken every `snapshot_every` epochs (for the
    /// §5.5 checkpoint-selection heuristic). Each entry is
    /// `(epoch, params)`.
    #[serde(skip)]
    pub snapshots: Vec<(usize, ParamStore)>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.mean_loss).unwrap_or(f64::NAN)
    }
}

/// Derives the shuffle RNG for one epoch from `(seed, epoch)` alone
/// (splitmix64 finalizer), so epoch `e`'s batches are identical whether the
/// process trained straight through, rolled back and replayed, or resumed
/// from a checkpoint.
fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    let mut z = seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Result of one data-parallel forward/backward over a step's shards.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Combined loss: per-shard masked means weighted by each shard's
    /// share of the step's real (unpadded) positions, summed in shard
    /// order. In exact arithmetic this equals the masked mean over the
    /// whole step.
    pub loss: f64,
    /// Reduced gradient set of the combined loss, ready for
    /// [`ParamStore::accumulate_grads`].
    pub grads: GradSet,
}

/// Runs forward/backward for each shard of one optimizer step across the
/// installed rayon pool and reduces the shard gradients in fixed order.
///
/// Every shard is an independent [`Session`] over `model.store`, drawing
/// node storage from its executing thread's private
/// [`ScratchArena`]; arena contents cannot affect results (buffers are
/// zeroed on reuse), so thread assignment is irrelevant to the bits
/// produced. Shard losses and gradients are combined with weights
/// `mask_s / mask_total` in shard-index order, then reduced pairwise
/// ([`tree_reduce_grads`]) — both orders are pure functions of the shard
/// list, making the outcome bit-identical at any thread count.
///
/// Exposed for the throughput harness and Criterion benches; the training
/// loop uses it via [`train`].
pub fn parallel_grad_step(model: &CptGpt, shards: &[Batch]) -> StepOutcome {
    parallel_grad_step_inner(model, shards, None)
}

/// [`parallel_grad_step`] with an optional fault: poison the first
/// gradient element of shard `poison_shard` with NaN after its backward
/// pass, modelling one data-parallel worker going numerically bad. The
/// NaN survives weighting and reduction, so it reaches the global clip
/// norm exactly like a serial non-finite gradient.
fn parallel_grad_step_inner(
    model: &CptGpt,
    shards: &[Batch],
    poison_shard: Option<usize>,
) -> StepOutcome {
    struct ShardOut {
        loss: f64,
        mask: f64,
        grads: GradSet,
    }
    // `collect` keeps shard order regardless of completion order.
    let outs: Vec<ShardOut> = shards
        .par_iter()
        .enumerate()
        .map(|(si, batch)| {
            let mut sess = Session::with_scratch(&model.store, ScratchArena::for_current_thread());
            let loss = model.loss(&mut sess, batch);
            let loss_val = sess.graph.value(loss).item() as f64;
            sess.backward(loss);
            let mut grads = sess.grads();
            if poison_shard == Some(si) {
                if let Some(x) = grads.first_mut().and_then(|(_, g)| g.data.first_mut()) {
                    *x = f32::NAN;
                }
            }
            ShardOut {
                loss: loss_val,
                mask: batch.real_positions() as f64,
                grads,
            }
        })
        .collect();
    let mask_total: f64 = outs.iter().map(|o| o.mask).sum();
    let mut loss = 0.0f64;
    let mut sets = Vec::with_capacity(outs.len());
    for o in outs {
        let w = o.mask / mask_total.max(1.0);
        loss += o.loss * w;
        let mut g = o.grads;
        scale_grads(&mut g, w as f32);
        sets.push(g);
    }
    StepOutcome {
        loss,
        grads: tree_reduce_grads(sets),
    }
}

/// Trains `model` in place on `dataset` and records the initial-event
/// distribution used to bootstrap generation.
///
/// The dataset is expected to be single-device-type and (for hourly
/// experiments) single-hour, mirroring §5.1; nothing enforces that, the
/// model simply learns whatever mixture it is given.
pub fn train(
    model: &mut CptGpt,
    dataset: &Dataset,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    train_with_checkpoints(model, dataset, cfg, None)
}

/// Like [`train`], additionally writing an atomic [`TrainCheckpoint`] on
/// the cadence given by `checkpoint` (and at a simulated interrupt). Pass
/// `None` to skip checkpointing entirely.
pub fn train_with_checkpoints(
    model: &mut CptGpt,
    dataset: &Dataset,
    cfg: &TrainConfig,
    checkpoint: Option<&CheckpointSpec>,
) -> Result<TrainReport, TrainError> {
    train_source_with_checkpoints(model, &DatasetSource::new(dataset), cfg, checkpoint)
}

/// Trains `model` in place from any [`ShardSource`] — the in-RAM
/// [`DatasetSource`] or the out-of-core
/// [`ColumnarSource`](crate::source::ColumnarSource). Both produce
/// bit-identical weights on equivalent data (DESIGN.md §17).
pub fn train_source(
    model: &mut CptGpt,
    source: &dyn ShardSource,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    train_source_with_checkpoints(model, source, cfg, None)
}

/// [`train_source`] with optional atomic checkpointing, mirroring
/// [`train_with_checkpoints`].
pub fn train_source_with_checkpoints(
    model: &mut CptGpt,
    source: &dyn ShardSource,
    cfg: &TrainConfig,
    checkpoint: Option<&CheckpointSpec>,
) -> Result<TrainReport, TrainError> {
    cfg.validate()?;
    if source.num_trainable() == 0 {
        return Err(TrainError::NoTrainableStreams);
    }
    model.initial_event_dist = source.initial_event_distribution();
    let adam = Adam::new(&model.store, cfg.lr);
    run_epochs(
        model,
        source,
        cfg,
        checkpoint,
        adam,
        0,
        1.0,
        0,
        TrainReport::default(),
    )
}

/// Resumes an interrupted run from `checkpoint.path` and trains the
/// remaining epochs of `cfg`. `dataset` and `cfg` must match the original
/// run for the result to be equivalent to never having been interrupted.
/// Returns the restored-and-finished model plus the merged report (epoch
/// stats and recoveries from before the interruption included).
pub fn resume_training(
    dataset: &Dataset,
    cfg: &TrainConfig,
    checkpoint: &CheckpointSpec,
) -> Result<(CptGpt, TrainReport), TrainError> {
    resume_training_source(&DatasetSource::new(dataset), cfg, checkpoint)
}

/// [`resume_training`] generalized to any [`ShardSource`]; the source must
/// present the same data as the original run for bit-identical resumption.
pub fn resume_training_source(
    source: &dyn ShardSource,
    cfg: &TrainConfig,
    checkpoint: &CheckpointSpec,
) -> Result<(CptGpt, TrainReport), TrainError> {
    cfg.validate()?;
    if source.num_trainable() == 0 {
        return Err(TrainError::NoTrainableStreams);
    }
    let ckpt = load_checkpoint(&checkpoint.path)?;
    let mut model = ckpt.model;
    let report = TrainReport {
        epochs: ckpt.epoch_stats,
        recoveries: ckpt.recoveries,
        ..TrainReport::default()
    };
    let report = run_epochs(
        &mut model,
        source,
        cfg,
        Some(checkpoint),
        ckpt.optimizer,
        ckpt.step,
        ckpt.lr_scale,
        ckpt.epochs_done,
        report,
    )?;
    Ok((model, report))
}

/// The engine behind [`train`]/[`resume_training`]: runs epochs
/// `start_epoch..cfg.epochs` on top of the given optimizer/step/lr-scale
/// state, with watchdog recovery and optional checkpointing.
#[allow(clippy::too_many_arguments)]
fn run_epochs(
    model: &mut CptGpt,
    source: &dyn ShardSource,
    cfg: &TrainConfig,
    checkpoint: Option<&CheckpointSpec>,
    mut adam: Adam,
    mut step: u64,
    mut lr_scale: f32,
    start_epoch: usize,
    mut report: TrainReport,
) -> Result<TrainReport, TrainError> {
    // A full epoch always has ceil(trainable / batch_size) optimizer steps
    // regardless of source, so schedule length and per-epoch mean-loss
    // denominators can be computed without materializing an epoch.
    let steps_per_epoch = source.num_trainable().div_ceil(cfg.batch_size).max(1);
    let total_batches = steps_per_epoch * cfg.epochs;
    let schedule = LrSchedule::WarmupCosine {
        peak: cfg.lr,
        floor: cfg.lr * 0.1,
        warmup_steps: cfg.warmup_steps,
        total_steps: total_batches as u64,
    };

    let start = Instant::now();
    // Tracks the `once` semantics of injected NaNs across rollbacks: a
    // transient fault fires on the first visit to its step only, so the
    // replay proceeds cleanly. Loss and shard-gradient faults track their
    // `once` state independently.
    let mut injected_nan_fired = false;
    let mut injected_grad_fired = false;
    for epoch in start_epoch..cfg.epochs {
        // Last-good state: the start of this epoch. Rollback restores all
        // three together so optimizer moments never outlive their weights.
        let good_store = model.store.clone();
        let good_adam = adam.clone();
        let good_step = step;
        let mut retries = 0u32;
        loop {
            let epoch_start = Instant::now();
            let rng = epoch_rng(cfg.seed, epoch);
            let max_len = model.config.max_len;
            let steps = source.epoch_steps(
                &model.tokenizer,
                cfg.batch_size,
                cfg.microbatch,
                max_len,
                rng,
            );
            let mut loss_sum = 0.0f64;
            let mut fault: Option<(FaultKind, u64)> = None;
            for shards in steps {
                adam.set_lr(schedule.lr(step) * lr_scale);
                let this_step = step;
                step += 1;
                // Injection decisions happen here, on the main thread,
                // before any shard is dispatched — so a fault plan fires
                // identically at any thread count.
                let mut inject_loss = false;
                let mut poison_shard = None;
                if let Some(plan) = &cfg.fault {
                    if plan.nan_loss_at_step == Some(this_step)
                        && (!plan.once || !injected_nan_fired)
                    {
                        injected_nan_fired = true;
                        inject_loss = true;
                    }
                    if plan.nan_grad_at_step == Some(this_step)
                        && (!plan.once || !injected_grad_fired)
                    {
                        injected_grad_fired = true;
                        poison_shard = Some(plan.fault_shard.min(shards.len() - 1));
                    }
                }
                let outcome = parallel_grad_step_inner(model, &shards, poison_shard);
                let loss_val = if inject_loss { f64::NAN } else { outcome.loss };
                if !loss_val.is_finite() {
                    fault = Some((FaultKind::NonFiniteLoss, this_step));
                    break;
                }
                loss_sum += loss_val;
                model.store.accumulate_grads(&outcome.grads);
                let grad_norm = clip_grad_norm(&mut model.store, cfg.clip_norm);
                if !grad_norm.is_finite() {
                    fault = Some((FaultKind::NonFiniteGradient, this_step));
                    break;
                }
                adam.step(&mut model.store);
                model.store.zero_grads();
            }
            let Some((cause, fault_step)) = fault else {
                report.epochs.push(EpochStats {
                    epoch,
                    mean_loss: loss_sum / steps_per_epoch as f64,
                    seconds: epoch_start.elapsed().as_secs_f64(),
                });
                break;
            };
            // Roll back to the last good epoch boundary; zeroing grads
            // clears any partial accumulation from the faulting batch.
            model.store = good_store.clone();
            model.store.zero_grads();
            adam = good_adam.clone();
            step = good_step;
            if retries >= cfg.watchdog.max_retries {
                report.total_seconds = start.elapsed().as_secs_f64();
                return Err(TrainError::Diverged {
                    cause,
                    retries,
                    report: Box::new(report),
                });
            }
            retries += 1;
            lr_scale = (lr_scale * cfg.watchdog.lr_backoff).max(cfg.watchdog.min_lr_scale);
            report.recoveries.push(RecoveryEvent {
                epoch,
                step: fault_step,
                cause,
                retry: retries,
                lr_scale,
            });
        }
        if let Some(every) = cfg.snapshot_every {
            if (epoch + 1) % every == 0 {
                report.snapshots.push((epoch, model.store.clone()));
            }
        }
        let interrupt_here = cfg
            .fault
            .and_then(|p| p.interrupt_after_epoch)
            .is_some_and(|e| e == epoch);
        if let Some(spec) = checkpoint {
            if (epoch + 1) % spec.every_epochs == 0 || interrupt_here {
                let ckpt = TrainCheckpoint {
                    format_version: CHECKPOINT_FORMAT_VERSION,
                    model: model.clone(),
                    optimizer: adam.clone(),
                    epochs_done: epoch + 1,
                    step,
                    lr_scale,
                    epoch_stats: report.epochs.clone(),
                    recoveries: report.recoveries.clone(),
                };
                save_checkpoint(&ckpt, &spec.path)?;
            }
        }
        if interrupt_here {
            report.interrupted = true;
            report.total_seconds = start.elapsed().as_secs_f64();
            return Ok(report);
        }
    }
    report.total_seconds = start.elapsed().as_secs_f64();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::make_epoch_shards;
    use crate::config::CptGptConfig;
    use crate::faultinject::FaultPlan;
    use crate::token::Tokenizer;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    fn alternating_dataset(n: usize) -> Dataset {
        // Strict SRV_REQ / S1_CONN_REL alternation with bimodal gaps: an
        // easy pattern a working trainer must learn quickly.
        let streams = (0..n)
            .map(|i| {
                let mut t = 0.0;
                let len = 6 + (i % 3) * 2;
                let events = (0..len)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        Dataset::new(streams)
    }

    fn tiny_config() -> CptGptConfig {
        CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = alternating_dataset(24);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let report = train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(6).with_lr(5e-3),
        )
        .expect("training succeeds");
        assert_eq!(report.epochs.len(), 6);
        let first = report.epochs[0].mean_loss;
        let last = report.final_loss();
        assert!(
            last < first * 0.7,
            "loss did not improve: {first} -> {last}"
        );
        assert!(report.total_seconds > 0.0);
        assert!(report.recoveries.is_empty());
        assert!(!report.interrupted);
        // Initial-event distribution captured: all streams start SRV_REQ.
        let p_srv = model
            .initial_event_dist
            .iter()
            .find(|(e, _)| *e == EventType::ServiceRequest)
            .expect("SRV_REQ present in initial-event distribution")
            .1;
        assert!((p_srv - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let cfg = TrainConfig::quick().with_epochs(2);
        let mut m1 = CptGpt::new(tiny_config(), tok.clone());
        let mut m2 = CptGpt::new(tiny_config(), tok);
        let r1 = train(&mut m1, &data, &cfg).expect("train m1");
        let r2 = train(&mut m2, &data, &cfg).expect("train m2");
        assert_eq!(r1.final_loss(), r2.final_loss());
        let id = m1.store.ids()[0];
        assert_eq!(m1.store.value(id).data, m2.store.value(id).data);
    }

    #[test]
    fn snapshots_are_recorded() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let report = train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(4).with_snapshots(2),
        )
        .expect("training succeeds");
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.snapshots[0].0, 1);
        assert_eq!(report.snapshots[1].0, 3);
    }

    #[test]
    fn invalid_config_is_typed_error() {
        let data = alternating_dataset(4);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let err = train(&mut model, &data, &TrainConfig::quick().with_epochs(0))
            .expect_err("epochs = 0 must be rejected");
        assert!(matches!(
            err,
            TrainError::InvalidConfig { field: "epochs", .. }
        ));
    }

    #[test]
    fn empty_dataset_is_typed_error() {
        // Single-event streams carry no transitions to fit.
        let data = Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            vec![Event::new(EventType::ServiceRequest, 1.0)],
        )]);
        let tok = Tokenizer::fit(&alternating_dataset(4));
        let mut model = CptGpt::new(tiny_config(), tok);
        let err = train(&mut model, &data, &TrainConfig::quick())
            .expect_err("no trainable streams must be rejected");
        assert!(matches!(err, TrainError::NoTrainableStreams));
    }

    #[test]
    fn watchdog_recovers_from_transient_nan() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let cfg = TrainConfig::quick()
            .with_epochs(3)
            .with_fault(FaultPlan::nan_loss_once_at(1));
        let report = train(&mut model, &data, &cfg).expect("transient NaN must be survivable");
        assert_eq!(report.epochs.len(), 3, "all epochs must still complete");
        assert_eq!(report.recoveries.len(), 1);
        let rec = report.recoveries[0];
        assert_eq!(rec.cause, FaultKind::NonFiniteLoss);
        assert_eq!(rec.step, 1);
        assert_eq!(rec.retry, 1);
        assert!(rec.lr_scale < 1.0, "backoff must shrink the lr scale");
    }

    #[test]
    fn watchdog_recovers_from_transient_shard_grad_nan() {
        // One worker shard's backward goes NaN; the poison must surface
        // through the fixed-order reduction as NonFiniteGradient and the
        // watchdog must recover exactly like in the serial path.
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let cfg = TrainConfig::quick()
            .with_epochs(3)
            .with_microbatch(4)
            .with_fault(FaultPlan::nan_shard_grad_once_at(1, 1));
        let report =
            train(&mut model, &data, &cfg).expect("transient shard fault must be survivable");
        assert_eq!(report.epochs.len(), 3, "all epochs must still complete");
        assert_eq!(report.recoveries.len(), 1);
        let rec = report.recoveries[0];
        assert_eq!(rec.cause, FaultKind::NonFiniteGradient);
        assert_eq!(rec.step, 1);
        assert_eq!(rec.retry, 1);
        assert!(rec.lr_scale < 1.0, "backoff must shrink the lr scale");
        // Recovery must not disturb finiteness of the final weights.
        for id in model.store.ids() {
            assert!(model.store.value(id).data.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn watchdog_gives_up_on_persistent_shard_grad_nan() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let cfg = TrainConfig::quick()
            .with_epochs(2)
            .with_microbatch(4)
            // Out-of-range shard index clamps to the step's last shard.
            .with_fault(FaultPlan::nan_shard_grad_always_at(0, 99));
        let err = train(&mut model, &data, &cfg).expect_err("persistent shard NaN must abort");
        match err {
            TrainError::Diverged { cause, retries, .. } => {
                assert_eq!(cause, FaultKind::NonFiniteGradient);
                assert_eq!(retries, cfg.watchdog.max_retries);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn parallel_grad_step_matches_training_loop_semantics() {
        // The public step API must produce finite, non-empty gradients and
        // a loss equal (in exact weighting) to the masked mean across its
        // shards.
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let model = CptGpt::new(tiny_config(), tok);
        let mut rng = epoch_rng(0, 0);
        let steps = make_epoch_shards(&model.tokenizer, &data, 8, 2, 16, &mut rng);
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].len(), 4);
        let out = parallel_grad_step(&model, &steps[0]);
        assert!(out.loss.is_finite());
        assert!(!out.grads.is_empty());
        assert!(out
            .grads
            .iter()
            .all(|(_, g)| g.data.iter().all(|x| x.is_finite())));
    }

    #[test]
    fn watchdog_gives_up_on_persistent_nan() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let cfg = TrainConfig::quick()
            .with_epochs(2)
            .with_fault(FaultPlan::nan_loss_always_at(0));
        let err = train(&mut model, &data, &cfg).expect_err("persistent NaN must abort");
        match err {
            TrainError::Diverged {
                cause,
                retries,
                report,
            } => {
                assert_eq!(cause, FaultKind::NonFiniteLoss);
                assert_eq!(retries, cfg.watchdog.max_retries);
                assert_eq!(report.recoveries.len(), cfg.watchdog.max_retries as usize);
                // Backoff applied on every rollback, clamped to the floor.
                let last_scale = report
                    .recoveries
                    .last()
                    .expect("at least one recovery recorded")
                    .lr_scale;
                assert!(last_scale >= cfg.watchdog.min_lr_scale);
                assert!(last_scale < 1.0);
                assert!(report.epochs.is_empty(), "no epoch completed");
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn recovered_run_matches_clean_run_batches() {
        // A transient fault replays the epoch with identical batches, so a
        // recovered run must end at exactly the same parameters as a clean
        // run at the backed-off learning rate would for later epochs — here
        // we check the cheaper invariant that recovery does not disturb
        // determinism: two identical faulty runs agree bit for bit.
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let cfg = TrainConfig::quick()
            .with_epochs(2)
            .with_fault(FaultPlan::nan_loss_once_at(1));
        let mut m1 = CptGpt::new(tiny_config(), tok.clone());
        let mut m2 = CptGpt::new(tiny_config(), tok);
        let r1 = train(&mut m1, &data, &cfg).expect("train m1");
        let r2 = train(&mut m2, &data, &cfg).expect("train m2");
        assert_eq!(r1.final_loss(), r2.final_loss());
        let id = m1.store.ids()[0];
        assert_eq!(m1.store.value(id).data, m2.store.value(id).data);
    }
}
