//! Supervised training loop (no GAN — the paper's point is that plain
//! next-token supervision suffices, avoiding mode collapse entirely, §4.3).

use crate::batch::make_epoch_batches;
use crate::config::TrainConfig;
use crate::model::CptGpt;
use cpt_nn::{clip_grad_norm, Adam, LrSchedule, ParamStore, Session};
use cpt_trace::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Loss/timing record for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f64,
    /// Wall-clock seconds spent in this epoch.
    pub seconds: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TrainReport {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Parameter snapshots taken every `snapshot_every` epochs (for the
    /// §5.5 checkpoint-selection heuristic). Each entry is
    /// `(epoch, params)`.
    #[serde(skip)]
    pub snapshots: Vec<(usize, ParamStore)>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.mean_loss).unwrap_or(f64::NAN)
    }
}

/// Trains `model` in place on `dataset` and records the initial-event
/// distribution used to bootstrap generation.
///
/// The dataset is expected to be single-device-type and (for hourly
/// experiments) single-hour, mirroring §5.1; nothing enforces that, the
/// model simply learns whatever mixture it is given.
pub fn train(model: &mut CptGpt, dataset: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(cfg.epochs > 0, "epochs must be > 0");
    assert!(cfg.batch_size > 0, "batch_size must be > 0");
    model.initial_event_dist = dataset.initial_event_distribution();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut adam = Adam::new(&model.store, cfg.lr);
    let total_batches = {
        let trainable = dataset.streams.iter().filter(|s| s.len() >= 2).count();
        trainable.div_ceil(cfg.batch_size).max(1) * cfg.epochs
    };
    let schedule = LrSchedule::WarmupCosine {
        peak: cfg.lr,
        floor: cfg.lr * 0.1,
        warmup_steps: cfg.warmup_steps,
        total_steps: total_batches as u64,
    };

    let mut report = TrainReport::default();
    let start = Instant::now();
    let mut step = 0u64;
    for epoch in 0..cfg.epochs {
        let epoch_start = Instant::now();
        let batches = make_epoch_batches(
            &model.tokenizer,
            dataset,
            cfg.batch_size,
            model.config.max_len,
            &mut rng,
        );
        assert!(
            !batches.is_empty(),
            "no trainable streams (all shorter than 2 events)"
        );
        let mut loss_sum = 0.0f64;
        for batch in &batches {
            adam.set_lr(schedule.lr(step));
            step += 1;
            let mut sess = Session::new(&model.store);
            let loss = model.loss(&mut sess, batch);
            loss_sum += sess.graph.value(loss).item() as f64;
            sess.backward(loss);
            let grads = sess.grads();
            model.store.accumulate_grads(&grads);
            clip_grad_norm(&mut model.store, cfg.clip_norm);
            adam.step(&mut model.store);
            model.store.zero_grads();
        }
        report.epochs.push(EpochStats {
            epoch,
            mean_loss: loss_sum / report_len(&batches),
            seconds: epoch_start.elapsed().as_secs_f64(),
        });
        if let Some(every) = cfg.snapshot_every {
            if (epoch + 1) % every == 0 {
                report.snapshots.push((epoch, model.store.clone()));
            }
        }
    }
    report.total_seconds = start.elapsed().as_secs_f64();
    report
}

fn report_len(batches: &[crate::batch::Batch]) -> f64 {
    batches.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CptGptConfig;
    use crate::token::Tokenizer;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    fn alternating_dataset(n: usize) -> Dataset {
        // Strict SRV_REQ / S1_CONN_REL alternation with bimodal gaps: an
        // easy pattern a working trainer must learn quickly.
        let streams = (0..n)
            .map(|i| {
                let mut t = 0.0;
                let len = 6 + (i % 3) * 2;
                let events = (0..len)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        Dataset::new(streams)
    }

    fn tiny_config() -> CptGptConfig {
        CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = alternating_dataset(24);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let report = train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(6).with_lr(5e-3),
        );
        assert_eq!(report.epochs.len(), 6);
        let first = report.epochs[0].mean_loss;
        let last = report.final_loss();
        assert!(
            last < first * 0.7,
            "loss did not improve: {first} -> {last}"
        );
        assert!(report.total_seconds > 0.0);
        // Initial-event distribution captured: all streams start SRV_REQ.
        let p_srv = model
            .initial_event_dist
            .iter()
            .find(|(e, _)| *e == EventType::ServiceRequest)
            .unwrap()
            .1;
        assert!((p_srv - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let cfg = TrainConfig::quick().with_epochs(2);
        let mut m1 = CptGpt::new(tiny_config(), tok.clone());
        let mut m2 = CptGpt::new(tiny_config(), tok);
        let r1 = train(&mut m1, &data, &cfg);
        let r2 = train(&mut m2, &data, &cfg);
        assert_eq!(r1.final_loss(), r2.final_loss());
        let id = m1.store.ids()[0];
        assert_eq!(m1.store.value(id).data, m2.store.value(id).data);
    }

    #[test]
    fn snapshots_are_recorded() {
        let data = alternating_dataset(8);
        let tok = Tokenizer::fit(&data);
        let mut model = CptGpt::new(tiny_config(), tok);
        let report = train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(4).with_snapshots(2),
        );
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.snapshots[0].0, 1);
        assert_eq!(report.snapshots[1].0, 3);
    }
}
