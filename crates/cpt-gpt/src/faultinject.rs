//! Deterministic fault injection for exercising the fault-tolerance paths.
//!
//! Divergence, crashes mid-run, and corrupt artifacts are rare in the wild
//! and impossible to schedule — which makes the recovery code the least
//! tested code in the repo. This module makes every fault reproducible:
//! a [`FaultPlan`] tells the training loop to produce a NaN loss at an exact
//! optimizer step or to simulate a crash right after an epoch's checkpoint,
//! and the file helpers corrupt bytes of an artifact under a seed. The same
//! seed always produces the same fault, so CI can assert on the recovery,
//! not just hope to observe one.

#![deny(clippy::unwrap_used)]

use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A scheduled, deterministic fault for the training loop.
///
/// Attached to a training run via
/// [`TrainConfig::fault`](crate::config::TrainConfig). All fields default to
/// "no fault", so `FaultPlan::default()` is a no-op plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Replace the loss with NaN at this global optimizer step (0-based,
    /// counted across epochs and rollback replays).
    #[serde(default)]
    pub nan_loss_at_step: Option<u64>,
    /// Poison one worker shard's gradients with NaN at this global
    /// optimizer step (0-based, counted like
    /// [`nan_loss_at_step`](FaultPlan::nan_loss_at_step)). The poisoned
    /// shard is [`fault_shard`](FaultPlan::fault_shard); whether the fault
    /// fires is decided on the main thread before the step's shards are
    /// dispatched, so injection is deterministic at any thread count. The
    /// NaN propagates through the fixed-order gradient reduction into the
    /// global clip norm and surfaces as
    /// [`FaultKind::NonFiniteGradient`](crate::error::FaultKind) — the
    /// exact same watchdog path a serial non-finite gradient takes.
    #[serde(default)]
    pub nan_grad_at_step: Option<u64>,
    /// Which micro-batch shard [`nan_grad_at_step`](FaultPlan::nan_grad_at_step)
    /// poisons (0-based; clamped to the step's last shard if out of range).
    #[serde(default)]
    pub fault_shard: usize,
    /// Stop the run as if the process died right after this epoch's
    /// checkpoint was written (0-based epoch index). The report comes back
    /// with `interrupted = true`; a later `--resume` picks up from the
    /// checkpoint. Lets tests compare interrupted+resumed against
    /// uninterrupted runs under identical schedules.
    #[serde(default)]
    pub interrupt_after_epoch: Option<usize>,
    /// If true a scheduled NaN (loss or shard gradient) fires only the
    /// first time its step is reached; the rollback replay of that step
    /// then proceeds cleanly (a transient fault). If false the fault is
    /// persistent and retries cannot help.
    #[serde(default)]
    pub once: bool,
}

impl FaultPlan {
    /// A transient NaN loss at global optimizer step `step`.
    pub fn nan_loss_once_at(step: u64) -> Self {
        FaultPlan {
            nan_loss_at_step: Some(step),
            once: true,
            ..FaultPlan::default()
        }
    }

    /// A persistent NaN loss at global optimizer step `step`: it fires on
    /// every replay, so the watchdog must eventually give up.
    pub fn nan_loss_always_at(step: u64) -> Self {
        FaultPlan {
            nan_loss_at_step: Some(step),
            once: false,
            ..FaultPlan::default()
        }
    }

    /// A transient NaN in shard `shard`'s gradients at global optimizer
    /// step `step` — models one worker of a data-parallel step going bad.
    pub fn nan_shard_grad_once_at(step: u64, shard: usize) -> Self {
        FaultPlan {
            nan_grad_at_step: Some(step),
            fault_shard: shard,
            once: true,
            ..FaultPlan::default()
        }
    }

    /// A persistent shard-gradient NaN at step `step`: fires on every
    /// replay, so the watchdog must eventually give up.
    pub fn nan_shard_grad_always_at(step: u64, shard: usize) -> Self {
        FaultPlan {
            nan_grad_at_step: Some(step),
            fault_shard: shard,
            once: false,
            ..FaultPlan::default()
        }
    }

    /// Simulate a crash immediately after epoch `epoch` (0-based) completes
    /// and its checkpoint is written.
    pub fn interrupt_after(epoch: usize) -> Self {
        FaultPlan {
            interrupt_after_epoch: Some(epoch),
            ..FaultPlan::default()
        }
    }

    /// True if the plan schedules any fault at all.
    pub fn is_active(&self) -> bool {
        self.nan_loss_at_step.is_some()
            || self.nan_grad_at_step.is_some()
            || self.interrupt_after_epoch.is_some()
    }
}

/// A scheduled, deterministic failure of a *named pipeline stage* — the
/// coarse-grained sibling of [`FaultPlan`]'s in-loop faults, consumed by
/// the experiment suite's stage supervisor.
///
/// The plan names one stage and how many of its attempts fail. Attempts
/// are 1-based, so `failures: 1` fails the first attempt and lets the
/// supervisor's retry (with its reseed and backoff) succeed, while
/// `failures: u32::MAX` defeats any retry budget. The same plan always
/// fails the same attempts, so CI can assert on manifests exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFaultPlan {
    /// Name of the stage to fail (e.g. `"table5"`).
    pub stage: String,
    /// Number of leading attempts that fail.
    pub failures: u32,
}

impl StageFaultPlan {
    /// Fails every attempt of `stage` — retries cannot help.
    pub fn always(stage: impl Into<String>) -> Self {
        StageFaultPlan {
            stage: stage.into(),
            failures: u32::MAX,
        }
    }

    /// Fails the first `failures` attempts of `stage`.
    pub fn first_attempts(stage: impl Into<String>, failures: u32) -> Self {
        StageFaultPlan {
            stage: stage.into(),
            failures,
        }
    }

    /// Parses the CLI spec `STAGE` (always fail) or `STAGE:N` (fail the
    /// first N attempts).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (stage, failures) = match spec.split_once(':') {
            None => (spec, u32::MAX),
            Some((stage, n)) => (
                stage,
                n.parse()
                    .map_err(|_| format!("bad failure count {n:?} in fault spec {spec:?}"))?,
            ),
        };
        if stage.is_empty() {
            return Err(format!("empty stage name in fault spec {spec:?}"));
        }
        Ok(StageFaultPlan {
            stage: stage.to_string(),
            failures,
        })
    }

    /// True if attempt number `attempt` (1-based) of `stage` must fail.
    pub fn should_fail(&self, stage: &str, attempt: u32) -> bool {
        self.stage == stage && attempt <= self.failures
    }
}

/// splitmix64: tiny, high-quality mixer used to derive corruption offsets
/// from a seed without depending on an RNG crate here.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state = z ^ (z >> 31);
}

/// Flip one bit in each of `n_flips` seed-chosen bytes of the file at
/// `path`, in place. Deterministic: the same (file length, seed, n_flips)
/// always damages the same offsets. Returns the offsets touched.
pub fn corrupt_file_bytes(path: &Path, seed: u64, n_flips: usize) -> io::Result<Vec<usize>> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(Vec::new());
    }
    let mut state = seed ^ bytes.len() as u64;
    let mut offsets = Vec::with_capacity(n_flips);
    for _ in 0..n_flips {
        splitmix64(&mut state);
        let off = (state % bytes.len() as u64) as usize;
        splitmix64(&mut state);
        let bit = (state % 8) as u8;
        bytes[off] ^= 1 << bit;
        offsets.push(off);
    }
    fs::write(path, &bytes)?;
    Ok(offsets)
}

/// Truncate the file at `path` to `keep_fraction` of its length (clamped to
/// `[0, 1]`), simulating a write cut short by a crash or full disk.
pub fn truncate_file(path: &Path, keep_fraction: f64) -> io::Result<()> {
    let bytes = fs::read(path)?;
    let keep = ((bytes.len() as f64) * keep_fraction.clamp(0.0, 1.0)) as usize;
    fs::write(path, &bytes[..keep])
}

/// Mangle line `line_idx` (0-based) of a JSONL text by chopping it mid-way
/// and appending garbage, returning the damaged text. Lines out of range
/// leave the text unchanged.
pub fn malform_jsonl_line(text: &str, line_idx: usize) -> String {
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            if i == line_idx {
                let cut = line.len() / 2;
                format!("{}<<corrupt>>", &line[..cut])
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::nan_loss_once_at(3).is_active());
        assert!(FaultPlan::interrupt_after(0).is_active());
        assert!(FaultPlan::nan_shard_grad_once_at(2, 1).is_active());
        let p = FaultPlan::nan_shard_grad_always_at(5, 0);
        assert_eq!(p.nan_grad_at_step, Some(5));
        assert_eq!(p.fault_shard, 0);
        assert!(!p.once);
    }

    #[test]
    fn old_serialized_plans_still_parse() {
        // A plan serialized before shard faults existed lacks the new
        // fields; serde defaults must fill them in.
        let plan: FaultPlan =
            serde_json::from_str(r#"{"nan_loss_at_step":4,"once":true}"#).expect("parse");
        assert_eq!(plan.nan_loss_at_step, Some(4));
        assert_eq!(plan.nan_grad_at_step, None);
        assert_eq!(plan.fault_shard, 0);
    }

    #[test]
    fn stage_fault_plan_parses_and_schedules() {
        let p = StageFaultPlan::parse("table5:2").expect("parse");
        assert_eq!(p, StageFaultPlan::first_attempts("table5", 2));
        assert!(p.should_fail("table5", 1));
        assert!(p.should_fail("table5", 2));
        assert!(!p.should_fail("table5", 3));
        assert!(!p.should_fail("table6", 1));

        let always = StageFaultPlan::parse("fig2").expect("parse");
        assert_eq!(always, StageFaultPlan::always("fig2"));
        assert!(always.should_fail("fig2", u32::MAX));

        assert!(StageFaultPlan::parse(":3").is_err());
        assert!(StageFaultPlan::parse("fig2:x").is_err());
    }

    #[test]
    fn corruption_is_deterministic() {
        let dir = std::env::temp_dir().join("cpt_faultinject_det");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(1024).collect();
        fs::write(&a, &payload).expect("write a");
        fs::write(&b, &payload).expect("write b");
        let offs_a = corrupt_file_bytes(&a, 42, 5).expect("corrupt a");
        let offs_b = corrupt_file_bytes(&b, 42, 5).expect("corrupt b");
        assert_eq!(offs_a, offs_b);
        assert_eq!(fs::read(&a).expect("read a"), fs::read(&b).expect("read b"));
        assert_ne!(fs::read(&a).expect("read a"), payload);
    }

    #[test]
    fn truncation_shortens_file() {
        let dir = std::env::temp_dir().join("cpt_faultinject_trunc");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("t.bin");
        fs::write(&p, vec![7u8; 100]).expect("write");
        truncate_file(&p, 0.25).expect("truncate");
        assert_eq!(fs::read(&p).expect("read").len(), 25);
    }

    #[test]
    fn malform_hits_only_requested_line() {
        let text = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
        let out = malform_jsonl_line(text, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "{\"a\":1}");
        assert!(lines[1].contains("<<corrupt>>"));
        assert_eq!(lines[2], "{\"c\":3}");
    }
}
