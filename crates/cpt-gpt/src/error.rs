//! Typed errors for training, generation and checkpoint IO.
//!
//! The train/generate hot paths used to panic (`assert!`/`unwrap()`) on bad
//! configs, non-finite losses and corrupt files. Long unattended runs — the
//! regime the paper's §5.5 results depend on — need those conditions
//! surfaced as values a caller can match on, log, and turn into exit codes,
//! never a panic. Every variant carries enough context to act on: the
//! offending field, the fault kind, the checkpoint path, or the structured
//! [`TrainReport`] accumulated up to the abort.

#![deny(clippy::unwrap_used)]

use crate::train::TrainReport;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The kind of numerical fault the training watchdog detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The batch loss evaluated to NaN or ±∞.
    NonFiniteLoss,
    /// The global gradient norm evaluated to NaN or ±∞.
    NonFiniteGradient,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::NonFiniteLoss => write!(f, "non-finite loss"),
            FaultKind::NonFiniteGradient => write!(f, "non-finite gradient norm"),
        }
    }
}

/// Errors raised by [`crate::train::train`] and friends.
#[derive(Debug)]
pub enum TrainError {
    /// A training-configuration field failed validation.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that failed.
        message: String,
    },
    /// The dataset contains no stream with at least two events, so there is
    /// nothing to fit.
    NoTrainableStreams,
    /// The watchdog exhausted its retry budget: every rollback + learning-
    /// rate backoff still re-diverged. Carries the structured report
    /// (including every recovery attempt) accumulated before the abort.
    Diverged {
        /// Fault observed on the final, fatal attempt.
        cause: FaultKind,
        /// Rollback/backoff attempts consumed before giving up.
        retries: u32,
        /// Report of everything that happened up to the abort; its
        /// `recoveries` field records each rollback.
        report: Box<TrainReport>,
    },
    /// Reading or writing a training checkpoint failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::InvalidConfig { field, message } => {
                write!(f, "invalid training config: {field}: {message}")
            }
            TrainError::NoTrainableStreams => {
                write!(f, "no trainable streams (all shorter than 2 events)")
            }
            TrainError::Diverged {
                cause, retries, ..
            } => write!(
                f,
                "training diverged ({cause}) and did not recover after {retries} rollback(s)"
            ),
            TrainError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Errors raised while saving or loading a [`crate::checkpoint::TrainCheckpoint`].
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error touching the checkpoint (or its temp file).
    Io {
        /// Checkpoint path involved.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// The checkpoint bytes do not parse as a checkpoint (truncated file,
    /// flipped bytes, wrong file entirely).
    Corrupt {
        /// Checkpoint path involved.
        path: PathBuf,
        /// Parser detail (includes the JSON error position).
        detail: String,
    },
    /// The checkpoint parsed but was written by an incompatible format
    /// version of this crate.
    Version {
        /// Checkpoint path involved.
        path: PathBuf,
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The checkpoint parsed but its weights are unusable: non-finite
    /// values or a tensor whose data length disagrees with its shape.
    /// Distinguished from [`CheckpointError::Corrupt`] because the bytes
    /// are well-formed JSON — the *model* is invalid, so callers map it to
    /// the bad-config/model exit code rather than the checkpoint-IO one.
    Validation {
        /// Checkpoint path involved.
        path: PathBuf,
        /// Which tensor failed and why.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint io error at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            CheckpointError::Version {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} has format version {found}, this build reads {expected}",
                path.display()
            ),
            CheckpointError::Validation { path, detail } => {
                write!(f, "checkpoint {} failed validation: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Errors raised by [`crate::model::CptGpt::generate`].
#[derive(Debug)]
pub enum GenerateError {
    /// A generation-configuration field failed validation.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the constraint that failed.
        message: String,
    },
    /// The model has no initial-event distribution: it was never trained
    /// (or was deserialized from a bundle missing it), so inference cannot
    /// bootstrap a stream.
    UntrainedModel,
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::InvalidConfig { field, message } => {
                write!(f, "invalid generation config: {field}: {message}")
            }
            GenerateError::UntrainedModel => write!(
                f,
                "model has no initial-event distribution; train it first"
            ),
        }
    }
}

impl std::error::Error for GenerateError {}
