//! Training-data sources: the abstraction that lets the same epoch engine
//! consume either an in-RAM [`Dataset`] or an out-of-core `.ctb` columnar
//! trace ([`ColumnarReader`]) — with bit-identical results.
//!
//! The equivalence argument (DESIGN.md §17): the epoch engine derives one
//! shuffle RNG per `(seed, epoch)` and a shard layout that is a pure
//! function of the shuffled stream order and `(batch_size, microbatch)`.
//! Both sources present the *same trainable streams in the same file
//! order* — streams with at least two events, truncated to `max_len + 1`
//! (the truncation [`build_batch`] applies anyway) — and shuffle an
//! equal-length list with the same RNG, which consumes the generator
//! identically. Batches built from either source are therefore equal
//! element for element, and training consumes them in the same order, so
//! the resulting weights are bit-identical. The columnar source just never
//! holds more than one optimizer step's streams in memory.

use crate::batch::{build_batch, make_epoch_shards, Batch};
use crate::token::{ScaleKind, Tokenizer, TokenizerFit};
use cpt_trace::columnar::{ColumnarReader, CtbError};
use cpt_trace::{Dataset, EventType, Generation, Stream};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A source of training shards for the epoch engine.
///
/// `epoch_steps` yields one `Vec<Batch>` per optimizer step (the step's
/// micro-batch shards, in stream order), for one full pass over the
/// trainable streams in the order produced by shuffling with `rng`.
pub trait ShardSource {
    /// The generation of the underlying trace.
    fn generation(&self) -> Generation;

    /// Number of trainable streams (at least two events).
    fn num_trainable(&self) -> usize;

    /// Distribution of the initial event type across trainable streams
    /// (used to bootstrap generation), matching
    /// [`Dataset::initial_event_distribution`] on the clamped dataset.
    fn initial_event_distribution(&self) -> Vec<(EventType, f64)>;

    /// Lazily yields each optimizer step's shards for one epoch.
    fn epoch_steps<'a>(
        &'a self,
        tokenizer: &'a Tokenizer,
        batch_size: usize,
        microbatch: usize,
        max_len: usize,
        rng: StdRng,
    ) -> Box<dyn Iterator<Item = Vec<Batch>> + 'a>;
}

/// The in-RAM source: a thin adapter over [`make_epoch_shards`], with the
/// exact behavior the trainer had before sources existed.
pub struct DatasetSource<'d> {
    dataset: &'d Dataset,
}

impl<'d> DatasetSource<'d> {
    /// Wraps an in-memory dataset.
    pub fn new(dataset: &'d Dataset) -> Self {
        DatasetSource { dataset }
    }
}

impl ShardSource for DatasetSource<'_> {
    fn generation(&self) -> Generation {
        self.dataset.generation
    }

    fn num_trainable(&self) -> usize {
        self.dataset.streams.iter().filter(|s| s.len() >= 2).count()
    }

    fn initial_event_distribution(&self) -> Vec<(EventType, f64)> {
        self.dataset.initial_event_distribution()
    }

    fn epoch_steps<'a>(
        &'a self,
        tokenizer: &'a Tokenizer,
        batch_size: usize,
        microbatch: usize,
        max_len: usize,
        mut rng: StdRng,
    ) -> Box<dyn Iterator<Item = Vec<Batch>> + 'a> {
        Box::new(
            make_epoch_shards(
                tokenizer,
                self.dataset,
                batch_size,
                microbatch,
                max_len,
                &mut rng,
            )
            .into_iter(),
        )
    }
}

/// The out-of-core source: macro-batches stream out of a `.ctb` columnar
/// trace, materializing only the current optimizer step's streams.
///
/// Construction verifies every block checksum once up front, so the
/// training loop can decode infallibly afterwards (the mapping is
/// immutable: `.ctb` files are published by atomic rename and never
/// rewritten in place).
pub struct ColumnarSource<'r> {
    reader: &'r ColumnarReader,
    /// Indices of trainable streams (len >= 2), in file order.
    trainable: Vec<u32>,
}

impl<'r> ColumnarSource<'r> {
    /// Builds a source over `reader`, verifying all block checksums.
    pub fn new(reader: &'r ColumnarReader) -> Result<Self, CtbError> {
        reader.verify()?;
        if reader.num_streams() > u32::MAX as usize {
            return Err(CtbError::TooLarge("stream count"));
        }
        let trainable = (0..reader.num_streams())
            .filter(|&i| reader.stream_meta(i).expect("in range").len >= 2)
            .map(|i| i as u32)
            .collect();
        Ok(ColumnarSource { reader, trainable })
    }

    fn materialize(&self, idx: u32, max_len: usize) -> Stream {
        self.reader
            .stream(idx as usize)
            .expect("trainable index in range")
            .prefix(max_len + 1)
            .to_stream()
            .expect("ctb verified at source construction")
    }
}

impl ShardSource for ColumnarSource<'_> {
    fn generation(&self) -> Generation {
        self.reader.generation()
    }

    fn num_trainable(&self) -> usize {
        self.trainable.len()
    }

    fn initial_event_distribution(&self) -> Vec<(EventType, f64)> {
        // First event type per trainable stream, straight off the type
        // column — equals Dataset::initial_event_distribution on the
        // clamped dataset (clamping keeps exactly the len >= 2 streams and
        // never touches the first event).
        let mut counts = [0usize; EventType::ALL.len()];
        let mut total = 0usize;
        for &i in &self.trainable {
            let view = self.reader.stream(i as usize).expect("in range");
            if let Some(&t) = view.type_bytes().first() {
                counts[t as usize] += 1;
                total += 1;
            }
        }
        self.generation()
            .event_types()
            .iter()
            .map(|e| {
                let p = if total == 0 {
                    0.0
                } else {
                    counts[e.index()] as f64 / total as f64
                };
                (*e, p)
            })
            .collect()
    }

    fn epoch_steps<'a>(
        &'a self,
        tokenizer: &'a Tokenizer,
        batch_size: usize,
        microbatch: usize,
        max_len: usize,
        mut rng: StdRng,
    ) -> Box<dyn Iterator<Item = Vec<Batch>> + 'a> {
        assert!(batch_size > 0 && microbatch > 0, "zero batch/microbatch");
        // Shuffling a Vec<u32> of the same length consumes the RNG exactly
        // like shuffling the Vec<&Stream> in make_epoch_shards, so both
        // sources see the same permutation for a given epoch RNG.
        let mut order = self.trainable.clone();
        order.shuffle(&mut rng);
        let steps = order.len().div_ceil(batch_size);
        Box::new((0..steps).map(move |si| {
            let step = &order[si * batch_size..((si + 1) * batch_size).min(order.len())];
            let streams: Vec<Stream> = step
                .iter()
                .map(|&i| self.materialize(i, max_len))
                .collect();
            streams
                .chunks(microbatch)
                .map(|shard| {
                    let refs: Vec<&Stream> = shard.iter().collect();
                    build_batch(tokenizer, &refs, max_len)
                })
                .collect()
        }))
    }
}

/// Fits a tokenizer from a `.ctb` trace in one streaming pass, equivalent
/// (bit for bit) to `Tokenizer::fit_with(&dataset.clamp_lengths(2,
/// max_len + 1), scale)` on the decoded dataset: only streams with at
/// least two events contribute, each truncated to `max_len + 1` events,
/// and truncating a stream truncates its interarrival sequence.
pub fn fit_tokenizer_streaming(
    reader: &ColumnarReader,
    max_len: usize,
    scale: ScaleKind,
) -> Tokenizer {
    let mut fit = TokenizerFit::new(scale);
    for view in reader.streams() {
        if view.len() < 2 {
            continue;
        }
        for iat in view.prefix(max_len + 1).interarrivals() {
            fit.observe(iat);
        }
    }
    fit.finish(reader.generation())
}
