//! Multimodal tokenization (Design 1, §4.4).
//!
//! Each control event becomes one token that concatenates three sub-tokens:
//!
//! - **event type** — one-hot over the generation's event vocabulary
//!   (6 for LTE);
//! - **interarrival time** — `ln(x+1)` then linearly scaled to `[0, 1]`
//!   using the dataset's min/max (footnote 3: log scaling makes the
//!   long-tailed interarrival distribution roughly uniform);
//! - **stop flag** — one-hot over {continue, stop}, marking the last token
//!   of a stream (as in NetShare).
//!
//! For LTE the token dimension is 6 + 1 + 2 = 9, exactly the `d_token = 9`
//! in the paper's Figure 3.

use cpt_trace::stats::{log_scale, log_unscale};
use cpt_trace::{Dataset, EventType, Generation, Stream};
use serde::{Deserialize, Serialize};

/// How the interarrival field is mapped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ScaleKind {
    /// The paper's default: `ln(x+1)` then min/max scaling (footnote 3).
    #[default]
    Log,
    /// Plain min/max scaling in seconds — the ablation showing why log
    /// scaling matters for long-tailed interarrivals (Appendix B).
    Linear,
}

impl ScaleKind {
    fn forward(self, x: f64) -> f64 {
        match self {
            ScaleKind::Log => log_scale(x),
            ScaleKind::Linear => x,
        }
    }

    fn inverse(self, y: f64) -> f64 {
        match self {
            ScaleKind::Log => log_unscale(y),
            ScaleKind::Linear => y,
        }
    }
}

/// Incremental tokenizer fit: feed interarrivals one at a time, then
/// [`TokenizerFit::finish`]. Min/max folding is order-independent and
/// exact, so a streaming fit over the same interarrivals produces a
/// tokenizer bit-identical to [`Tokenizer::fit_with`] (which is itself
/// implemented on top of this).
#[derive(Debug, Clone)]
pub struct TokenizerFit {
    scale: ScaleKind,
    log_min: f64,
    log_max: f64,
}

impl TokenizerFit {
    /// Starts an empty fit with the given scaling kind.
    pub fn new(scale: ScaleKind) -> Self {
        TokenizerFit {
            scale,
            log_min: f64::INFINITY,
            log_max: f64::NEG_INFINITY,
        }
    }

    /// Folds one interarrival time (seconds) into the scaling bounds.
    pub fn observe(&mut self, iat: f64) {
        let l = self.scale.forward(iat);
        self.log_min = self.log_min.min(l);
        self.log_max = self.log_max.max(l);
    }

    /// Finalizes the fit. Degenerate inputs (no observations, or all-equal
    /// interarrivals) fall back to a 1-hour span so scaling stays
    /// invertible.
    pub fn finish(self, generation: Generation) -> Tokenizer {
        let (mut log_min, mut log_max) = (self.log_min, self.log_max);
        if !log_min.is_finite() || !log_max.is_finite() || log_max <= log_min {
            log_min = 0.0;
            log_max = self.scale.forward(3600.0);
        }
        Tokenizer {
            generation,
            scale: self.scale,
            log_min,
            log_max,
        }
    }
}

/// Fitted tokenizer: event vocabulary + interarrival scaling bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tokenizer {
    generation: Generation,
    scale: ScaleKind,
    /// Min of the scaled interarrival over the training set.
    log_min: f64,
    /// Max of the scaled interarrival over the training set.
    log_max: f64,
}

/// One decoded sample (the inverse of a token).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Event type.
    pub event_type: EventType,
    /// Interarrival time in seconds.
    pub interarrival: f64,
    /// Whether this is the last sample of the stream.
    pub stop: bool,
}

impl Tokenizer {
    /// Fits scaling bounds on a dataset.
    ///
    /// The first event of each stream has interarrival 0 by convention, so
    /// `log_min` is 0 in practice; `log_max` is the largest observed
    /// `ln(iat+1)`.
    pub fn fit(dataset: &Dataset) -> Self {
        Tokenizer::fit_with(dataset, ScaleKind::Log)
    }

    /// Fits with an explicit scaling kind (the `Linear` variant exists for
    /// the log-scaling ablation).
    pub fn fit_with(dataset: &Dataset, scale: ScaleKind) -> Self {
        let mut fit = TokenizerFit::new(scale);
        for s in &dataset.streams {
            for iat in s.interarrivals() {
                fit.observe(iat);
            }
        }
        fit.finish(dataset.generation)
    }

    /// The generation this tokenizer encodes.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of event types in the vocabulary.
    pub fn num_events(&self) -> usize {
        self.generation.num_event_types()
    }

    /// Total token dimension: one-hot events + scaled interarrival + one-
    /// hot stop flag (9 for LTE).
    pub fn token_dim(&self) -> usize {
        self.num_events() + 1 + 2
    }

    /// Offset of the interarrival slot within a token.
    pub fn iat_slot(&self) -> usize {
        self.num_events()
    }

    /// Offset of the stop-flag one-hot within a token.
    pub fn stop_slot(&self) -> usize {
        self.num_events() + 1
    }

    /// Scales an interarrival (seconds) to `[0, 1]`.
    pub fn scale_iat(&self, iat: f64) -> f32 {
        let l = self.scale.forward(iat.max(0.0));
        (((l - self.log_min) / (self.log_max - self.log_min)).clamp(0.0, 1.0)) as f32
    }

    /// Inverse of [`Tokenizer::scale_iat`]. Input is clamped to `[0, 1]`
    /// (model samples can overshoot).
    pub fn unscale_iat(&self, scaled: f32) -> f64 {
        let l = self.log_min + (scaled as f64).clamp(0.0, 1.0) * (self.log_max - self.log_min);
        self.scale.inverse(l).max(0.0)
    }

    /// Encodes one sample into a token.
    pub fn encode_sample(&self, event: EventType, iat: f64, stop: bool) -> Vec<f32> {
        let mut tok = vec![0.0f32; self.token_dim()];
        self.encode_sample_into(event, iat, stop, &mut tok);
        tok
    }

    /// [`Tokenizer::encode_sample`] into a caller-provided `token_dim`
    /// slice (overwritten entirely). The allocation-free form used by the
    /// generation hot loop, which re-encodes one token per stream per step.
    pub fn encode_sample_into(&self, event: EventType, iat: f64, stop: bool, out: &mut [f32]) {
        assert!(
            event.exists_in(self.generation),
            "{event} does not exist in {}",
            self.generation
        );
        assert_eq!(out.len(), self.token_dim(), "token width");
        out.fill(0.0);
        out[event.index()] = 1.0;
        out[self.iat_slot()] = self.scale_iat(iat);
        out[self.stop_slot() + usize::from(stop)] = 1.0;
    }

    /// Encodes a stream as a flat token matrix (`len × token_dim`). The
    /// first token carries interarrival 0; the last carries stop = 1
    /// (matching the paper's training convention, §4.5).
    pub fn encode_stream(&self, stream: &Stream) -> Vec<f32> {
        let iats = stream.interarrivals();
        let n = stream.len();
        let mut out = Vec::with_capacity(n * self.token_dim());
        for (i, (ev, iat)) in stream.events.iter().zip(&iats).enumerate() {
            out.extend(self.encode_sample(ev.event_type, *iat, i + 1 == n));
        }
        out
    }

    /// Decodes a token back into a sample (argmax for categorical slots).
    pub fn decode_token(&self, token: &[f32]) -> Sample {
        assert_eq!(token.len(), self.token_dim(), "token width");
        let e = self.num_events();
        let (event_idx, _) = token[..e]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("nonempty vocab");
        let stop = token[self.stop_slot() + 1] > token[self.stop_slot()];
        Sample {
            event_type: EventType::from_index(event_idx).expect("valid index"),
            interarrival: self.unscale_iat(token[self.iat_slot()]),
            stop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, UeId};
    use proptest::prelude::*;

    fn toy_dataset() -> Dataset {
        Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            vec![
                Event::new(EventType::ServiceRequest, 0.0),
                Event::new(EventType::ConnectionRelease, 10.0),
                Event::new(EventType::ServiceRequest, 3610.0),
            ],
        )])
    }

    #[test]
    fn token_dim_is_9_for_lte() {
        let t = Tokenizer::fit(&toy_dataset());
        assert_eq!(t.token_dim(), 9);
        assert_eq!(t.iat_slot(), 6);
        assert_eq!(t.stop_slot(), 7);
    }

    #[test]
    fn scaling_hits_bounds() {
        let t = Tokenizer::fit(&toy_dataset());
        // Max observed interarrival (3600 s) scales to 1, zero to 0.
        assert!((t.scale_iat(3600.0) - 1.0).abs() < 1e-6);
        assert!(t.scale_iat(0.0).abs() < 1e-6);
        // Midrange is strictly inside.
        let mid = t.scale_iat(10.0);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn encode_stream_layout() {
        let t = Tokenizer::fit(&toy_dataset());
        let flat = t.encode_stream(&toy_dataset().streams[0]);
        assert_eq!(flat.len(), 3 * 9);
        // First token: SRV_REQ one-hot, iat 0, stop=continue.
        assert_eq!(flat[EventType::ServiceRequest.index()], 1.0);
        assert_eq!(flat[6], 0.0);
        assert_eq!(flat[7], 1.0); // continue
        assert_eq!(flat[8], 0.0);
        // Last token: stop = 1.
        assert_eq!(flat[2 * 9 + 8], 1.0);
        assert_eq!(flat[2 * 9 + 7], 0.0);
    }

    #[test]
    fn decode_roundtrips_event_and_stop() {
        let t = Tokenizer::fit(&toy_dataset());
        for ev in Generation::Lte.event_types() {
            for stop in [false, true] {
                let tok = t.encode_sample(*ev, 25.0, stop);
                let s = t.decode_token(&tok);
                assert_eq!(s.event_type, *ev);
                assert_eq!(s.stop, stop);
                assert!((s.interarrival - 25.0).abs() / 25.0 < 1e-3);
            }
        }
    }

    #[test]
    fn degenerate_dataset_gets_fallback_bounds() {
        let empty = Dataset::new(vec![]);
        let t = Tokenizer::fit(&empty);
        // Still invertible over a sane range.
        let x = t.scale_iat(60.0);
        assert!((t.unscale_iat(x) - 60.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn rejects_tau_in_5g() {
        let mut d = toy_dataset();
        d.generation = Generation::Nr;
        let t = Tokenizer::fit(&d);
        t.encode_sample(EventType::TrackingAreaUpdate, 1.0, false);
    }

    #[test]
    fn linear_scaling_roundtrips_too() {
        let t = Tokenizer::fit_with(&toy_dataset(), ScaleKind::Linear);
        for iat in [0.0, 10.0, 1800.0, 3600.0] {
            let s = t.scale_iat(iat);
            assert!((0.0..=1.0).contains(&s));
            assert!((t.unscale_iat(s) - iat).abs() < 0.5, "iat {iat}");
        }
    }

    proptest! {
        /// scale ∘ unscale is identity on [0,1]; unscale ∘ scale is identity
        /// on in-range interarrivals.
        #[test]
        fn scaling_roundtrip(iat in 0.0f64..3600.0) {
            let t = Tokenizer::fit(&toy_dataset());
            let s = t.scale_iat(iat);
            prop_assert!((0.0..=1.0).contains(&s));
            let back = t.unscale_iat(s);
            prop_assert!((back - iat).abs() < 1e-2 * (1.0 + iat), "{} vs {}", back, iat);
        }

        #[test]
        fn unscale_clamps(out_of_range in -2.0f32..3.0) {
            let t = Tokenizer::fit(&toy_dataset());
            let v = t.unscale_iat(out_of_range);
            prop_assert!(v >= 0.0);
            prop_assert!(v <= 3600.0 + 1.0);
        }
    }
}
