//! Lazily-advanced single-UE decode sessions — the serving primitive.
//!
//! [`CptGpt::generate`] is a batch API: it decodes every stream to
//! completion and returns a [`cpt_trace::Dataset`]. A serving loop needs
//! the opposite shape — thousands of concurrent sessions, each advanced a
//! few tokens at a time by whichever worker gets to it next, with the
//! events streamed out as they are produced. [`SessionDecoder`] is that
//! primitive: one UE session over one [`DecodeState`], pulled one event at
//! a time.
//!
//! A session decodes [`StreamParams::num_streams`] consecutive UE streams.
//! Stream `i` of a session draws from an RNG derived from
//! `(session seed, i)` with the same splitmix64 finalizer as the parallel
//! batch generator's per-chunk RNGs, so a session's entire event sequence
//! is a pure function of `(model, params)` — independent of how many
//! scheduler workers interleave it with other sessions, and independent of
//! whether its [`DecodeState`] was freshly allocated or recycled from a
//! free-list ([`DecodeState::reset`] makes reuse byte-equivalent).
//!
//! Steady-state decoding is allocation-free per event: every buffer lives
//! in the `DecodeState` (or the small fixed-size step token), and
//! [`SessionDecoder::into_state`] hands the buffers back for reuse when
//! the session closes.

#![deny(clippy::unwrap_used)]

use crate::error::GenerateError;
use crate::generate::{
    chunk_rng, sample_categorical, sample_logits, sample_logits_truncated, GenCounters,
    GenerateConfig, Sampling,
};
use crate::model::{CptGpt, DecodeState};
use cpt_nn::Tensor;
use cpt_trace::{DeviceType, EventType};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Configuration for one decode session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamParams {
    /// Session seed. Together with the model this fully determines the
    /// session's output.
    pub seed: u64,
    /// Device type stamped on emitted events' provenance (the model itself
    /// is per-device-type, as in §5.1).
    pub device_type: DeviceType,
    /// Number of consecutive UE streams this session decodes before
    /// finishing.
    pub num_streams: usize,
    /// Softmax temperature for the categorical heads.
    pub temperature: f32,
    /// Event-head sampling strategy.
    pub sampling: Sampling,
    /// Retry budget for non-finite interarrival draws.
    pub max_resample: u32,
    /// Optional per-stream length cap below the model's `max_len`.
    pub max_stream_len: Option<usize>,
}

impl StreamParams {
    /// One phone stream with the paper's default sampling settings.
    pub fn new(seed: u64) -> Self {
        let d = GenerateConfig::new(1, seed);
        StreamParams {
            seed,
            device_type: d.device_type,
            num_streams: 1,
            temperature: d.temperature,
            sampling: d.sampling,
            max_resample: d.max_resample,
            max_stream_len: None,
        }
    }

    /// Builder: number of UE streams the session decodes.
    pub fn streams(mut self, n: usize) -> Self {
        self.num_streams = n;
        self
    }

    /// Builder: device type.
    pub fn device(mut self, device_type: DeviceType) -> Self {
        self.device_type = device_type;
        self
    }

    /// Builder: per-stream length cap.
    pub fn with_max_stream_len(mut self, n: usize) -> Self {
        self.max_stream_len = Some(n);
        self
    }

    /// Validates every field, reusing the batch generator's domain checks.
    pub fn validate(&self) -> Result<(), GenerateError> {
        if self.num_streams == 0 {
            return Err(GenerateError::InvalidConfig {
                field: "num_streams",
                message: "must be at least 1".into(),
            });
        }
        self.as_generate_config().validate()
    }

    /// The equivalent single-stream [`GenerateConfig`] (shared validation
    /// and interarrival-sampling plumbing).
    fn as_generate_config(&self) -> GenerateConfig {
        GenerateConfig {
            num_streams: self.num_streams,
            device_type: self.device_type,
            seed: self.seed,
            temperature: self.temperature,
            batch_size: 1,
            sampling: self.sampling,
            max_resample: self.max_resample,
            max_stream_len: self.max_stream_len,
        }
    }
}

/// One generated event, as streamed out of a [`SessionDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionEvent {
    /// Which UE stream of the session this event belongs to (0-based).
    pub stream: usize,
    /// The control event type.
    pub event_type: EventType,
    /// Seconds since the previous event of this stream (0 for the first).
    pub iat: f64,
    /// Seconds since this stream's start.
    pub timestamp: f64,
    /// True if this is the final event of its stream (the model emitted a
    /// stop flag, or the length cap was hit).
    pub last_in_stream: bool,
}

/// A lazily-advanced decode session over one [`DecodeState`].
///
/// Pull events with [`SessionDecoder::next_event`]; the decoder owns all
/// per-token buffers, so each call performs zero heap allocation. The
/// decoder does not borrow the model — callers pass it to every advance
/// (a serving loop holds the model in an `Arc` shared by all workers) and
/// must pass the *same* model the session was opened with.
pub struct SessionDecoder {
    params: StreamParams,
    max_len: usize,
    state: DecodeState,
    /// Newest token, re-encoded in place each step, `[1, 1, token_dim]`.
    step: Tensor,
    /// Initial-event-type probabilities, hoisted at open.
    init_probs: Vec<f64>,
    rng: StdRng,
    counters: GenCounters,
    /// Current UE stream within the session (0-based).
    stream_idx: usize,
    /// Events emitted for the current stream.
    pos_in_stream: usize,
    /// Running timestamp of the current stream.
    timestamp: f64,
    /// The current stream has ended and the next event (if any) bootstraps
    /// a fresh stream.
    need_bootstrap: bool,
    events_emitted: u64,
    finished: bool,
}

impl CptGpt {
    /// Opens a decode session with freshly allocated buffers.
    pub fn open_session(&self, params: StreamParams) -> Result<SessionDecoder, GenerateError> {
        let state = self.begin_decode(1);
        self.open_session_reusing(params, state)
    }

    /// Opens a decode session reusing `state`'s buffers (free-list path).
    ///
    /// The state is [`DecodeState::reset`] before use, so a recycled state
    /// decodes byte-identically to a fresh one. A state sized for a
    /// different batch or model geometry is silently replaced by a fresh
    /// allocation — reuse is an optimization, never a correctness knob.
    pub fn open_session_reusing(
        &self,
        params: StreamParams,
        mut state: DecodeState,
    ) -> Result<SessionDecoder, GenerateError> {
        params.validate()?;
        if self.initial_event_dist.is_empty() {
            return Err(GenerateError::UntrainedModel);
        }
        if !self.decode_state_fits(&state) {
            state = self.begin_decode(1);
        }
        state.reset();
        let max_len = params
            .max_stream_len
            .map_or(self.config.max_len, |m| m.min(self.config.max_len))
            .max(1);
        Ok(SessionDecoder {
            params,
            max_len,
            state,
            step: Tensor::zeros(&[1, 1, self.tokenizer.token_dim()]),
            init_probs: self.initial_event_dist.iter().map(|(_, p)| *p).collect(),
            rng: chunk_rng(params.seed, 0),
            counters: GenCounters::default(),
            stream_idx: 0,
            pos_in_stream: 0,
            timestamp: 0.0,
            need_bootstrap: true,
            events_emitted: 0,
            finished: false,
        })
    }

    /// Whether a recycled [`DecodeState`] matches this model's single-
    /// stream decode geometry (batch 1 with room for `max_len` positions).
    fn decode_state_fits(&self, state: &DecodeState) -> bool {
        state.batch() == 1 && state.max_len() >= self.config.max_len
    }
}

impl SessionDecoder {
    /// Advances the session by one token and returns the decoded event, or
    /// `None` once all `num_streams` streams have ended. `model` must be
    /// the model this session was opened with.
    pub fn next_event(&mut self, model: &CptGpt) -> Option<SessionEvent> {
        if self.finished {
            return None;
        }
        let cfg = self.params.as_generate_config();
        let d = model.tokenizer.token_dim();

        let (event, iat, stop) = if self.need_bootstrap {
            // First event of a stream: sampled from the released
            // initial-event distribution, interarrival 0 (as in training).
            self.state.reset();
            self.rng = chunk_rng(self.params.seed, self.stream_idx as u64);
            self.timestamp = 0.0;
            self.pos_in_stream = 0;
            self.need_bootstrap = false;
            let i = sample_categorical(&self.init_probs, &mut self.rng);
            (model.initial_event_dist[i].0, 0.0, false)
        } else {
            let e = model.tokenizer.num_events();
            let out = model.decode_step(&mut self.state, &self.step);
            let ev_logits = &out.event_logits.data[..e];
            if ev_logits.iter().any(|l| !l.is_finite()) {
                self.counters.non_finite_logits += 1;
            }
            let ev_idx =
                sample_logits_truncated(ev_logits, cfg.temperature, cfg.sampling, &mut self.rng);
            // The sampler always returns an index below `num_events`, so
            // this lookup cannot fail (same invariant as the batch path).
            let event = EventType::from_index(ev_idx).expect("sampler returns in-range index");
            let scaled =
                model.sample_scaled_iat(out, 0, &cfg, &mut self.rng, &mut self.counters);
            let iat = model.tokenizer.unscale_iat(scaled);
            let stop_logits = &out.stop_logits.data[..2];
            if stop_logits.iter().any(|l| !l.is_finite()) {
                self.counters.non_finite_logits += 1;
            }
            let stop = sample_logits(stop_logits, cfg.temperature, &mut self.rng) == 1;
            (event, iat, stop)
        };

        self.timestamp += iat.max(0.0);
        self.pos_in_stream += 1;
        self.events_emitted += 1;
        model
            .tokenizer
            .encode_sample_into(event, iat, stop, &mut self.step.data[..d]);

        let capped = self.pos_in_stream >= self.max_len;
        let last_in_stream = stop || capped;
        if capped && !stop {
            self.counters.truncated_streams += 1;
        }
        let ev = SessionEvent {
            stream: self.stream_idx,
            event_type: event,
            iat,
            timestamp: self.timestamp,
            last_in_stream,
        };
        if last_in_stream {
            self.stream_idx += 1;
            self.need_bootstrap = true;
            if self.stream_idx >= self.params.num_streams {
                self.finished = true;
            }
        }
        Some(ev)
    }

    /// True once all streams have ended; `next_event` will return `None`.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Guardrail interventions so far.
    pub fn counters(&self) -> &GenCounters {
        &self.counters
    }

    /// Session parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// Events emitted so far across all streams of the session.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Consumes the decoder and hands its [`DecodeState`] back for reuse.
    pub fn into_state(self) -> DecodeState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CptGptConfig, TrainConfig};
    use crate::token::Tokenizer;
    use crate::train::train;
    use cpt_trace::{Dataset, Event, Stream, UeId};

    fn trained_model() -> CptGpt {
        let streams = (0..24)
            .map(|i| {
                let mut t = 0.0;
                let events = (0..8)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        let data = Dataset::new(streams);
        let tok = Tokenizer::fit(&data);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, tok);
        train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(200).with_lr(1e-2),
        )
        .expect("training succeeds");
        model
    }

    fn drain(model: &CptGpt, mut dec: SessionDecoder) -> Vec<SessionEvent> {
        let mut out = Vec::new();
        while let Some(ev) = dec.next_event(model) {
            out.push(ev);
        }
        assert!(dec.is_finished());
        assert!(dec.next_event(model).is_none(), "finished stays finished");
        out
    }

    #[test]
    fn session_emits_well_formed_streams() {
        let model = trained_model();
        let dec = model
            .open_session(StreamParams::new(7).streams(3))
            .expect("open");
        let events = drain(&model, dec);
        assert!(!events.is_empty());
        // Stream indices are 0..3, contiguous, each ending with
        // last_in_stream and restarting the clock.
        assert_eq!(events.last().map(|e| e.stream), Some(2));
        let mut prev_t = 0.0;
        let mut prev_stream = 0;
        for ev in &events {
            if ev.stream != prev_stream {
                assert_eq!(ev.stream, prev_stream + 1);
                prev_stream = ev.stream;
                prev_t = 0.0;
            }
            assert!(ev.timestamp >= prev_t, "timestamps non-decreasing");
            prev_t = ev.timestamp;
        }
        assert_eq!(events.iter().filter(|e| e.last_in_stream).count(), 3);
        // Per-stream lengths respect the model's max_len (12).
        for s in 0..3 {
            let n = events.iter().filter(|e| e.stream == s).count();
            assert!((1..=12).contains(&n));
        }
    }

    #[test]
    fn session_is_deterministic_per_seed() {
        let model = trained_model();
        let a = drain(&model, model.open_session(StreamParams::new(5).streams(2)).expect("open"));
        let b = drain(&model, model.open_session(StreamParams::new(5).streams(2)).expect("open"));
        let c = drain(&model, model.open_session(StreamParams::new(6).streams(2)).expect("open"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn recycled_state_decodes_byte_identically() {
        let model = trained_model();
        let fresh = drain(&model, model.open_session(StreamParams::new(9)).expect("open"));
        // Dirty a state with a different session, then reuse it.
        let warm = model.open_session(StreamParams::new(1234)).expect("open");
        let state = drain_to_state(&model, warm);
        let reused = model
            .open_session_reusing(StreamParams::new(9), state)
            .expect("open reused");
        assert_eq!(fresh, drain(&model, reused));
    }

    fn drain_to_state(model: &CptGpt, mut dec: SessionDecoder) -> DecodeState {
        while dec.next_event(model).is_some() {}
        dec.into_state()
    }

    #[test]
    fn mismatched_state_falls_back_to_fresh_allocation() {
        let model = trained_model();
        let wrong = model.begin_decode(4); // batch 4, not a session state
        let dec = model
            .open_session_reusing(StreamParams::new(3), wrong)
            .expect("open with mismatched state");
        let via_fresh = drain(&model, model.open_session(StreamParams::new(3)).expect("open"));
        assert_eq!(via_fresh, drain(&model, dec));
    }

    #[test]
    fn invalid_params_are_typed_errors() {
        let model = trained_model();
        let Err(err) = model.open_session(StreamParams::new(0).streams(0)) else {
            panic!("0 streams rejected");
        };
        assert!(matches!(
            err,
            GenerateError::InvalidConfig { field: "num_streams", .. }
        ));
        let mut p = StreamParams::new(0);
        p.temperature = f32::NAN;
        assert!(matches!(
            model.open_session(p),
            Err(GenerateError::InvalidConfig { field: "temperature", .. })
        ));
    }

    #[test]
    fn untrained_model_is_typed_error() {
        let data = Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            vec![
                Event::new(EventType::ServiceRequest, 0.0),
                Event::new(EventType::ConnectionRelease, 1.0),
            ],
        )]);
        let tok = Tokenizer::fit(&data);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        };
        let model = CptGpt::new(cfg, tok);
        assert!(matches!(
            model.open_session(StreamParams::new(0)),
            Err(GenerateError::UntrainedModel)
        ));
    }

    #[test]
    fn max_stream_len_caps_each_stream() {
        let model = trained_model();
        let dec = model
            .open_session(StreamParams::new(2).streams(4).with_max_stream_len(3))
            .expect("open");
        let events = drain(&model, dec);
        for s in 0..4 {
            assert!(events.iter().filter(|e| e.stream == s).count() <= 3);
        }
    }
}
