//! Lazily-advanced single-UE decode sessions — the serving primitive.
//!
//! [`CptGpt::generate`] is a batch API: it decodes every stream to
//! completion and returns a [`cpt_trace::Dataset`]. A serving loop needs
//! the opposite shape — thousands of concurrent sessions, each advanced a
//! few tokens at a time by whichever worker gets to it next, with the
//! events streamed out as they are produced. [`SessionDecoder`] is that
//! primitive: one UE session over one [`DecodeState`], pulled one event at
//! a time.
//!
//! A session decodes [`StreamParams::num_streams`] consecutive UE streams.
//! Stream `i` of a session draws from an RNG derived from
//! `(session seed, i)` with the same splitmix64 finalizer as the parallel
//! batch generator's per-chunk RNGs, so a session's entire event sequence
//! is a pure function of `(model, params)` — independent of how many
//! scheduler workers interleave it with other sessions, and independent of
//! whether its [`DecodeState`] was freshly allocated or recycled from a
//! free-list ([`DecodeState::reset`] makes reuse byte-equivalent).
//!
//! Steady-state decoding is allocation-free per event: every buffer lives
//! in the `DecodeState` (or the small fixed-size step token), and
//! [`SessionDecoder::into_state`] hands the buffers back for reuse when
//! the session closes.

#![deny(clippy::unwrap_used)]

use crate::error::GenerateError;
use crate::generate::{
    chunk_rng, sample_categorical, sample_logits, sample_logits_truncated, GenCounters,
    GenerateConfig, Sampling,
};
use crate::model::{BatchDecodeState, CptGpt, DecodeState, InferStep, QuantDecodeWeights};
use cpt_nn::Tensor;
use cpt_trace::{DeviceType, EventType};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configuration for one decode session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamParams {
    /// Session seed. Together with the model this fully determines the
    /// session's output.
    pub seed: u64,
    /// Device type stamped on emitted events' provenance (the model itself
    /// is per-device-type, as in §5.1).
    pub device_type: DeviceType,
    /// Number of consecutive UE streams this session decodes before
    /// finishing.
    pub num_streams: usize,
    /// Softmax temperature for the categorical heads.
    pub temperature: f32,
    /// Event-head sampling strategy.
    pub sampling: Sampling,
    /// Retry budget for non-finite interarrival draws.
    pub max_resample: u32,
    /// Optional per-stream length cap below the model's `max_len`.
    pub max_stream_len: Option<usize>,
}

impl StreamParams {
    /// One phone stream with the paper's default sampling settings.
    pub fn new(seed: u64) -> Self {
        let d = GenerateConfig::new(1, seed);
        StreamParams {
            seed,
            device_type: d.device_type,
            num_streams: 1,
            temperature: d.temperature,
            sampling: d.sampling,
            max_resample: d.max_resample,
            max_stream_len: None,
        }
    }

    /// Builder: number of UE streams the session decodes.
    pub fn streams(mut self, n: usize) -> Self {
        self.num_streams = n;
        self
    }

    /// Builder: device type.
    pub fn device(mut self, device_type: DeviceType) -> Self {
        self.device_type = device_type;
        self
    }

    /// Builder: per-stream length cap.
    pub fn with_max_stream_len(mut self, n: usize) -> Self {
        self.max_stream_len = Some(n);
        self
    }

    /// Validates every field, reusing the batch generator's domain checks.
    pub fn validate(&self) -> Result<(), GenerateError> {
        if self.num_streams == 0 {
            return Err(GenerateError::InvalidConfig {
                field: "num_streams",
                message: "must be at least 1".into(),
            });
        }
        self.as_generate_config().validate()
    }

    /// The equivalent single-stream [`GenerateConfig`] (shared validation
    /// and interarrival-sampling plumbing).
    fn as_generate_config(&self) -> GenerateConfig {
        GenerateConfig {
            num_streams: self.num_streams,
            device_type: self.device_type,
            seed: self.seed,
            temperature: self.temperature,
            batch_size: 1,
            sampling: self.sampling,
            max_resample: self.max_resample,
            max_stream_len: self.max_stream_len,
        }
    }
}

/// One generated event, as streamed out of a [`SessionDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionEvent {
    /// Which UE stream of the session this event belongs to (0-based).
    pub stream: usize,
    /// The control event type.
    pub event_type: EventType,
    /// Seconds since the previous event of this stream (0 for the first).
    pub iat: f64,
    /// Seconds since this stream's start.
    pub timestamp: f64,
    /// True if this is the final event of its stream (the model emitted a
    /// stop flag, or the length cap was hit).
    pub last_in_stream: bool,
}

/// A lazily-advanced decode session over one [`DecodeState`].
///
/// Pull events with [`SessionDecoder::next_event`]; the decoder owns all
/// per-token buffers, so each call performs zero heap allocation. The
/// decoder does not borrow the model — callers pass it to every advance
/// (a serving loop holds the model in an `Arc` shared by all workers) and
/// must pass the *same* model the session was opened with.
pub struct SessionDecoder {
    params: StreamParams,
    max_len: usize,
    state: DecodeState,
    /// Newest token, re-encoded in place each step, `[1, 1, token_dim]`.
    step: Tensor,
    /// Initial-event-type probabilities, hoisted at open.
    init_probs: Vec<f64>,
    rng: StdRng,
    counters: GenCounters,
    /// Current UE stream within the session (0-based).
    stream_idx: usize,
    /// Events emitted for the current stream.
    pos_in_stream: usize,
    /// Running timestamp of the current stream.
    timestamp: f64,
    /// The current stream has ended and the next event (if any) bootstraps
    /// a fresh stream.
    need_bootstrap: bool,
    events_emitted: u64,
    finished: bool,
}

impl CptGpt {
    /// Opens a decode session with freshly allocated buffers.
    pub fn open_session(&self, params: StreamParams) -> Result<SessionDecoder, GenerateError> {
        let state = self.begin_decode(1);
        self.open_session_reusing(params, state)
    }

    /// Opens a decode session reusing `state`'s buffers (free-list path).
    ///
    /// The state is [`DecodeState::reset`] before use, so a recycled state
    /// decodes byte-identically to a fresh one. A state sized for a
    /// different batch or model geometry is silently replaced by a fresh
    /// allocation — reuse is an optimization, never a correctness knob.
    pub fn open_session_reusing(
        &self,
        params: StreamParams,
        mut state: DecodeState,
    ) -> Result<SessionDecoder, GenerateError> {
        params.validate()?;
        if self.initial_event_dist.is_empty() {
            return Err(GenerateError::UntrainedModel);
        }
        if !self.decode_state_fits(&state) {
            state = self.begin_decode(1);
        }
        state.reset();
        let max_len = params
            .max_stream_len
            .map_or(self.config.max_len, |m| m.min(self.config.max_len))
            .max(1);
        Ok(SessionDecoder {
            params,
            max_len,
            state,
            step: Tensor::zeros(&[1, 1, self.tokenizer.token_dim()]),
            init_probs: self.initial_event_dist.iter().map(|(_, p)| *p).collect(),
            rng: chunk_rng(params.seed, 0),
            counters: GenCounters::default(),
            stream_idx: 0,
            pos_in_stream: 0,
            timestamp: 0.0,
            need_bootstrap: true,
            events_emitted: 0,
            finished: false,
        })
    }

    /// Whether a recycled [`DecodeState`] matches this model's single-
    /// stream decode geometry (batch 1 with room for `max_len` positions).
    fn decode_state_fits(&self, state: &DecodeState) -> bool {
        state.batch() == 1 && state.max_len() >= self.config.max_len
    }
}

impl SessionDecoder {
    /// Advances the session by one token and returns the decoded event, or
    /// `None` once all `num_streams` streams have ended. `model` must be
    /// the model this session was opened with.
    pub fn next_event(&mut self, model: &CptGpt) -> Option<SessionEvent> {
        if self.finished {
            return None;
        }
        let cfg = self.params.as_generate_config();
        let (event, iat, stop) = if self.need_bootstrap {
            self.bootstrap_event(model)
        } else {
            let out = model.decode_step(&mut self.state, &self.step);
            sample_row(model, &cfg, out, 0, &mut self.rng, &mut self.counters)
        };
        Some(self.commit_event(model, event, iat, stop))
    }

    /// First event of a stream: resets the decode state, re-derives the
    /// per-stream RNG from `(seed, stream_idx)` and samples from the
    /// released initial-event distribution (interarrival 0, as in
    /// training). Shared verbatim by the sequential and batched paths —
    /// bootstrap involves no forward pass, so a batched round handles it
    /// per session without touching the GEMM.
    fn bootstrap_event(&mut self, model: &CptGpt) -> (EventType, f64, bool) {
        self.state.reset();
        self.rng = chunk_rng(self.params.seed, self.stream_idx as u64);
        self.timestamp = 0.0;
        self.pos_in_stream = 0;
        self.need_bootstrap = false;
        let i = sample_categorical(&self.init_probs, &mut self.rng);
        (model.initial_event_dist[i].0, 0.0, false)
    }

    /// Applies one sampled `(event, iat, stop)` to the session: advances
    /// the clock and counters, re-encodes the step token, and rolls over
    /// to the next stream (or finishes) on `last_in_stream`. The common
    /// tail of the sequential and batched paths; all RNG draws happened
    /// before this, so batching composition cannot affect it.
    fn commit_event(
        &mut self,
        model: &CptGpt,
        event: EventType,
        iat: f64,
        stop: bool,
    ) -> SessionEvent {
        let d = model.tokenizer.token_dim();
        self.timestamp += iat.max(0.0);
        self.pos_in_stream += 1;
        self.events_emitted += 1;
        model
            .tokenizer
            .encode_sample_into(event, iat, stop, &mut self.step.data[..d]);

        let capped = self.pos_in_stream >= self.max_len;
        let last_in_stream = stop || capped;
        if capped && !stop {
            self.counters.truncated_streams += 1;
        }
        let ev = SessionEvent {
            stream: self.stream_idx,
            event_type: event,
            iat,
            timestamp: self.timestamp,
            last_in_stream,
        };
        if last_in_stream {
            self.stream_idx += 1;
            self.need_bootstrap = true;
            if self.stream_idx >= self.params.num_streams {
                self.finished = true;
            }
        }
        ev
    }

    /// True once all streams have ended; `next_event` will return `None`.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Guardrail interventions so far.
    pub fn counters(&self) -> &GenCounters {
        &self.counters
    }

    /// Session parameters.
    pub fn params(&self) -> &StreamParams {
        &self.params
    }

    /// Events emitted so far across all streams of the session.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Consumes the decoder and hands its [`DecodeState`] back for reuse.
    pub fn into_state(self) -> DecodeState {
        self.state
    }
}

/// Samples one `(event, iat, stop)` triple from row `row` of a decoded
/// [`InferStep`], drawing from the session's own RNG.
///
/// This is the *only* sampling code in the session path: the sequential
/// path calls it with `row == 0` on a batch-1 step, the batched path with
/// each session's row of the packed step. Because every draw comes from
/// the per-session RNG in the same order, and the packed GEMM produces
/// bit-identical rows (see `matmul_rows`), batched output is bit-identical
/// to sequential for any batch composition.
fn sample_row(
    model: &CptGpt,
    cfg: &GenerateConfig,
    out: &InferStep,
    row: usize,
    rng: &mut StdRng,
    counters: &mut GenCounters,
) -> (EventType, f64, bool) {
    let e = model.tokenizer.num_events();
    let ev_logits = &out.event_logits.data[row * e..(row + 1) * e];
    if ev_logits.iter().any(|l| !l.is_finite()) {
        counters.non_finite_logits += 1;
    }
    let ev_idx = sample_logits_truncated(ev_logits, cfg.temperature, cfg.sampling, rng);
    // The sampler always returns an index below `num_events`, so this
    // lookup cannot fail (same invariant as the batch path).
    let event = EventType::from_index(ev_idx).expect("sampler returns in-range index");
    let scaled = model.sample_scaled_iat(out, row, cfg, rng, counters);
    let iat = model.tokenizer.unscale_iat(scaled);
    let stop_logits = &out.stop_logits.data[row * 2..row * 2 + 2];
    if stop_logits.iter().any(|l| !l.is_finite()) {
        counters.non_finite_logits += 1;
    }
    let stop = sample_logits(stop_logits, cfg.temperature, rng) == 1;
    (event, iat, stop)
}

/// What happened to one session during a [`BatchDecoder::next_events`]
/// round. `out[i]` describes `sessions[i]`.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// The session advanced by one event.
    Event(SessionEvent),
    /// The session had already finished; nothing was decoded for it.
    Finished,
    /// A panic fired while advancing this session (chaos injection or a
    /// genuine bug). The panic was contained to this entry; the session's
    /// decoder is poisoned and must be dropped, the rest of the batch is
    /// unaffected.
    Panicked(String),
}

/// Cross-session batched decode: advances up to `max_batch` sessions by
/// one event each, stacking their single-token forward passes into one
/// packed `[n_rows × d_model]` GEMM per layer.
///
/// A round has three phases:
///
/// 1. **Stage** (per session, panic-contained): run the caller's
///    `pre_step` hook (the serving engine injects chaos panics here, in
///    the same advance-order slot as the sequential path), emit bootstrap
///    events directly (no forward pass), and gather each remaining
///    session's step token into the packed token matrix.
/// 2. **Decode** (one call): a single [`CptGpt::decode_step_batch`] over
///    the staged rows — per-session KV-cache rows are gathered/scattered
///    inside, each session attending over its own cache at its own
///    position.
/// 3. **Sample** (per session, panic-contained): draw from each staged
///    session's own RNG via [`sample_row`] on its row, then commit.
///
/// Per-row GEMM accumulation is independent of batch composition and all
/// per-session state (RNG, KV cache, clock) is touched in the same order
/// as the sequential path, so output is bit-identical to
/// [`SessionDecoder::next_event`] for any interleaving of batch sizes.
pub struct BatchDecoder {
    bstate: BatchDecodeState,
    /// Packed step tokens, `[max_batch × token_dim]`.
    tokens: Vec<f32>,
    /// Indices into the caller's `sessions` slice staged for the GEMM this
    /// round (ascending).
    staged: Vec<usize>,
    /// Optional int8 per-channel weights; `None` decodes in f32 and is
    /// bit-identical to the sequential path.
    quant: Option<Arc<QuantDecodeWeights>>,
    max_batch: usize,
}

impl BatchDecoder {
    /// A batched decoder for up to `max_batch` concurrent sessions,
    /// decoding with the model's f32 weights (bit-identical to the
    /// sequential path).
    pub fn new(model: &CptGpt, max_batch: usize) -> Self {
        Self::with_quant(model, max_batch, None)
    }

    /// Like [`BatchDecoder::new`], but decoding through pre-quantized int8
    /// weights when `quant` is `Some` (approximate; see DESIGN.md §15).
    pub fn with_quant(
        model: &CptGpt,
        max_batch: usize,
        quant: Option<Arc<QuantDecodeWeights>>,
    ) -> Self {
        BatchDecoder {
            bstate: model.begin_batch_decode(max_batch),
            tokens: vec![0.0; max_batch * model.tokenizer.token_dim()],
            staged: Vec::with_capacity(max_batch),
            quant,
            max_batch,
        }
    }

    /// Maximum number of sessions one round can advance.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Advances each session in `sessions` by one event, writing one
    /// [`RoundOutcome`] per session into `out` (`out[i]` for
    /// `sessions[i]`; `out` is cleared first). Returns the number of rows
    /// that went through the packed GEMM (0 when every session was
    /// finished or bootstrapping) — the serving engine records this as
    /// batch occupancy.
    ///
    /// `pre_step(i, events_emitted)` runs before session `i` is advanced;
    /// a panic from it (or from sampling) is contained to that entry,
    /// which reports [`RoundOutcome::Panicked`] while the rest of the
    /// batch proceeds. A panicked session's decoder is poisoned: drop it.
    pub fn next_events(
        &mut self,
        model: &CptGpt,
        sessions: &mut [&mut SessionDecoder],
        pre_step: &mut dyn FnMut(usize, u64),
        out: &mut Vec<RoundOutcome>,
    ) -> usize {
        assert!(
            sessions.len() <= self.max_batch,
            "batch of {} exceeds max_batch {}",
            sessions.len(),
            self.max_batch
        );
        out.clear();
        self.staged.clear();
        let dtok = model.tokenizer.token_dim();

        // Phase 1: stage. Bootstrap events involve no forward pass, so
        // they are emitted here; everything else gathers its step token.
        for (i, s) in sessions.iter_mut().enumerate() {
            let events = s.events_emitted;
            let staged_row = self.staged.len();
            let tokens = &mut self.tokens[staged_row * dtok..(staged_row + 1) * dtok];
            let res = catch_unwind(AssertUnwindSafe(|| {
                pre_step(i, events);
                if s.finished {
                    return None;
                }
                if s.need_bootstrap {
                    let (event, iat, stop) = s.bootstrap_event(model);
                    return Some(Some(s.commit_event(model, event, iat, stop)));
                }
                tokens.copy_from_slice(&s.step.data[..dtok]);
                Some(None)
            }));
            out.push(match res {
                Ok(None) => RoundOutcome::Finished,
                Ok(Some(Some(ev))) => RoundOutcome::Event(ev),
                Ok(Some(None)) => {
                    self.staged.push(i);
                    // Placeholder; overwritten by phase 3.
                    RoundOutcome::Finished
                }
                Err(payload) => RoundOutcome::Panicked(panic_reason(payload.as_ref())),
            });
        }
        if self.staged.is_empty() {
            return 0;
        }
        let rows = self.staged.len();

        // Phase 2: one packed forward pass over the staged rows. `staged`
        // is ascending, so a single sweep collects the disjoint `&mut`
        // decode states. A panic here is not per-entry containable (the
        // GEMM is shared); the serving engine's outer catch_unwind turns
        // it into whole-slice failure, exactly like a sequential panic.
        let step_out = {
            let mut states: Vec<&mut DecodeState> = Vec::with_capacity(rows);
            let mut want = self.staged.iter().copied().peekable();
            for (i, s) in sessions.iter_mut().enumerate() {
                if want.peek() == Some(&i) {
                    want.next();
                    states.push(&mut s.state);
                }
            }
            let tokens = &self.tokens[..rows * dtok];
            match &self.quant {
                Some(q) => model.decode_step_batch_quant(q, &mut self.bstate, &mut states, tokens),
                None => model.decode_step_batch(&mut self.bstate, &mut states, tokens),
            }
        };

        // Phase 3: per-session sampling from each staged session's own
        // RNG, in batch order (== the order a sequential worker would
        // advance them).
        for (row, &i) in self.staged.iter().enumerate() {
            let s = &mut *sessions[i];
            let res = catch_unwind(AssertUnwindSafe(|| {
                let cfg = s.params.as_generate_config();
                let (event, iat, stop) =
                    sample_row(model, &cfg, step_out, row, &mut s.rng, &mut s.counters);
                s.commit_event(model, event, iat, stop)
            }));
            out[i] = match res {
                Ok(ev) => RoundOutcome::Event(ev),
                Err(payload) => RoundOutcome::Panicked(panic_reason(payload.as_ref())),
            };
        }
        rows
    }
}

/// Human-readable reason from a caught panic payload (mirrors the serving
/// engine's formatting so batched and sequential failures read the same).
fn panic_reason(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("worker panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("worker panic: {s}")
    } else {
        "worker panic: unknown payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CptGptConfig, TrainConfig};
    use crate::token::Tokenizer;
    use crate::train::train;
    use cpt_trace::{Dataset, Event, Stream, UeId};

    fn trained_model() -> CptGpt {
        let streams = (0..24)
            .map(|i| {
                let mut t = 0.0;
                let events = (0..8)
                    .map(|k| {
                        let (et, gap) = if k % 2 == 0 {
                            (EventType::ServiceRequest, 100.0)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        let data = Dataset::new(streams);
        let tok = Tokenizer::fit(&data);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, tok);
        train(
            &mut model,
            &data,
            &TrainConfig::quick().with_epochs(200).with_lr(1e-2),
        )
        .expect("training succeeds");
        model
    }

    fn drain(model: &CptGpt, mut dec: SessionDecoder) -> Vec<SessionEvent> {
        let mut out = Vec::new();
        while let Some(ev) = dec.next_event(model) {
            out.push(ev);
        }
        assert!(dec.is_finished());
        assert!(dec.next_event(model).is_none(), "finished stays finished");
        out
    }

    #[test]
    fn session_emits_well_formed_streams() {
        let model = trained_model();
        let dec = model
            .open_session(StreamParams::new(7).streams(3))
            .expect("open");
        let events = drain(&model, dec);
        assert!(!events.is_empty());
        // Stream indices are 0..3, contiguous, each ending with
        // last_in_stream and restarting the clock.
        assert_eq!(events.last().map(|e| e.stream), Some(2));
        let mut prev_t = 0.0;
        let mut prev_stream = 0;
        for ev in &events {
            if ev.stream != prev_stream {
                assert_eq!(ev.stream, prev_stream + 1);
                prev_stream = ev.stream;
                prev_t = 0.0;
            }
            assert!(ev.timestamp >= prev_t, "timestamps non-decreasing");
            prev_t = ev.timestamp;
        }
        assert_eq!(events.iter().filter(|e| e.last_in_stream).count(), 3);
        // Per-stream lengths respect the model's max_len (12).
        for s in 0..3 {
            let n = events.iter().filter(|e| e.stream == s).count();
            assert!((1..=12).contains(&n));
        }
    }

    #[test]
    fn session_is_deterministic_per_seed() {
        let model = trained_model();
        let a = drain(&model, model.open_session(StreamParams::new(5).streams(2)).expect("open"));
        let b = drain(&model, model.open_session(StreamParams::new(5).streams(2)).expect("open"));
        let c = drain(&model, model.open_session(StreamParams::new(6).streams(2)).expect("open"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn recycled_state_decodes_byte_identically() {
        let model = trained_model();
        let fresh = drain(&model, model.open_session(StreamParams::new(9)).expect("open"));
        // Dirty a state with a different session, then reuse it.
        let warm = model.open_session(StreamParams::new(1234)).expect("open");
        let state = drain_to_state(&model, warm);
        let reused = model
            .open_session_reusing(StreamParams::new(9), state)
            .expect("open reused");
        assert_eq!(fresh, drain(&model, reused));
    }

    fn drain_to_state(model: &CptGpt, mut dec: SessionDecoder) -> DecodeState {
        while dec.next_event(model).is_some() {}
        dec.into_state()
    }

    #[test]
    fn mismatched_state_falls_back_to_fresh_allocation() {
        let model = trained_model();
        let wrong = model.begin_decode(4); // batch 4, not a session state
        let dec = model
            .open_session_reusing(StreamParams::new(3), wrong)
            .expect("open with mismatched state");
        let via_fresh = drain(&model, model.open_session(StreamParams::new(3)).expect("open"));
        assert_eq!(via_fresh, drain(&model, dec));
    }

    #[test]
    fn invalid_params_are_typed_errors() {
        let model = trained_model();
        let Err(err) = model.open_session(StreamParams::new(0).streams(0)) else {
            panic!("0 streams rejected");
        };
        assert!(matches!(
            err,
            GenerateError::InvalidConfig { field: "num_streams", .. }
        ));
        let mut p = StreamParams::new(0);
        p.temperature = f32::NAN;
        assert!(matches!(
            model.open_session(p),
            Err(GenerateError::InvalidConfig { field: "temperature", .. })
        ));
    }

    #[test]
    fn untrained_model_is_typed_error() {
        let data = Dataset::new(vec![Stream::new(
            UeId(0),
            DeviceType::Phone,
            vec![
                Event::new(EventType::ServiceRequest, 0.0),
                Event::new(EventType::ConnectionRelease, 1.0),
            ],
        )]);
        let tok = Tokenizer::fit(&data);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        };
        let model = CptGpt::new(cfg, tok);
        assert!(matches!(
            model.open_session(StreamParams::new(0)),
            Err(GenerateError::UntrainedModel)
        ));
    }

    #[test]
    fn max_stream_len_caps_each_stream() {
        let model = trained_model();
        let dec = model
            .open_session(StreamParams::new(2).streams(4).with_max_stream_len(3))
            .expect("open");
        let events = drain(&model, dec);
        for s in 0..4 {
            assert!(events.iter().filter(|e| e.stream == s).count() <= 3);
        }
    }

    /// Disjoint `&mut` selection at ascending indices (mirrors the
    /// engine's batch gather).
    fn select_mut<'a>(
        decs: &'a mut [SessionDecoder],
        idx: &[usize],
    ) -> Vec<&'a mut SessionDecoder> {
        let mut want = idx.iter().copied().peekable();
        let mut out = Vec::with_capacity(idx.len());
        for (i, d) in decs.iter_mut().enumerate() {
            if want.peek() == Some(&i) {
                want.next();
                out.push(d);
            }
        }
        assert_eq!(out.len(), idx.len());
        out
    }

    /// Drives every session to completion through a [`BatchDecoder`],
    /// `max_batch` sessions per round, returning per-session event logs.
    /// Sessions leave the batch as they finish, so batch composition
    /// shrinks over time (and differs for every `max_batch`).
    fn drain_batched(
        model: &CptGpt,
        decs: &mut [SessionDecoder],
        max_batch: usize,
    ) -> Vec<Vec<SessionEvent>> {
        let mut bd = BatchDecoder::new(model, max_batch);
        let n = decs.len();
        let mut logs: Vec<Vec<SessionEvent>> = vec![Vec::new(); n];
        let mut outcomes = Vec::new();
        loop {
            let live: Vec<usize> = (0..n).filter(|&i| !decs[i].is_finished()).collect();
            if live.is_empty() {
                break;
            }
            for chunk in live.chunks(max_batch) {
                let mut refs = select_mut(decs, chunk);
                bd.next_events(model, &mut refs, &mut |_, _| {}, &mut outcomes);
                assert_eq!(outcomes.len(), chunk.len());
                for (&slot, oc) in chunk.iter().zip(&outcomes) {
                    match oc {
                        RoundOutcome::Event(ev) => logs[slot].push(*ev),
                        RoundOutcome::Finished => {}
                        RoundOutcome::Panicked(r) => panic!("unexpected panic: {r}"),
                    }
                }
            }
        }
        logs
    }

    #[test]
    fn batched_rounds_match_sequential_bitwise() {
        let model = trained_model();
        let params: Vec<StreamParams> = (0..6)
            .map(|i| StreamParams::new(40 + i as u64).streams(1 + (i % 3)))
            .collect();
        let sequential: Vec<Vec<SessionEvent>> = params
            .iter()
            .map(|p| drain(&model, model.open_session(*p).expect("open")))
            .collect();
        // Any batch width — including degenerate width 1 and wider than
        // the session count — reproduces the sequential bits, even as
        // sessions finish at different times and the batch shrinks.
        for max_batch in [1usize, 2, 4, 8] {
            let mut decs: Vec<SessionDecoder> = params
                .iter()
                .map(|p| model.open_session(*p).expect("open"))
                .collect();
            let logs = drain_batched(&model, &mut decs, max_batch);
            assert_eq!(logs, sequential, "max_batch {max_batch}");
        }
    }

    #[test]
    fn sessions_joining_mid_stream_decode_identically() {
        let model = trained_model();
        let params: Vec<StreamParams> =
            (0..4).map(|i| StreamParams::new(70 + i as u64).streams(2)).collect();
        let sequential: Vec<Vec<SessionEvent>> = params
            .iter()
            .map(|p| drain(&model, model.open_session(*p).expect("open")))
            .collect();
        // Stagger arrivals: session i joins the batch at round 2*i, mid
        // way through earlier sessions' streams.
        let mut decs: Vec<SessionDecoder> = params
            .iter()
            .map(|p| model.open_session(*p).expect("open"))
            .collect();
        let mut bd = BatchDecoder::new(&model, 4);
        let mut logs: Vec<Vec<SessionEvent>> = vec![Vec::new(); 4];
        let mut outcomes = Vec::new();
        let mut round = 0usize;
        loop {
            let live: Vec<usize> = (0..4)
                .filter(|&i| round >= 2 * i && !decs[i].is_finished())
                .collect();
            if live.is_empty() && round >= 8 {
                break;
            }
            if !live.is_empty() {
                let mut refs = select_mut(&mut decs, &live);
                bd.next_events(&model, &mut refs, &mut |_, _| {}, &mut outcomes);
                for (&slot, oc) in live.iter().zip(&outcomes) {
                    if let RoundOutcome::Event(ev) = oc {
                        logs[slot].push(*ev);
                    }
                }
            }
            round += 1;
        }
        assert_eq!(logs, sequential);
    }

    #[test]
    fn panic_in_batch_poisons_only_target_entry() {
        let model = trained_model();
        let params: Vec<StreamParams> =
            (0..3).map(|i| StreamParams::new(90 + i as u64).streams(2)).collect();
        let sequential: Vec<Vec<SessionEvent>> = params
            .iter()
            .map(|p| drain(&model, model.open_session(*p).expect("open")))
            .collect();
        let mut decs: Vec<SessionDecoder> = params
            .iter()
            .map(|p| model.open_session(*p).expect("open"))
            .collect();
        let mut bd = BatchDecoder::new(&model, 3);
        let mut logs: Vec<Vec<SessionEvent>> = vec![Vec::new(); 3];
        let mut outcomes = Vec::new();
        let mut poisoned = false;
        loop {
            let live: Vec<usize> = (0..3)
                .filter(|&i| !(decs[i].is_finished() || poisoned && i == 1))
                .collect();
            if live.is_empty() {
                break;
            }
            let mut refs = select_mut(&mut decs, &live);
            // Chaos hook: fail session 1 once it has emitted 2 events,
            // mirroring the engine's should_panic(session, events) check.
            bd.next_events(
                &model,
                &mut refs,
                &mut |slot, events| {
                    if live[slot] == 1 && events >= 2 {
                        panic!("chaos: injected batch panic");
                    }
                },
                &mut outcomes,
            );
            for (&slot, oc) in live.iter().zip(&outcomes) {
                match oc {
                    RoundOutcome::Event(ev) => logs[slot].push(*ev),
                    RoundOutcome::Finished => {}
                    RoundOutcome::Panicked(reason) => {
                        assert_eq!(slot, 1, "only the targeted entry panics");
                        assert!(
                            reason.contains("chaos: injected batch panic"),
                            "reason: {reason}"
                        );
                        poisoned = true;
                    }
                }
            }
        }
        assert!(poisoned, "chaos hook fired");
        // Untargeted sessions are bit-identical to sequential end to end;
        // the poisoned session's prefix (events before the panic) is too.
        assert_eq!(logs[0], sequential[0]);
        assert_eq!(logs[2], sequential[2]);
        assert_eq!(logs[1], sequential[1][..2]);
    }

    #[test]
    fn quantized_batch_decoder_completes_sessions() {
        let model = trained_model();
        let quant = Arc::new(model.quantize_decode_weights());
        let params: Vec<StreamParams> =
            (0..3).map(|i| StreamParams::new(7 + i as u64).streams(2)).collect();
        let mut decs: Vec<SessionDecoder> = params
            .iter()
            .map(|p| model.open_session(*p).expect("open"))
            .collect();
        let mut bd = BatchDecoder::with_quant(&model, 3, Some(quant));
        let mut outcomes = Vec::new();
        let mut logs: Vec<Vec<SessionEvent>> = vec![Vec::new(); 3];
        loop {
            let live: Vec<usize> = (0..3).filter(|&i| !decs[i].is_finished()).collect();
            if live.is_empty() {
                break;
            }
            let mut refs = select_mut(&mut decs, &live);
            bd.next_events(&model, &mut refs, &mut |_, _| {}, &mut outcomes);
            for (&slot, oc) in live.iter().zip(&outcomes) {
                match oc {
                    RoundOutcome::Event(ev) => logs[slot].push(*ev),
                    RoundOutcome::Finished => {}
                    RoundOutcome::Panicked(r) => panic!("unexpected panic: {r}"),
                }
            }
        }
        // Quantized decode makes no bit-identity claim, but streams must
        // still be well formed: 2 completed streams per session, finite
        // non-negative clocks.
        for log in &logs {
            assert_eq!(log.iter().filter(|e| e.last_in_stream).count(), 2);
            assert!(log.iter().all(|e| e.timestamp.is_finite() && e.iat >= 0.0));
        }
    }
}
