//! Transfer learning across hours (Design 3, §4.4).
//!
//! A model trained on one hour is adapted to the next hour's trace by
//! continuing supervised training with a reduced learning rate and fewer
//! epochs, instead of training from scratch. The tokenizer (interarrival
//! scaling bounds) travels with the pretrained weights — rescaling would
//! silently invalidate them — while the initial-event distribution is
//! refit on the new hour.

use crate::config::TrainConfig;
use crate::error::TrainError;
use crate::model::CptGpt;
use crate::train::{train, TrainReport};
use cpt_trace::Dataset;

/// Fine-tuning defaults relative to the base run: the paper's Table 9
/// shows ~2.4× fewer wall-clock minutes per adapted hour than the initial
/// hour (21.81 → 9.06 min), driven by needing far fewer steps to converge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTuneConfig {
    /// Fraction of the base epochs to run (default 0.35).
    pub epoch_fraction: f64,
    /// Learning-rate multiplier (default 0.3).
    pub lr_factor: f32,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epoch_fraction: 0.35,
            lr_factor: 0.3,
        }
    }
}

/// Adapts a pretrained model to `new_data`, returning the fine-tuned model
/// and its training report. The pretrained model is not modified.
pub fn fine_tune(
    pretrained: &CptGpt,
    new_data: &Dataset,
    base_cfg: &TrainConfig,
    ft: &FineTuneConfig,
) -> Result<(CptGpt, TrainReport), TrainError> {
    let mut model = pretrained.clone();
    let epochs = ((base_cfg.epochs as f64 * ft.epoch_fraction).round() as usize).max(1);
    let cfg = TrainConfig {
        epochs,
        lr: base_cfg.lr * ft.lr_factor,
        // Fresh warmup is unnecessary when continuing from a trained model.
        warmup_steps: 0,
        ..*base_cfg
    };
    let report = train(&mut model, new_data, &cfg)?;
    Ok((model, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CptGptConfig;
    use crate::token::Tokenizer;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};

    fn dataset_with_gap(gap: f64, n: usize) -> Dataset {
        let streams = (0..n)
            .map(|i| {
                let mut t = 0.0;
                let events = (0..8)
                    .map(|k| {
                        let (et, g) = if k % 2 == 0 {
                            (EventType::ServiceRequest, gap)
                        } else {
                            (EventType::ConnectionRelease, 10.0)
                        };
                        t += g;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        Dataset::new(streams)
    }

    fn tiny_config() -> CptGptConfig {
        CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 12,
            ..CptGptConfig::small()
        }
    }

    #[test]
    fn fine_tune_is_cheaper_and_adapts() {
        let hour0 = dataset_with_gap(100.0, 24);
        let hour1 = dataset_with_gap(400.0, 24); // drifted interarrivals
        let tok = Tokenizer::fit(&hour0);
        let base_cfg = TrainConfig::quick().with_epochs(8).with_lr(5e-3);
        let mut base = CptGpt::new(tiny_config(), tok);
        let base_report = train(&mut base, &hour0, &base_cfg).expect("base training succeeds");

        let (adapted, ft_report) = fine_tune(&base, &hour1, &base_cfg, &FineTuneConfig::default())
            .expect("fine-tuning succeeds");

        // Fewer epochs than from-scratch training.
        assert!(ft_report.epochs.len() < base_report.epochs.len());
        // The adapted model fits hour-1 better than the base model does:
        // compare losses on an identical hour-1 batch.
        let streams: Vec<&Stream> = hour1.streams.iter().collect();
        let batch = crate::batch::build_batch(&base.tokenizer, &streams, 12);
        let eval = |m: &CptGpt| {
            let mut sess = cpt_nn::Session::new(&m.store);
            let loss = m.loss(&mut sess, &batch);
            sess.graph.value(loss).item()
        };
        assert!(
            eval(&adapted) < eval(&base),
            "fine-tuning did not adapt: {} vs {}",
            eval(&adapted),
            eval(&base)
        );
        // The pretrained model was not mutated.
        let id = base.store.ids()[0];
        assert_ne!(base.store.value(id).data, adapted.store.value(id).data);
        // Tokenizer is shared (scaling bounds preserved).
        assert_eq!(base.tokenizer, adapted.tokenizer);
    }
}
