//! Mini-batch construction: next-token prediction targets with padding
//! masks.

use crate::token::Tokenizer;
use cpt_nn::Tensor;
use cpt_trace::{Dataset, Stream};
use rand::seq::SliceRandom;
use rand::Rng;

/// One training batch for next-token prediction.
///
/// For a stream of `L` tokens the model input is tokens `0..L-1` and the
/// targets at position `t` are the three fields of token `t+1`. Rows are
/// padded to the longest sequence in the batch; `mask` is 0 on padding.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Model input, shape `[batch, seq, token_dim]`.
    pub inputs: Tensor,
    /// Event-type class targets, length `batch·seq`.
    pub event_targets: Vec<usize>,
    /// Scaled interarrival targets, length `batch·seq`.
    pub iat_targets: Vec<f32>,
    /// Stop-flag class targets (0 = continue, 1 = stop), length
    /// `batch·seq`.
    pub stop_targets: Vec<usize>,
    /// 1.0 on real positions, 0.0 on padding, length `batch·seq`.
    pub mask: Vec<f32>,
    /// Batch size.
    pub batch: usize,
    /// Padded sequence length.
    pub seq: usize,
}

impl Batch {
    /// Number of unpadded target positions.
    pub fn real_positions(&self) -> usize {
        self.mask.iter().filter(|m| **m != 0.0).count()
    }
}

/// Builds one batch from a slice of streams (each with `len >= 2`).
pub fn build_batch(tokenizer: &Tokenizer, streams: &[&Stream], max_len: usize) -> Batch {
    assert!(!streams.is_empty(), "empty batch");
    let d = tokenizer.token_dim();
    let lens: Vec<usize> = streams
        .iter()
        .map(|s| s.len().min(max_len + 1).saturating_sub(1))
        .collect();
    let seq = *lens.iter().max().expect("nonempty");
    assert!(seq > 0, "all streams too short to form targets");
    let b = streams.len();

    let mut inputs = Tensor::zeros(&[b, seq, d]);
    let mut event_targets = vec![0usize; b * seq];
    let mut iat_targets = vec![0f32; b * seq];
    let mut stop_targets = vec![0usize; b * seq];
    let mut mask = vec![0f32; b * seq];

    for (bi, stream) in streams.iter().enumerate() {
        // Truncate like the paper: keep the first max_len+1 tokens so the
        // model sees max_len transitions.
        let truncated = stream.truncated(max_len + 1);
        let toks = tokenizer.encode_stream(&truncated);
        let l = truncated.len();
        debug_assert!(l >= 2, "stream of length {l} cannot form targets");
        for t in 0..(l - 1) {
            let src = &toks[t * d..(t + 1) * d];
            let dst = (bi * seq + t) * d;
            inputs.data[dst..dst + d].copy_from_slice(src);
            let next = &toks[(t + 1) * d..(t + 2) * d];
            let flat = bi * seq + t;
            // Event target: index of the one-hot.
            event_targets[flat] = next[..tokenizer.num_events()]
                .iter()
                .position(|x| *x == 1.0)
                .expect("one-hot event");
            iat_targets[flat] = next[tokenizer.iat_slot()];
            stop_targets[flat] = usize::from(next[tokenizer.stop_slot() + 1] == 1.0);
            mask[flat] = 1.0;
        }
    }
    Batch {
        inputs,
        event_targets,
        iat_targets,
        stop_targets,
        mask,
        batch: b,
        seq,
    }
}

/// Shuffles the trainable streams (length ≥ 2, as the paper excludes
/// length-1 streams) and cuts them into batches.
pub fn make_epoch_batches<'d>(
    tokenizer: &Tokenizer,
    dataset: &'d Dataset,
    batch_size: usize,
    max_len: usize,
    rng: &mut impl Rng,
) -> Vec<Batch> {
    let mut streams: Vec<&'d Stream> =
        dataset.streams.iter().filter(|s| s.len() >= 2).collect();
    streams.shuffle(rng);
    streams
        .chunks(batch_size)
        .map(|chunk| build_batch(tokenizer, chunk, max_len))
        .collect()
}

/// Shuffles the trainable streams and cuts them into optimizer steps of
/// `batch_size` streams, each further cut into micro-batch shards of at
/// most `microbatch` streams.
///
/// The outer vector is one entry per optimizer step; the inner vector is
/// that step's shards, in stream order. The shard layout is a pure
/// function of `(batch_size, microbatch)` and the shuffle — it never
/// depends on how many threads later execute the shards — which is what
/// makes data-parallel training bit-identical across thread counts.
/// Consumes the RNG exactly like [`make_epoch_batches`] (one shuffle), so
/// serial and sharded epochs see the same stream order for a given seed.
pub fn make_epoch_shards<'d>(
    tokenizer: &Tokenizer,
    dataset: &'d Dataset,
    batch_size: usize,
    microbatch: usize,
    max_len: usize,
    rng: &mut impl Rng,
) -> Vec<Vec<Batch>> {
    assert!(batch_size > 0 && microbatch > 0, "zero batch/microbatch");
    let mut streams: Vec<&'d Stream> =
        dataset.streams.iter().filter(|s| s.len() >= 2).collect();
    streams.shuffle(rng);
    streams
        .chunks(batch_size)
        .map(|step| {
            step.chunks(microbatch)
                .map(|shard| build_batch(tokenizer, shard, max_len))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, UeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stream(id: u64, times: &[f64]) -> Stream {
        Stream::new(
            UeId(id),
            DeviceType::Phone,
            times
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let et = if i % 2 == 0 {
                        EventType::ServiceRequest
                    } else {
                        EventType::ConnectionRelease
                    };
                    Event::new(et, *t)
                })
                .collect(),
        )
    }

    fn dataset() -> Dataset {
        Dataset::new(vec![
            stream(0, &[0.0, 5.0, 30.0]),
            stream(1, &[0.0, 2.0]),
            stream(2, &[1.0]), // too short: excluded
            stream(3, &[0.0, 1.0, 2.0, 3.0, 4.0]),
        ])
    }

    #[test]
    fn batch_shapes_and_mask() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let streams: Vec<&Stream> = vec![&d.streams[0], &d.streams[1]];
        let b = build_batch(&tok, &streams, 100);
        assert_eq!(b.batch, 2);
        assert_eq!(b.seq, 2); // stream 0 yields 2 targets, stream 1 yields 1
        assert_eq!(b.inputs.shape, vec![2, 2, 9]);
        assert_eq!(b.mask, vec![1.0, 1.0, 1.0, 0.0]);
        assert_eq!(b.real_positions(), 3);
    }

    #[test]
    fn targets_are_next_token_fields() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let streams: Vec<&Stream> = vec![&d.streams[0]];
        let b = build_batch(&tok, &streams, 100);
        // Stream 0: SRV@0, REL@5, SRV@30. Targets: (REL, iat 5, stop 0),
        // (SRV, iat 25, stop 1).
        assert_eq!(b.event_targets[0], EventType::ConnectionRelease.index());
        assert_eq!(b.event_targets[1], EventType::ServiceRequest.index());
        assert_eq!(b.stop_targets, vec![0, 1]);
        assert!((tok.unscale_iat(b.iat_targets[0]) - 5.0).abs() < 0.1);
        assert!((tok.unscale_iat(b.iat_targets[1]) - 25.0).abs() < 0.3);
    }

    #[test]
    fn max_len_truncates() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let streams: Vec<&Stream> = vec![&d.streams[3]]; // 5 events
        let b = build_batch(&tok, &streams, 2);
        assert_eq!(b.seq, 2);
        assert_eq!(b.real_positions(), 2);
    }

    #[test]
    fn epoch_batches_cover_all_trainable_streams() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = make_epoch_batches(&tok, &d, 2, 100, &mut rng);
        // 3 trainable streams → 2 batches (2 + 1).
        assert_eq!(batches.len(), 2);
        let total: usize = batches.iter().map(|b| b.batch).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn epoch_shards_partition_each_step() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let mut rng = StdRng::seed_from_u64(0);
        // 3 trainable streams, batch 2, microbatch 1 → steps [ [1,1], [1] ].
        let steps = make_epoch_shards(&tok, &d, 2, 1, 100, &mut rng);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].len(), 2);
        assert_eq!(steps[1].len(), 1);
        let total: usize = steps.iter().flatten().map(|b| b.batch).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn epoch_shards_match_batches_stream_order() {
        // Same RNG consumption: shards concatenated per step must contain
        // exactly the streams of the corresponding serial batch, in order.
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let batches = make_epoch_batches(&tok, &d, 2, 100, &mut StdRng::seed_from_u64(42));
        let steps = make_epoch_shards(&tok, &d, 2, 1, 100, &mut StdRng::seed_from_u64(42));
        assert_eq!(batches.len(), steps.len());
        for (batch, shards) in batches.iter().zip(&steps) {
            let sharded_rows: usize = shards.iter().map(|s| s.batch).sum();
            assert_eq!(batch.batch, sharded_rows);
            // First row of the first shard equals the batch's first row
            // (up to that row's unpadded length).
            let d_tok = tok.token_dim();
            let row = &shards[0].inputs.data[..shards[0].seq * d_tok];
            let full = &batch.inputs.data[..batch.seq * d_tok];
            assert_eq!(&full[..row.len().min(full.len())], &row[..row.len().min(full.len())]);
        }
    }

    #[test]
    fn epoch_batches_shuffle_deterministically() {
        let d = dataset();
        let tok = Tokenizer::fit(&d);
        let a = make_epoch_batches(&tok, &d, 2, 100, &mut StdRng::seed_from_u64(7));
        let b = make_epoch_batches(&tok, &d, 2, 100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.inputs.data, y.inputs.data);
        }
    }
}
