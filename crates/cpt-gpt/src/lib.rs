//! CPT-GPT: a decoder-only transformer that synthesizes cellular
//! control-plane traffic without domain knowledge — the paper's primary
//! contribution (§4.4–4.5).
//!
//! The model never sees the 3GPP state machines. It is trained end-to-end
//! on raw traces using three design elements:
//!
//! 1. **Multimodal tokenization** ([`token`]): each control event becomes a
//!    9-dimensional token — a 6-wide one-hot event-type sub-token, a
//!    log-scaled interarrival-time sub-token, and a 2-wide one-hot stop
//!    flag. A linear layer replaces the NLP embedding table.
//! 2. **Distribution-parameter output** ([`model`]): the numerical
//!    (interarrival) head predicts a Gaussian's mean and log-σ, trained
//!    with Gaussian NLL; categorical heads use softmax + cross-entropy.
//!    Sampling at inference restores generation stochasticity (ablated in
//!    Table 8).
//! 3. **Transfer learning** ([`transfer`]): hour-to-hour drift is handled
//!    by fine-tuning a pretrained model instead of retraining from
//!    scratch, which is where the transformer's 3.36× training-time win
//!    over the GAN baseline comes from (Table 9).
//!
//! Inference ([`generate`]) bootstraps each stream by sampling the
//! released initial-event-type distribution, then decodes autoregressively
//! until a stop flag fires or the configured maximum length is reached.

pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod faultinject;
pub mod generate;
pub mod model;
pub mod source;
pub mod stream;
pub mod token;
pub mod train;
pub mod transfer;

pub use checkpoint::{
    load_checkpoint, save_checkpoint, CheckpointSpec, RecoveryEvent, TrainCheckpoint,
};
pub use config::{CptGptConfig, TrainConfig, WatchdogConfig};
pub use error::{CheckpointError, FaultKind, GenerateError, TrainError};
pub use faultinject::{FaultPlan, StageFaultPlan};
pub use generate::{GenCounters, GenerateConfig, Sampling};
pub use model::{
    load_model_file, save_model_file, BatchDecodeState, CptGpt, DecodeState, QuantDecodeWeights,
    StepOutput,
};
pub use source::{fit_tokenizer_streaming, ColumnarSource, DatasetSource, ShardSource};
pub use stream::{BatchDecoder, RoundOutcome, SessionDecoder, SessionEvent, StreamParams};
pub use token::{ScaleKind, Tokenizer, TokenizerFit};
pub use batch::{build_batch, make_epoch_batches, make_epoch_shards, Batch};
pub use train::{
    parallel_grad_step, resume_training, resume_training_source, train, train_source,
    train_source_with_checkpoints, train_with_checkpoints, EpochStats, StepOutcome, TrainReport,
};
pub use transfer::fine_tune;
