//! Streaming-train equivalence (DESIGN.md §17): training from an
//! out-of-core `.ctb` columnar trace must be *bit-identical* to training
//! from the same data loaded in RAM — same tokenizer, same initial-event
//! distribution, same per-epoch losses, same final weights.
//!
//! The in-RAM reference is the exact pipeline `cptgen train` uses:
//! `dataset.clamp_lengths(2, max_len + 1)` then fit + train. The streaming
//! side writes the *unclamped* dataset to a `.ctb` file and relies on
//! [`ColumnarSource`]/[`fit_tokenizer_streaming`] to perform the
//! equivalent filtering and truncation on the fly.

use cpt_gpt::config::CptGptConfig;
use cpt_gpt::{
    fit_tokenizer_streaming, train, train_source, ColumnarSource, CptGpt, DatasetSource,
    ScaleKind, ShardSource, Tokenizer, TrainConfig,
};
use cpt_synth::SynthConfig;
use cpt_trace::columnar::{write_ctb, ColumnarReader};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::path::PathBuf;

fn tmp_ctb(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "cpt-streaming-train-{}-{}.ctb",
        std::process::id(),
        name
    ));
    p
}

fn tiny_config() -> CptGptConfig {
    CptGptConfig {
        d_model: 16,
        n_blocks: 1,
        n_heads: 2,
        d_mlp: 32,
        d_head: 16,
        max_len: 12,
        ..CptGptConfig::small()
    }
}

/// A dataset engineered to hit every filtering/truncation edge:
/// single-event streams (dropped by both paths), streams longer than
/// `max_len + 1` (truncated by both paths) whose largest interarrival
/// lies *beyond* the truncation point (must not leak into the tokenizer),
/// and all three device types.
fn edge_dataset() -> Dataset {
    let mut streams = Vec::new();
    let devices = [DeviceType::Phone, DeviceType::ConnectedCar, DeviceType::Tablet];
    for i in 0..40usize {
        let len = match i % 5 {
            0 => 1,  // untrainable: filtered by clamp / source
            1 => 2,  // minimal trainable stream
            2 => 7,
            3 => 20, // longer than max_len + 1 = 13: truncated
            _ => 13, // exactly at the truncation boundary
        };
        let mut t = 0.0;
        let events = (0..len)
            .map(|k| {
                let et = if k % 2 == 0 {
                    EventType::ServiceRequest
                } else {
                    EventType::ConnectionRelease
                };
                // Gaps spread over orders of magnitude; events past the
                // truncation point get a huge gap that must NOT affect
                // the streaming tokenizer fit.
                let gap = if k > 13 {
                    90_000.0 + i as f64
                } else {
                    0.5 + (i * 7 + k * 3) as f64 % 47.0
                };
                t += gap;
                Event::new(et, t)
            })
            .collect();
        streams.push(Stream::new(
            UeId(i as u64),
            devices[i % devices.len()],
            events,
        ));
    }
    Dataset::new(streams)
}

fn assert_models_bit_identical(a: &CptGpt, b: &CptGpt) {
    assert_eq!(a.tokenizer, b.tokenizer);
    assert_eq!(a.initial_event_dist, b.initial_event_dist);
    let ids_a = a.store.ids();
    let ids_b = b.store.ids();
    assert_eq!(ids_a.len(), ids_b.len());
    for (ia, ib) in ids_a.iter().zip(ids_b.iter()) {
        let va = &a.store.value(*ia).data;
        let vb = &b.store.value(*ib).data;
        assert_eq!(va, vb, "parameter tensor differs between sources");
    }
}

#[test]
fn streaming_tokenizer_fit_matches_in_ram() {
    let data = edge_dataset();
    let max_len = tiny_config().max_len;
    let clamped = data.clamp_lengths(2, max_len + 1);

    let path = tmp_ctb("tok");
    write_ctb(&data, &path).expect("write ctb");
    let reader = ColumnarReader::open(&path).expect("open ctb");

    for scale in [ScaleKind::Log, ScaleKind::Linear] {
        let in_ram = Tokenizer::fit_with(&clamped, scale);
        let streamed = fit_tokenizer_streaming(&reader, max_len, scale);
        assert_eq!(in_ram, streamed, "tokenizer fit diverged for {scale:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn columnar_source_matches_dataset_source_metadata() {
    let data = edge_dataset();
    let max_len = tiny_config().max_len;
    let clamped = data.clamp_lengths(2, max_len + 1);

    let path = tmp_ctb("meta");
    write_ctb(&data, &path).expect("write ctb");
    let reader = ColumnarReader::open(&path).expect("open ctb");
    let columnar = ColumnarSource::new(&reader).expect("source over verified ctb");
    let in_ram = DatasetSource::new(&clamped);

    assert_eq!(columnar.num_trainable(), in_ram.num_trainable());
    assert!(columnar.num_trainable() > 0);
    assert_eq!(columnar.generation(), in_ram.generation());
    assert_eq!(
        columnar.initial_event_distribution(),
        in_ram.initial_event_distribution()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_train_weights_are_bit_identical() {
    let data = edge_dataset();
    let max_len = tiny_config().max_len;
    let clamped = data.clamp_lengths(2, max_len + 1);

    let path = tmp_ctb("train");
    write_ctb(&data, &path).expect("write ctb");
    let reader = ColumnarReader::open(&path).expect("open ctb");

    // Multi-step, multi-shard, ragged final step: 32 trainable streams,
    // batch_size 32 would be one step, so shrink via microbatch and epochs
    // to exercise the shard layout thoroughly.
    let cfg = TrainConfig::quick()
        .with_epochs(3)
        .with_microbatch(4)
        .with_seed(42);

    let tok = Tokenizer::fit_with(&clamped, ScaleKind::Log);
    assert_eq!(tok, fit_tokenizer_streaming(&reader, max_len, ScaleKind::Log));

    let mut in_ram = CptGpt::new(tiny_config(), tok.clone());
    let report_ram = train(&mut in_ram, &clamped, &cfg).expect("in-RAM train");

    let source = ColumnarSource::new(&reader).expect("columnar source");
    let mut streamed = CptGpt::new(tiny_config(), tok);
    let report_st = train_source(&mut streamed, &source, &cfg).expect("streaming train");

    assert_eq!(report_ram.epochs.len(), report_st.epochs.len());
    for (a, b) in report_ram.epochs.iter().zip(report_st.epochs.iter()) {
        assert_eq!(
            a.mean_loss, b.mean_loss,
            "per-epoch loss must match bit for bit"
        );
    }
    assert_models_bit_identical(&in_ram, &streamed);
    std::fs::remove_file(&path).ok();
}

#[test]
fn streaming_train_matches_on_synthesized_trace() {
    // End-to-end shape: a real simulator trace (varied lengths, device
    // mix) rather than a hand-built one.
    let data = cpt_synth::generate(&SynthConfig::new(60, 11).hours(0.2));
    let max_len = tiny_config().max_len;
    let clamped = data.clamp_lengths(2, max_len + 1);

    let path = tmp_ctb("synth");
    write_ctb(&data, &path).expect("write ctb");
    let reader = ColumnarReader::open(&path).expect("open ctb");

    let cfg = TrainConfig::quick().with_epochs(2).with_seed(7);
    let tok = fit_tokenizer_streaming(&reader, max_len, ScaleKind::Log);
    assert_eq!(tok, Tokenizer::fit_with(&clamped, ScaleKind::Log));

    let mut in_ram = CptGpt::new(tiny_config(), tok.clone());
    train(&mut in_ram, &clamped, &cfg).expect("in-RAM train");

    let source = ColumnarSource::new(&reader).expect("columnar source");
    let mut streamed = CptGpt::new(tiny_config(), tok);
    train_source(&mut streamed, &source, &cfg).expect("streaming train");

    assert_models_bit_identical(&in_ram, &streamed);
    std::fs::remove_file(&path).ok();
}
