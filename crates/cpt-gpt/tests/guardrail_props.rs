//! Property tests for the generation guardrails: whatever the seed,
//! sampler, temperature, or length cap, synthesized traffic is always
//! numerically sane — finite non-negative interarrivals and bounded
//! stream lengths.

use cpt_gpt::{CptGpt, CptGptConfig, GenerateConfig, Sampling, Tokenizer, TrainConfig};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

/// One tiny trained model shared by every proptest case — training per
/// case would dominate the runtime.
fn trained_model() -> &'static CptGpt {
    static MODEL: OnceLock<CptGpt> = OnceLock::new();
    MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        model
    })
}

fn arb_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Full),
        (1usize..6).prop_map(Sampling::TopK),
        (0.05f32..=1.0).prop_map(Sampling::Nucleus),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interarrivals_are_finite_and_non_negative(
        seed in 0u64..10_000,
        n in 1usize..6,
        sampling in arb_sampling(),
    ) {
        let config = GenerateConfig::new(n, seed).sampling(sampling);
        let (synth, counters) = trained_model()
            .generate_with_report(&config)
            .expect("generation must not fail on a valid config");
        prop_assert_eq!(synth.num_streams(), n);
        for iat in synth.interarrivals() {
            prop_assert!(iat.is_finite(), "non-finite interarrival {iat}");
            prop_assert!(iat >= 0.0, "negative interarrival {iat}");
        }
        // A healthy model needs no numeric interventions.
        prop_assert_eq!(counters.non_finite_logits, 0);
        prop_assert_eq!(counters.clamped_iat, 0);
    }

    #[test]
    fn stream_lengths_respect_the_configured_cap(
        seed in 0u64..10_000,
        cap in 1usize..12,
        sampling in arb_sampling(),
    ) {
        let config = GenerateConfig::new(4, seed)
            .sampling(sampling)
            .with_max_stream_len(cap);
        let (synth, _) = trained_model()
            .generate_with_report(&config)
            .expect("generation must not fail on a valid config");
        for s in &synth.streams {
            prop_assert!(
                s.events.len() <= cap,
                "stream length {} exceeds cap {cap}",
                s.events.len()
            );
        }
    }

    #[test]
    fn timestamps_are_monotone_within_each_stream(
        seed in 0u64..10_000,
        sampling in arb_sampling(),
    ) {
        let config = GenerateConfig::new(3, seed).sampling(sampling);
        let (synth, _) = trained_model()
            .generate_with_report(&config)
            .expect("generation must not fail on a valid config");
        for s in &synth.streams {
            for w in s.events.windows(2) {
                prop_assert!(
                    w[1].timestamp >= w[0].timestamp,
                    "timestamps went backwards: {} -> {}",
                    w[0].timestamp,
                    w[1].timestamp
                );
            }
        }
    }
}
