//! Property tests for data-parallel training: the trained [`ParamStore`],
//! the loss trajectory, and the recovery log must be bit-identical
//! regardless of how many rayon threads execute the micro-batch shards.
//! Shard layout depends only on `(batch_size, microbatch)` and the epoch
//! shuffle, and shard gradients are combined with a fixed-order tree
//! reduction — so 1, 2 and 8 threads must produce the same bits, and a
//! checkpoint written under one thread count must resume bit-identically
//! under another.

use cpt_gpt::{
    CheckpointSpec, CptGpt, CptGptConfig, FaultPlan, TrainConfig, TrainReport, Tokenizer,
};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::path::PathBuf;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn tiny_config() -> CptGptConfig {
    CptGptConfig {
        d_model: 16,
        n_blocks: 1,
        n_heads: 2,
        d_mlp: 32,
        d_head: 16,
        max_len: 16,
        ..CptGptConfig::small()
    }
}

/// Trains a fresh model on a pool pinned to `threads` workers. Pinning a
/// pool wider than the machine is fine — rayon builds the requested
/// worker count regardless of cores, which is exactly the thread-schedule
/// variance the properties must be immune to.
fn train_on(threads: usize, data: &Dataset, cfg: &TrainConfig) -> (CptGpt, TrainReport) {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("cannot build rayon pool")
        .install(|| {
            let mut model = CptGpt::new(tiny_config(), Tokenizer::fit(data));
            let report = cpt_gpt::train(&mut model, data, cfg).expect("training failed");
            (model, report)
        })
}

/// Bitwise equality of every parameter tensor.
fn assert_params_bit_identical(a: &CptGpt, b: &CptGpt, label: &str) {
    let ids_a = a.store.ids();
    let ids_b = b.store.ids();
    assert_eq!(ids_a.len(), ids_b.len(), "{label}: param count differs");
    for (x, y) in ids_a.iter().zip(&ids_b) {
        let va = a.store.value(*x);
        let vb = b.store.value(*y);
        assert_eq!(va.shape, vb.shape, "{label}: shape differs");
        let bits_a: Vec<u32> = va.data.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = vb.data.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "{label}: {} differs", a.store.name(*x));
    }
}

/// Loss trajectories compared bit-for-bit; `seconds` is wall clock and
/// excluded by construction.
fn assert_trajectory_bit_identical(a: &TrainReport, b: &TrainReport, label: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{label}: epoch count");
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(ea.epoch, eb.epoch, "{label}: epoch index");
        assert_eq!(
            ea.mean_loss.to_bits(),
            eb.mean_loss.to_bits(),
            "{label}: mean loss at epoch {}",
            ea.epoch
        );
    }
    assert_eq!(a.recoveries, b.recoveries, "{label}: recovery log");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property for data-parallel training: any thread
    /// count, any microbatch size (including shard counts that don't
    /// divide the batch), same bits out — final weights, loss trajectory
    /// and recovery log alike.
    #[test]
    fn training_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        microbatch in 1usize..5,
        num_streams in 6usize..14,
    ) {
        let data = alternating_dataset(num_streams);
        let cfg = TrainConfig::quick()
            .with_epochs(2)
            .with_seed(seed)
            .with_microbatch(microbatch);
        let (m1, r1) = train_on(1, &data, &cfg);
        prop_assert_eq!(r1.epochs.len(), 2);
        for threads in [2usize, 8] {
            let (mt, rt) = train_on(threads, &data, &cfg);
            assert_params_bit_identical(&m1, &mt, &format!("1 vs {threads} threads"));
            assert_trajectory_bit_identical(&r1, &rt, &format!("1 vs {threads} threads"));
        }
    }
}

/// Per-test scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cpt-pt-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A checkpoint written by a 1-thread run must resume bit-identically
/// under an 8-thread pool: the watchdog/checkpoint state machine carries
/// no thread-count-dependent state.
#[test]
fn one_thread_checkpoint_resumes_bit_identically_on_eight_threads() {
    let scratch = Scratch::new("xthread-resume");
    let data = alternating_dataset(10);
    let cfg = TrainConfig::quick()
        .with_epochs(4)
        .with_microbatch(3)
        .with_seed(11);

    // Reference: straight through on one pool (thread count is irrelevant
    // by the property above; use 2 to keep all three counts in play).
    let (reference, ref_report) = train_on(2, &data, &cfg);

    // Interrupted run: 1 thread up to the simulated crash after epoch 1...
    let ckpt = CheckpointSpec::every_epoch(scratch.0.join("train.ckpt.json"));
    let interrupted_cfg = cfg.with_fault(FaultPlan::interrupt_after(1));
    let first_half = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| {
            let mut model = CptGpt::new(tiny_config(), Tokenizer::fit(&data));
            cpt_gpt::train_with_checkpoints(&mut model, &data, &interrupted_cfg, Some(&ckpt))
                .expect("interrupted run")
        });
    assert!(first_half.interrupted);
    assert_eq!(first_half.epochs.len(), 2);

    // ...then resumed on 8 threads with the clean config.
    let (resumed, resumed_report) = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("pool")
        .install(|| cpt_gpt::resume_training(&data, &cfg, &ckpt).expect("resume"));

    assert_params_bit_identical(&reference, &resumed, "straight-through vs 1t->8t resume");
    assert_trajectory_bit_identical(&ref_report, &resumed_report, "straight-through vs resume");
}

/// A poisoned worker shard must trigger the same typed watchdog recovery
/// at any thread count, and the recovered runs must still agree bit for
/// bit.
#[test]
fn shard_fault_recovery_is_thread_count_invariant() {
    let data = alternating_dataset(10);
    let cfg = TrainConfig::quick()
        .with_epochs(3)
        .with_microbatch(2)
        .with_seed(5)
        .with_fault(FaultPlan::nan_shard_grad_once_at(1, 1));
    let (m1, r1) = train_on(1, &data, &cfg);
    assert_eq!(r1.recoveries.len(), 1, "exactly one recovery expected");
    assert_eq!(
        r1.recoveries[0].cause,
        cpt_gpt::FaultKind::NonFiniteGradient,
        "shard poison must surface as a non-finite gradient"
    );
    assert_eq!(r1.epochs.len(), 3, "run must complete after recovery");
    for threads in [2usize, 8] {
        let (mt, rt) = train_on(threads, &data, &cfg);
        assert_params_bit_identical(&m1, &mt, &format!("faulted 1 vs {threads} threads"));
        assert_trajectory_bit_identical(&r1, &rt, &format!("faulted 1 vs {threads} threads"));
    }
}
