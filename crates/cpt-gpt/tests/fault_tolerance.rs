//! Integration tests for the fault-tolerance stack: the divergence
//! watchdog, checkpoint/resume, and the deterministic fault-injection
//! harness. Every scenario here must end in either a clean recovery or a
//! typed error — never a panic.

use cpt_gpt::faultinject::{corrupt_file_bytes, truncate_file};
use cpt_gpt::{
    load_checkpoint, resume_training, train, train_with_checkpoints, CheckpointError,
    CheckpointSpec, CptGpt, CptGptConfig, FaultKind, FaultPlan, GenerateConfig, Tokenizer,
    TrainConfig, TrainError,
};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::path::PathBuf;

/// Strict SRV_REQ / S1_CONN_REL alternation — the same easy pattern the
/// unit tests train on, so a few epochs converge.
fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let len = 6 + (i % 3) * 2;
            let events = (0..len)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn tiny_config() -> CptGptConfig {
    CptGptConfig {
        d_model: 16,
        n_blocks: 1,
        n_heads: 2,
        d_mlp: 32,
        d_head: 16,
        max_len: 16,
        ..CptGptConfig::small()
    }
}

fn fresh_model(data: &Dataset) -> CptGpt {
    CptGpt::new(tiny_config(), Tokenizer::fit(data))
}

/// Per-test scratch directory, removed on drop so parallel tests never
/// collide.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("cpt-ft-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn params_equal(a: &CptGpt, b: &CptGpt) -> bool {
    let ids_a = a.store.ids();
    let ids_b = b.store.ids();
    ids_a.len() == ids_b.len()
        && ids_a
            .iter()
            .zip(&ids_b)
            .all(|(x, y)| a.store.value(*x).data == b.store.value(*y).data)
}

#[test]
fn transient_nan_is_recovered_and_model_stays_usable() {
    let data = alternating_dataset(12);
    let mut model = fresh_model(&data);
    let cfg = TrainConfig::quick()
        .with_epochs(3)
        .with_fault(FaultPlan::nan_loss_once_at(1));
    let report = train(&mut model, &data, &cfg).expect("watchdog should absorb one NaN");
    assert_eq!(report.epochs.len(), 3);
    assert_eq!(report.recoveries.len(), 1);
    let rec = report.recoveries[0];
    assert_eq!(rec.cause, FaultKind::NonFiniteLoss);
    assert!(rec.lr_scale < 1.0);
    // The recovered model must still generate cleanly.
    let (synth, counters) = model
        .generate_with_report(&GenerateConfig::new(8, 5))
        .expect("recovered model generates");
    assert_eq!(synth.num_streams(), 8);
    assert!(synth.interarrivals().iter().all(|x| x.is_finite() && *x >= 0.0));
    assert_eq!(counters.non_finite_logits, 0);
}

#[test]
fn persistent_nan_exhausts_retries_into_typed_divergence() {
    let data = alternating_dataset(8);
    let mut model = fresh_model(&data);
    let cfg = TrainConfig::quick()
        .with_epochs(2)
        .with_fault(FaultPlan::nan_loss_always_at(0));
    let err = train(&mut model, &data, &cfg).expect_err("unrecoverable fault must surface");
    match err {
        TrainError::Diverged {
            cause,
            retries,
            report,
        } => {
            assert_eq!(cause, FaultKind::NonFiniteLoss);
            assert_eq!(retries, cfg.watchdog.max_retries);
            assert_eq!(report.recoveries.len(), cfg.watchdog.max_retries as usize);
            // Never finished a clean epoch.
            assert!(report.epochs.is_empty());
        }
        other => panic!("expected Diverged, got {other}"),
    }
}

#[test]
fn interrupted_run_resumes_to_bit_identical_result() {
    let data = alternating_dataset(10);
    let scratch = Scratch::new("resume");
    let ckpt = CheckpointSpec::every_epoch(scratch.path("train.ckpt.json"));
    let epochs = 4;

    // Reference: uninterrupted run.
    let mut clean = fresh_model(&data);
    let clean_cfg = TrainConfig::quick().with_epochs(epochs);
    let clean_report = train(&mut clean, &data, &clean_cfg).expect("clean run");

    // Interrupted run: crash (simulated) after epoch 1, then resume.
    let mut partial = fresh_model(&data);
    let faulty_cfg = clean_cfg.with_fault(FaultPlan::interrupt_after(1));
    let partial_report =
        train_with_checkpoints(&mut partial, &data, &faulty_cfg, Some(&ckpt))
            .expect("interrupted run still returns a report");
    assert!(partial_report.interrupted);
    assert_eq!(partial_report.epochs.len(), 2);

    let (resumed, resumed_report) =
        resume_training(&data, &clean_cfg, &ckpt).expect("resume from checkpoint");
    assert!(!resumed_report.interrupted);
    assert_eq!(resumed_report.epochs.len(), epochs);

    // Identical schedule + identical per-epoch RNG ⇒ identical outcome.
    assert_eq!(resumed_report.final_loss(), clean_report.final_loss());
    assert!(params_equal(&resumed, &clean), "resumed weights diverged");
}

#[test]
fn truncated_checkpoint_is_a_typed_corrupt_error() {
    let data = alternating_dataset(8);
    let scratch = Scratch::new("truncate");
    let path = scratch.path("truncated.ckpt.json");
    let ckpt = CheckpointSpec::every_epoch(&path);
    let mut model = fresh_model(&data);
    let cfg = TrainConfig::quick().with_epochs(1);
    train_with_checkpoints(&mut model, &data, &cfg, Some(&ckpt)).expect("train");

    truncate_file(&path, 0.5).expect("truncate");
    match load_checkpoint(&path) {
        Err(CheckpointError::Corrupt { path: p, .. }) => assert_eq!(p, path),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // Resuming from the damaged file is the same typed error, wrapped.
    match resume_training(&data, &cfg, &ckpt) {
        Err(TrainError::Checkpoint(CheckpointError::Corrupt { .. })) => {}
        other => panic!("expected Checkpoint(Corrupt), got {other:?}"),
    }
}

#[test]
fn bit_flipped_checkpoint_is_a_typed_error_never_a_panic() {
    let data = alternating_dataset(8);
    let scratch = Scratch::new("bitflip");
    let path = scratch.path("flipped.ckpt.json");
    let ckpt = CheckpointSpec::every_epoch(&path);
    let mut model = fresh_model(&data);
    let cfg = TrainConfig::quick().with_epochs(1);
    train_with_checkpoints(&mut model, &data, &cfg, Some(&ckpt)).expect("train");

    // Flip ~2% of bytes: enough to guarantee the JSON no longer parses as
    // a valid checkpoint document.
    let len = std::fs::metadata(&path).expect("stat").len() as usize;
    let flipped = corrupt_file_bytes(&path, 0xDEAD_BEEF, (len / 50).max(32)).expect("corrupt");
    assert!(!flipped.is_empty());
    let err = load_checkpoint(&path).expect_err("corrupted checkpoint must not load");
    // Any CheckpointError variant is acceptable; the point is it is typed
    // and carries the offending path.
    let msg = err.to_string();
    assert!(msg.contains("flipped.ckpt.json"), "message was {msg:?}");
}

#[test]
fn missing_checkpoint_is_an_io_error() {
    let data = alternating_dataset(8);
    let scratch = Scratch::new("missing");
    let ckpt = CheckpointSpec::every_epoch(scratch.path("nope.ckpt.json"));
    let cfg = TrainConfig::quick().with_epochs(1);
    match resume_training(&data, &cfg, &ckpt) {
        Err(TrainError::Checkpoint(CheckpointError::Io { .. })) => {}
        other => panic!("expected Checkpoint(Io), got {other:?}"),
    }
}

#[test]
fn nan_poisoned_weights_cannot_crash_generation() {
    let data = alternating_dataset(12);
    let mut model = fresh_model(&data);
    let cfg = TrainConfig::quick().with_epochs(2);
    train(&mut model, &data, &cfg).expect("train");

    // Poison the interarrival head outright: every generated gap would be
    // NaN without the guardrails.
    for id in model.store.ids() {
        if model.store.name(id).starts_with("head_iat") {
            for v in &mut model.store.value_mut(id).data {
                *v = f32::NAN;
            }
        }
    }
    let (synth, counters) = model
        .generate_with_report(&GenerateConfig::new(16, 7))
        .expect("guardrails degrade, not panic");
    assert_eq!(synth.num_streams(), 16);
    assert!(
        synth
            .interarrivals()
            .iter()
            .all(|x| x.is_finite() && *x >= 0.0),
        "guardrails must sanitize every interarrival"
    );
    assert!(
        counters.total_interventions() > 0,
        "poisoned head must be visible in the counters: {counters}"
    );
}
