//! Property tests for parallel generation: the synthesized [`Dataset`] must
//! be bit-identical regardless of how many rayon threads execute the
//! per-chunk fan-out. Each chunk derives its RNG from `(seed, chunk_index)`
//! alone (splitmix64), so the schedule — 1 thread, 2, 8, or work-stealing
//! in any order — cannot leak into the output.

use cpt_gpt::{CptGpt, CptGptConfig, GenerateConfig, Tokenizer, TrainConfig};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::sync::OnceLock;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

/// One tiny trained model shared by every case — training per case would
/// dominate the runtime.
fn trained_model() -> &'static CptGpt {
    static MODEL: OnceLock<CptGpt> = OnceLock::new();
    MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        model
    })
}

/// Generates on a freshly built pool pinned to `threads` workers.
fn generate_on(threads: usize, cfg: &GenerateConfig) -> Dataset {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("cannot build rayon pool")
        .install(|| trained_model().generate(cfg).expect("generation failed"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property for parallel generate(): any thread count,
    /// any stream count (including partial final chunks and stream counts
    /// below/above the batch size), same bits out.
    #[test]
    fn generation_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        num_streams in 1usize..64,
    ) {
        let cfg = GenerateConfig {
            batch_size: 8,
            ..GenerateConfig::new(num_streams, seed)
        };
        let serial = generate_on(1, &cfg);
        prop_assert_eq!(serial.num_streams(), num_streams);
        for threads in [2usize, 8] {
            let parallel = generate_on(threads, &cfg);
            prop_assert_eq!(
                &serial,
                &parallel,
                "output differs between 1 and {} threads",
                threads
            );
        }
    }
}

/// The chunk fan-out assigns UE ids by absolute chunk offset, not arrival
/// order — ids must come back 0..n in order even under work stealing.
#[test]
fn ue_ids_are_dense_and_ordered() {
    let cfg = GenerateConfig {
        batch_size: 4,
        ..GenerateConfig::new(19, 42)
    };
    let out = generate_on(8, &cfg);
    let ids: Vec<u64> = out.streams.iter().map(|s| s.ue_id.0).collect();
    assert_eq!(ids, (0..19).collect::<Vec<u64>>());
}
