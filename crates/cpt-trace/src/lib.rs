//! Data model for cellular control-plane traffic traces.
//!
//! A control-plane traffic dataset (`Dataset`) is a collection of
//! [`Stream`]s, one per UE, where each stream is a timestamped sequence of
//! 3GPP control [`Event`]s (§3.1 of the paper). This crate provides the
//! shared vocabulary for every other crate in the workspace:
//!
//! - [`EventType`] — the 4G and 5G control-plane event types of Table 1;
//! - [`DeviceType`] — phones, connected cars and tablets;
//! - [`Stream`] / [`Dataset`] — the trace containers plus filtering,
//!   splitting and windowing operations;
//! - [`stats`] — empirical CDFs, histograms and summary statistics used by
//!   the fidelity metrics;
//! - [`io`] — JSON-lines (de)serialization of datasets.
//!
//! All timestamps are `f64` seconds from an arbitrary trace epoch;
//! interarrival times are therefore also in seconds, matching the units used
//! throughout the paper's evaluation (e.g. sojourn times of 5–50 s).

pub mod columnar;
pub mod dataset;
pub mod device;
pub mod event;
pub mod io;
pub mod mmap;
pub mod stats;
pub mod stream;

pub use columnar::{ColumnarReader, ColumnarWriter, CtbError, CtbSummary, StreamView};
pub use dataset::{Dataset, DatasetSummary};
pub use device::DeviceType;
pub use event::{EventType, Generation};
pub use stream::{Event, Stream, UeId};
