//! Empirical distributions and summary statistics.
//!
//! The paper's distribution-fidelity metrics (Table 2) are all computed on
//! empirical CDFs: the *max y-distance* between two CDFs (the two-sample
//! Kolmogorov–Smirnov statistic) for sojourn times and flow lengths, and
//! histograms for the appendix's interarrival-time figure. This module
//! provides those primitives plus the usual moments/quantiles.

use serde::{Deserialize, Serialize};

/// An empirical CDF over `f64` samples.
///
/// Stores the sorted sample; evaluation is O(log n). NaN samples are
/// rejected at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples. Panics if any sample is NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "ECDF samples must not contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample values.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// `F(x)` = fraction of samples `<= x`. Returns 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF via the nearest-rank method with linear interpolation
    /// between adjacent order statistics. `q` is clamped to [0, 1]. Panics
    /// on an empty ECDF.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty ECDF");
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Two-sample Kolmogorov–Smirnov statistic: the paper's "maximum
    /// y-distance between the CDFs". Returns 1.0 if exactly one side is
    /// empty and 0.0 if both are.
    pub fn max_y_distance(&self, other: &Ecdf) -> f64 {
        match (self.is_empty(), other.is_empty()) {
            (true, true) => return 0.0,
            (true, false) | (false, true) => return 1.0,
            _ => {}
        }
        // Sweep the merged set of jump points; the supremum of |F1 - F2| is
        // attained at a jump of one of the two step functions.
        let mut d: f64 = 0.0;
        for x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.eval(*x) - other.eval(*x)).abs());
        }
        d
    }

    /// Evaluates the CDF on `n` evenly spaced points spanning both the min
    /// and max of the sample, returning `(x, F(x))` pairs — the series the
    /// figure-generating experiments emit.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("nonempty");
        if n == 1 || hi == lo {
            return vec![(hi, self.eval(hi))];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Fixed-width histogram over `[lo, hi)` with explicit under/overflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let bin =
                ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
            let last = self.counts.len() - 1;
            self.counts[bin.min(last)] += 1;
        }
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Returns `(bin_center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, c)| (self.lo + w * (i as f64 + 0.5), *c))
            .collect()
    }

    /// Returns `(bin_center, fraction)` pairs normalized by the total count.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let total = self.total().max(1) as f64;
        self.bins()
            .into_iter()
            .map(|(x, c)| (x, c as f64 / total))
            .collect()
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// The paper's log scaling for interarrival times: `x' = ln(x + 1)`
/// (footnote 3 / Appendix B). Defined for `x >= 0`.
pub fn log_scale(x: f64) -> f64 {
    (x + 1.0).ln()
}

/// Inverse of [`log_scale`].
pub fn log_unscale(y: f64) -> f64 {
    y.exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ecdf_eval_basic() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn ecdf_quantile_interpolates() {
        let e = Ecdf::new(vec![0.0, 10.0]);
        assert!((e.quantile(0.5) - 5.0).abs() < 1e-12);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(1.0), 10.0);
    }

    #[test]
    fn ks_identical_is_zero() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(e.max_y_distance(&e.clone()), 0.0);
    }

    #[test]
    fn ks_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert!((a.max_y_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // F_a jumps to 1 at 1; F_b is 0.5 at 1 (samples {1, 3}).
        let a = Ecdf::new(vec![1.0, 1.0]);
        let b = Ecdf::new(vec![1.0, 3.0]);
        assert!((a.max_y_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_sides() {
        let a = Ecdf::new(vec![]);
        let b = Ecdf::new(vec![1.0]);
        assert_eq!(a.max_y_distance(&b), 1.0);
        assert_eq!(a.max_y_distance(&a.clone()), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend([0.5, 1.5, 1.7, 9.99, -1.0, 10.0, 100.0]);
        assert_eq!(h.total(), 7);
        let bins = h.bins();
        assert_eq!(bins[0].1, 1);
        assert_eq!(bins[1].1, 2);
        assert_eq!(bins[9].1, 1);
        let norm = h.normalized();
        let s: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!(s <= 1.0 + 1e-12);
    }

    #[test]
    fn moments() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn log_scale_roundtrip(x in 0.0f64..1e9) {
            let y = log_scale(x);
            prop_assert!(y >= 0.0);
            prop_assert!((log_unscale(y) - x).abs() < 1e-6 * (1.0 + x));
        }

        #[test]
        fn ecdf_is_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let e = Ecdf::new(xs.clone());
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in &xs {
                let v = e.eval(*x);
                prop_assert!(v >= prev - 1e-12);
                prev = v;
            }
            prop_assert!((e.eval(xs[xs.len()-1]) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn ks_is_symmetric_and_bounded(
            a in proptest::collection::vec(-100.0f64..100.0, 1..50),
            b in proptest::collection::vec(-100.0f64..100.0, 1..50),
        ) {
            let ea = Ecdf::new(a);
            let eb = Ecdf::new(b);
            let d1 = ea.max_y_distance(&eb);
            let d2 = eb.max_y_distance(&ea);
            prop_assert!((d1 - d2).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&d1));
        }
    }
}
