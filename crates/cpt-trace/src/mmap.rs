//! Read-only memory mapping for the columnar trace reader.
//!
//! The workspace deliberately carries no FFI crates, so on Linux/x86-64 the
//! `mmap`/`munmap` syscalls are issued directly via inline assembly; on every
//! other target the file is read into an owned buffer instead. Either way the
//! consumer sees one immutable `&[u8]` for the whole file, so the columnar
//! reader's zero-copy [`crate::columnar::StreamView`]s work identically on
//! both paths.
//!
//! Safety model (the mapped branch):
//! - the mapping is `PROT_READ` + `MAP_PRIVATE`: nothing can write through
//!   it, and writes by other processes to the file are not observed as
//!   mutation of Rust-visible memory (private COW semantics);
//! - the pointer/length pair is fixed at map time and only ever exposed as a
//!   `&[u8]` borrowed from the `Mmap`, so the borrow checker pins the
//!   mapping's lifetime around every view;
//! - `munmap` runs in `Drop`, after all borrows have ended.
//!
//! The one hazard mmap cannot remove is another process *truncating* the
//! file while it is mapped (accessing pages past the new EOF raises
//! `SIGBUS`). The columnar format's writers only ever publish files by
//! atomic rename and never modify them in place, so mapped `.ctb` files are
//! immutable by construction; see DESIGN.md §17.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// A read-only view of an entire file: memory-mapped on Linux/x86-64,
/// buffered in RAM elsewhere.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped {
        ptr: *const u8,
        len: usize,
        /// Keeps the descriptor open for the mapping's lifetime. Not
        /// strictly required by the kernel (the mapping holds its own
        /// reference) but makes the ownership story explicit.
        _file: File,
    },
    Owned(Vec<u8>),
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// SAFETY: the mapped pointer refers to immutable (PROT_READ, MAP_PRIVATE)
// memory that is never written through and is unmapped only on Drop, so
// sharing and sending views across threads is sound. The Owned variant is a
// plain Vec.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps (or reads) the whole of `path` read-only.
    pub fn open(path: &Path) -> io::Result<Mmap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len_usize == 0 {
            // mmap(…, 0, …) is EINVAL; an empty file has a canonical empty
            // view on both paths.
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            // On mmap failure, fall through to the buffered path (e.g.
            // filesystems that refuse mmap).
            if let Ok(ptr) = linux::mmap_readonly(&file, len_usize) {
                return Ok(Mmap {
                    inner: Inner::Mapped {
                        ptr,
                        len: len_usize,
                        _file: file,
                    },
                });
            }
        }
        let mut buf = Vec::with_capacity(len_usize);
        file.read_to_end(&mut buf)?;
        Ok(Mmap {
            inner: Inner::Owned(buf),
        })
    }

    /// Wraps an owned buffer in the same interface (no kernel mapping).
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        Mmap {
            inner: Inner::Owned(bytes),
        }
    }

    /// The file contents as one contiguous immutable slice.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped { ptr, len, .. } => {
                // SAFETY: ptr/len came from a successful PROT_READ mapping
                // of exactly `len` bytes that lives until Drop; the borrow
                // is tied to &self.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Owned(buf) => buf,
        }
    }

    /// Whether this instance is backed by an actual kernel mapping (false
    /// means the portable read-into-RAM fallback was used).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped { .. } => true,
            Inner::Owned(_) => false,
        }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Inner::Mapped { ptr, len, .. } = &self.inner {
            // SAFETY: exact (addr, len) pair returned by mmap; all slices
            // borrowed from self have ended by the time Drop runs.
            unsafe { linux::munmap(*ptr, *len) };
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod linux {
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 0x1;
    const MAP_PRIVATE: usize = 0x2;

    /// Raw six-argument syscall on x86-64 Linux. Returns the raw kernel
    /// return value (negative errno encoded as -errno in [-4095, -1]).
    ///
    /// # Safety
    /// The caller must uphold the contract of the specific syscall.
    unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
        let ret: isize;
        asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Maps `len` bytes of `file` read-only and private.
    pub fn mmap_readonly(file: &File, len: usize) -> io::Result<*const u8> {
        let fd = file.as_raw_fd();
        // SAFETY: addr=NULL lets the kernel pick the placement; fd is a
        // valid open descriptor; offset 0 is page-aligned.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                fd as usize,
                0,
            )
        };
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as *const u8)
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    /// `(ptr, len)` must be exactly the pair returned by a successful
    /// `mmap_readonly`, and no live references into the region may remain.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join(format!("cpt-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join(format!("cpt-mmap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.bytes().is_empty());
        assert!(!map.is_mapped());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/cpt-mmap-test")).is_err());
    }
}
