//! `.ctb` — the binary columnar trace format.
//!
//! JSON-lines traces (see [`crate::io`]) are reviewable but cap every
//! consumer at in-RAM scale: the paper's real dataset is 73M events across
//! 430k UEs, and parsing that as JSON into a [`Dataset`] is the wall the
//! ROADMAP calls out. `.ctb` is the out-of-core answer: a versioned binary
//! layout with a per-stream index and columnar event blocks, written
//! stream-by-stream and read zero-copy through a memory mapping.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! [ 0 .. 64)            header (fixed 64 bytes)
//! [64 .. index_offset)  column blocks, back to back
//! [index_offset .. )    stream index (32 B / stream), then
//!                       block index (32 B / block) to end of file
//!
//! header:  magic "cpt-ctb\0" | version u32 | generation u8 | pad[3]
//!          num_streams u64 | num_events u64 | index_offset u64
//!          num_blocks u64 | index_checksum u64 | header_checksum u64
//!
//! block:   event-type column (u8 × n_events)
//!          pad to 8-byte alignment
//!          timestamp XOR-delta column (u64 × n_events)
//!
//! stream index entry:  ue_id u64 | event_offset u64 | event_len u32
//!                      | block u32 | device u8 | pad[7]
//! block index entry:   byte_offset u64 | first_event u64 | n_events u32
//!                      | n_streams u32 | checksum u64 (FNV-1a of payload)
//! ```
//!
//! Timestamps are stored as *XOR deltas* (Gorilla-style): each event stores
//! `bits(t[i]) ^ bits(t[i-1])` with `bits(t[-1]) = 0`, so consecutive,
//! slowly-changing timestamps share leading bytes (compressible, cache
//! friendly) while decoding recovers every `f64` **bit-exactly** — an
//! arithmetic `f64` delta would not round-trip. Event types are one byte via
//! [`EventType::index`]. A stream never spans blocks, so a
//! [`StreamView`] is two contiguous sub-slices of one block.
//!
//! Durability follows the registry's torn-write discipline: the writer
//! builds `<name>.tmp`, back-patches the header, fsyncs, then renames into
//! place — a crash can never publish a `.ctb` whose header promises more
//! than the file holds. Every region is covered by an FNV-1a/64 checksum
//! (header, index, each block), and [`ColumnarReader::open`] cross-checks
//! the whole index structurally before handing out a single view, so a
//! truncated or bit-flipped file is rejected with a typed [`CtbError`] and
//! reads can never run past the mapping.

use crate::mmap::Mmap;
use crate::{Dataset, DeviceType, Event, EventType, Generation, Stream, UeId};
use rayon::prelude::*;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes at offset 0 of every `.ctb` file.
pub const MAGIC: [u8; 8] = *b"cpt-ctb\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Bytes per stream-index entry.
pub const STREAM_ENTRY_LEN: usize = 32;
/// Bytes per block-index entry.
pub const BLOCK_ENTRY_LEN: usize = 32;
/// Target events per column block; the writer cuts a block at the first
/// stream boundary at or past this many buffered events (a single stream
/// longer than the target gets one oversized block to itself).
pub const BLOCK_TARGET_EVENTS: usize = 64 * 1024;

/// FNV-1a/64 (same constants as the model registry's artifact checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[inline]
fn align8(n: u64) -> u64 {
    (n + 7) & !7
}

/// Errors raised by the columnar reader/writer. Corrupt input is always a
/// typed error — never a panic, never an out-of-bounds read.
#[derive(Debug)]
pub enum CtbError {
    /// Underlying filesystem error, with the path involved.
    Io {
        /// File being read or written.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// Not a `.ctb` file, or an unsupported version/generation byte.
    BadHeader(String),
    /// The file is shorter than a region the header or index promises.
    Truncated {
        /// Region that did not fit.
        what: &'static str,
        /// Bytes required.
        need: u64,
        /// Bytes present.
        have: u64,
    },
    /// A checksum mismatch in the named region.
    Checksum {
        /// Region that failed verification (`"header"`, `"index"`,
        /// `"block"`).
        what: &'static str,
        /// Block number for block checksums, 0 otherwise.
        index: u64,
    },
    /// Structurally inconsistent index or invalid column data.
    Corrupt(String),
    /// A size field exceeds what this build can address.
    TooLarge(&'static str),
    /// A stream handed to the writer is not representable (e.g. an event
    /// type that does not exist in the file's generation).
    InvalidStream(String),
}

impl std::fmt::Display for CtbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtbError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CtbError::BadHeader(msg) => write!(f, "bad ctb header: {msg}"),
            CtbError::Truncated { what, need, have } => {
                write!(f, "truncated ctb: {what} needs {need} bytes, file has {have}")
            }
            CtbError::Checksum { what, index } => {
                write!(f, "ctb checksum mismatch in {what} {index}")
            }
            CtbError::Corrupt(msg) => write!(f, "corrupt ctb: {msg}"),
            CtbError::TooLarge(what) => write!(f, "ctb {what} exceeds addressable size"),
            CtbError::InvalidStream(msg) => write!(f, "stream not representable: {msg}"),
        }
    }
}

impl std::error::Error for CtbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtbError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> CtbError {
    CtbError::Io {
        path: path.to_owned(),
        source,
    }
}

fn generation_code(g: Generation) -> u8 {
    match g {
        Generation::Lte => 0,
        Generation::Nr => 1,
    }
}

fn generation_from_code(c: u8) -> Option<Generation> {
    match c {
        0 => Some(Generation::Lte),
        1 => Some(Generation::Nr),
        _ => None,
    }
}

/// Summary returned by [`ColumnarWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtbSummary {
    /// Streams written.
    pub streams: u64,
    /// Events written.
    pub events: u64,
    /// Column blocks written.
    pub blocks: u64,
    /// Total file size in bytes.
    pub bytes: u64,
}

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    ue_id: u64,
    event_offset: u64,
    event_len: u32,
    block: u32,
    device: u8,
}

impl StreamEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ue_id.to_le_bytes());
        out.extend_from_slice(&self.event_offset.to_le_bytes());
        out.extend_from_slice(&self.event_len.to_le_bytes());
        out.extend_from_slice(&self.block.to_le_bytes());
        out.push(self.device);
        out.extend_from_slice(&[0u8; 7]);
    }

    fn decode(b: &[u8]) -> StreamEntry {
        StreamEntry {
            ue_id: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            event_offset: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            event_len: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            block: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            device: b[24],
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    byte_offset: u64,
    first_event: u64,
    n_events: u32,
    n_streams: u32,
    checksum: u64,
}

impl BlockEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.byte_offset.to_le_bytes());
        out.extend_from_slice(&self.first_event.to_le_bytes());
        out.extend_from_slice(&self.n_events.to_le_bytes());
        out.extend_from_slice(&self.n_streams.to_le_bytes());
        out.extend_from_slice(&self.checksum.to_le_bytes());
    }

    fn decode(b: &[u8]) -> BlockEntry {
        BlockEntry {
            byte_offset: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            first_event: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            n_events: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            n_streams: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            checksum: u64::from_le_bytes(b[24..32].try_into().unwrap()),
        }
    }

    fn payload_len(&self) -> u64 {
        align8(self.n_events as u64) + 8 * self.n_events as u64
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming `.ctb` writer: push streams one at a time, then [`finish`].
///
/// Nothing but the current column block and the (compact) indexes is held in
/// memory, so paper-scale traces can be written without materializing a
/// [`Dataset`]. The output appears at the destination path only after
/// `finish` completes its fsync-then-rename commit; a writer dropped before
/// `finish` removes its temporary file and leaves any pre-existing
/// destination untouched.
///
/// [`finish`]: ColumnarWriter::finish
pub struct ColumnarWriter {
    file: BufWriter<File>,
    tmp: PathBuf,
    dst: PathBuf,
    generation: Generation,
    /// Bytes of block payload written so far (excludes the header).
    payload_pos: u64,
    types: Vec<u8>,
    deltas: Vec<u8>,
    block_streams: u32,
    blocks: Vec<BlockEntry>,
    index: Vec<StreamEntry>,
    events_total: u64,
    committed: bool,
}

impl ColumnarWriter {
    /// Creates a writer targeting `path`. The file is written to a sibling
    /// `.tmp` path and only renamed into place by [`ColumnarWriter::finish`].
    pub fn create(path: impl AsRef<Path>, generation: Generation) -> Result<Self, CtbError> {
        let dst = path.as_ref().to_owned();
        let mut name = dst
            .file_name()
            .ok_or_else(|| CtbError::InvalidStream(format!("{} has no file name", dst.display())))?
            .to_owned();
        name.push(".tmp");
        let tmp = dst.with_file_name(name);
        let file = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        let mut w = BufWriter::new(file);
        // Placeholder header; back-patched by finish().
        w.write_all(&[0u8; HEADER_LEN])
            .map_err(|e| io_err(&tmp, e))?;
        Ok(ColumnarWriter {
            file: w,
            tmp,
            dst,
            generation,
            payload_pos: 0,
            types: Vec::with_capacity(BLOCK_TARGET_EVENTS),
            deltas: Vec::with_capacity(BLOCK_TARGET_EVENTS * 8),
            block_streams: 0,
            blocks: Vec::new(),
            index: Vec::new(),
            events_total: 0,
            committed: false,
        })
    }

    /// Generation this file encodes.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Appends one stream. Streams are stored in push order.
    pub fn push_stream(&mut self, stream: &Stream) -> Result<(), CtbError> {
        let len = u32::try_from(stream.events.len())
            .map_err(|_| CtbError::TooLarge("stream length"))?;
        if self.index.len() as u64 == u64::MAX {
            return Err(CtbError::TooLarge("stream count"));
        }
        let block = u32::try_from(self.blocks.len()).map_err(|_| CtbError::TooLarge("block count"))?;
        let mut prev_bits = 0u64;
        for ev in &stream.events {
            if !ev.event_type.exists_in(self.generation) {
                return Err(CtbError::InvalidStream(format!(
                    "{}: event type {} does not exist in generation {}",
                    stream.ue_id, ev.event_type, self.generation
                )));
            }
            let bits = ev.timestamp.to_bits();
            self.types.push(ev.event_type.index() as u8);
            self.deltas.extend_from_slice(&(bits ^ prev_bits).to_le_bytes());
            prev_bits = bits;
        }
        self.index.push(StreamEntry {
            ue_id: stream.ue_id.0,
            event_offset: self.events_total,
            event_len: len,
            block,
            device: stream.device_type.index() as u8,
        });
        self.events_total += len as u64;
        self.block_streams += 1;
        if self.types.len() >= BLOCK_TARGET_EVENTS {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), CtbError> {
        let n_events = self.types.len() as u64;
        let pad = (align8(n_events) - n_events) as usize;
        let mut checksum = fnv1a(&self.types);
        checksum = fnv1a_continue(checksum, &[0u8; 8][..pad]);
        checksum = fnv1a_continue(checksum, &self.deltas);
        self.file
            .write_all(&self.types)
            .and_then(|_| self.file.write_all(&[0u8; 8][..pad]))
            .and_then(|_| self.file.write_all(&self.deltas))
            .map_err(|e| io_err(&self.tmp, e))?;
        let first_event = self.events_total - n_events;
        self.blocks.push(BlockEntry {
            byte_offset: HEADER_LEN as u64 + self.payload_pos,
            first_event,
            n_events: n_events as u32,
            n_streams: self.block_streams,
            checksum,
        });
        self.payload_pos += align8(n_events) + 8 * n_events;
        self.types.clear();
        self.deltas.clear();
        self.block_streams = 0;
        Ok(())
    }

    /// Flushes the final block, writes the indexes, back-patches the header,
    /// fsyncs, and atomically renames the file into place.
    pub fn finish(mut self) -> Result<CtbSummary, CtbError> {
        if !self.types.is_empty() || self.block_streams > 0 {
            self.flush_block()?;
        }
        let num_streams = self.index.len() as u64;
        let num_blocks = self.blocks.len() as u64;
        let index_offset = HEADER_LEN as u64 + self.payload_pos;

        let mut index_bytes =
            Vec::with_capacity(self.index.len() * STREAM_ENTRY_LEN + self.blocks.len() * BLOCK_ENTRY_LEN);
        for e in &self.index {
            e.encode(&mut index_bytes);
        }
        for b in &self.blocks {
            b.encode(&mut index_bytes);
        }
        self.file
            .write_all(&index_bytes)
            .map_err(|e| io_err(&self.tmp, e))?;

        let mut header = [0u8; HEADER_LEN];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12] = generation_code(self.generation);
        header[16..24].copy_from_slice(&num_streams.to_le_bytes());
        header[24..32].copy_from_slice(&self.events_total.to_le_bytes());
        header[32..40].copy_from_slice(&index_offset.to_le_bytes());
        header[40..48].copy_from_slice(&num_blocks.to_le_bytes());
        header[48..56].copy_from_slice(&fnv1a(&index_bytes).to_le_bytes());
        let hc = fnv1a(&header[0..56]);
        header[56..64].copy_from_slice(&hc.to_le_bytes());

        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.write_all(&header))
            .and_then(|_| self.file.flush())
            .map_err(|e| io_err(&self.tmp, e))?;
        self.file
            .get_ref()
            .sync_all()
            .map_err(|e| io_err(&self.tmp, e))?;
        std::fs::rename(&self.tmp, &self.dst).map_err(|e| io_err(&self.dst, e))?;
        self.committed = true;
        Ok(CtbSummary {
            streams: num_streams,
            events: self.events_total,
            blocks: num_blocks,
            bytes: index_offset + index_bytes.len() as u64,
        })
    }
}

impl Drop for ColumnarWriter {
    fn drop(&mut self) {
        if !self.committed {
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

/// Continues an FNV-1a/64 hash over more bytes.
fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Writes a whole in-memory [`Dataset`] to `path` as `.ctb`.
pub fn write_ctb(dataset: &Dataset, path: impl AsRef<Path>) -> Result<CtbSummary, CtbError> {
    let mut w = ColumnarWriter::create(path, dataset.generation)?;
    for s in &dataset.streams {
        w.push_stream(s)?;
    }
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Per-stream metadata available without touching the column data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMeta {
    /// The stream's UE id.
    pub ue_id: UeId,
    /// The stream's device type.
    pub device_type: DeviceType,
    /// Number of events in the stream.
    pub len: usize,
}

/// Zero-copy `.ctb` reader over a memory-mapped file.
///
/// [`ColumnarReader::open`] validates the header, both checksummed indexes,
/// and the full structural consistency of every block and stream entry
/// (offsets contiguous, ranges in bounds) before returning, so every
/// subsequent [`StreamView`] is a pure bounds-safe slice of the mapping.
/// Block *payload* checksums are verified by [`ColumnarReader::verify`] and
/// by [`ColumnarReader::to_dataset`]'s parallel decode.
#[derive(Debug)]
pub struct ColumnarReader {
    map: Mmap,
    generation: Generation,
    num_streams: usize,
    num_events: u64,
    index_offset: usize,
    num_blocks: usize,
}

impl ColumnarReader {
    /// Opens and structurally validates a `.ctb` file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CtbError> {
        let path = path.as_ref();
        let map = Mmap::open(path).map_err(|e| io_err(path, e))?;
        Self::from_map(map)
    }

    /// Builds a reader over an in-memory buffer (used by tests and by the
    /// corruption proptests; the validation path is identical to `open`).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, CtbError> {
        Self::from_map(Mmap::from_vec(bytes))
    }

    fn from_map(map: Mmap) -> Result<Self, CtbError> {
        let bytes = map.bytes();
        let file_len = bytes.len() as u64;
        let header: &[u8] = bytes.get(0..HEADER_LEN).ok_or(CtbError::Truncated {
            what: "header",
            need: HEADER_LEN as u64,
            have: file_len,
        })?;
        if header[0..8] != MAGIC {
            return Err(CtbError::BadHeader("magic mismatch (not a .ctb file)".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(CtbError::BadHeader(format!(
                "unsupported version {version} (this build reads {VERSION})"
            )));
        }
        let stored_hc = u64::from_le_bytes(header[56..64].try_into().unwrap());
        if fnv1a(&header[0..56]) != stored_hc {
            return Err(CtbError::Checksum {
                what: "header",
                index: 0,
            });
        }
        let generation = generation_from_code(header[12])
            .ok_or_else(|| CtbError::BadHeader(format!("unknown generation code {}", header[12])))?;
        let num_streams = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let num_events = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let index_offset = u64::from_le_bytes(header[32..40].try_into().unwrap());
        let num_blocks = u64::from_le_bytes(header[40..48].try_into().unwrap());
        let stored_ic = u64::from_le_bytes(header[48..56].try_into().unwrap());

        let index_bytes_len = num_streams
            .checked_mul(STREAM_ENTRY_LEN as u64)
            .and_then(|s| {
                num_blocks
                    .checked_mul(BLOCK_ENTRY_LEN as u64)
                    .and_then(|b| s.checked_add(b))
            })
            .ok_or(CtbError::TooLarge("index"))?;
        if index_offset < HEADER_LEN as u64 {
            return Err(CtbError::Corrupt(format!(
                "index offset {index_offset} overlaps the header"
            )));
        }
        let index_end = index_offset
            .checked_add(index_bytes_len)
            .ok_or(CtbError::TooLarge("index"))?;
        if index_end > file_len {
            return Err(CtbError::Truncated {
                what: "index",
                need: index_end,
                have: file_len,
            });
        }
        if index_end != file_len {
            return Err(CtbError::Corrupt(format!(
                "{} trailing bytes after the index",
                file_len - index_end
            )));
        }
        // usize conversions are safe: everything is <= file_len which fits
        // usize (the map exists).
        let index_offset_us = index_offset as usize;
        let num_streams_us = num_streams as usize;
        let num_blocks_us = num_blocks as usize;
        let index_region = &bytes[index_offset_us..];
        if fnv1a(index_region) != stored_ic {
            return Err(CtbError::Checksum {
                what: "index",
                index: 0,
            });
        }

        let reader = ColumnarReader {
            map,
            generation,
            num_streams: num_streams_us,
            num_events,
            index_offset: index_offset_us,
            num_blocks: num_blocks_us,
        };
        reader.validate_structure()?;
        Ok(reader)
    }

    /// Cross-checks block/stream index consistency so that every later
    /// access is a pure in-bounds slice.
    fn validate_structure(&self) -> Result<(), CtbError> {
        let mut byte_pos = HEADER_LEN as u64;
        let mut event_pos = 0u64;
        for b in 0..self.num_blocks {
            let e = self.block_entry(b);
            if e.byte_offset != byte_pos {
                return Err(CtbError::Corrupt(format!(
                    "block {b} starts at byte {} but previous data ends at {byte_pos}",
                    e.byte_offset
                )));
            }
            if e.first_event != event_pos {
                return Err(CtbError::Corrupt(format!(
                    "block {b} first event {} but running total is {event_pos}",
                    e.first_event
                )));
            }
            byte_pos = byte_pos
                .checked_add(e.payload_len())
                .ok_or(CtbError::TooLarge("block payload"))?;
            event_pos += e.n_events as u64;
        }
        if byte_pos != self.index_offset as u64 {
            return Err(CtbError::Corrupt(format!(
                "block payloads end at byte {byte_pos} but index starts at {}",
                self.index_offset
            )));
        }
        if event_pos != self.num_events {
            return Err(CtbError::Corrupt(format!(
                "blocks hold {event_pos} events but header promises {}",
                self.num_events
            )));
        }

        let mut event_pos = 0u64;
        let mut per_block_streams = vec![0u32; self.num_blocks];
        let mut last_block = 0u32;
        for i in 0..self.num_streams {
            let e = self.stream_entry(i);
            if e.event_offset != event_pos {
                return Err(CtbError::Corrupt(format!(
                    "stream {i} offset {} but running total is {event_pos}",
                    e.event_offset
                )));
            }
            if (e.block as usize) >= self.num_blocks {
                return Err(CtbError::Corrupt(format!(
                    "stream {i} references block {} of {}",
                    e.block, self.num_blocks
                )));
            }
            if e.block < last_block {
                return Err(CtbError::Corrupt(format!(
                    "stream {i} block {} precedes block {last_block}",
                    e.block
                )));
            }
            last_block = e.block;
            let blk = self.block_entry(e.block as usize);
            let end = e.event_offset + e.event_len as u64;
            if e.event_offset < blk.first_event || end > blk.first_event + blk.n_events as u64 {
                return Err(CtbError::Corrupt(format!(
                    "stream {i} events [{}, {end}) outside block {} range",
                    e.event_offset, e.block
                )));
            }
            if DeviceType::from_index(e.device as usize).is_none() {
                return Err(CtbError::Corrupt(format!(
                    "stream {i} has invalid device byte {}",
                    e.device
                )));
            }
            per_block_streams[e.block as usize] += 1;
            event_pos = end;
        }
        if event_pos != self.num_events {
            return Err(CtbError::Corrupt(format!(
                "streams hold {event_pos} events but header promises {}",
                self.num_events
            )));
        }
        for (b, &assigned) in per_block_streams.iter().enumerate() {
            let e = self.block_entry(b);
            if e.n_streams != assigned {
                return Err(CtbError::Corrupt(format!(
                    "block {b} claims {} streams, index assigns {assigned}",
                    e.n_streams
                )));
            }
        }
        Ok(())
    }

    fn stream_entry(&self, i: usize) -> StreamEntry {
        let start = self.index_offset + i * STREAM_ENTRY_LEN;
        StreamEntry::decode(&self.map.bytes()[start..start + STREAM_ENTRY_LEN])
    }

    fn block_entry(&self, b: usize) -> BlockEntry {
        let start = self.index_offset + self.num_streams * STREAM_ENTRY_LEN + b * BLOCK_ENTRY_LEN;
        BlockEntry::decode(&self.map.bytes()[start..start + BLOCK_ENTRY_LEN])
    }

    /// Generation the file encodes.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of streams in the file.
    pub fn num_streams(&self) -> usize {
        self.num_streams
    }

    /// Total number of events in the file.
    pub fn num_events(&self) -> u64 {
        self.num_events
    }

    /// Number of column blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Size of the underlying file in bytes.
    pub fn file_len(&self) -> u64 {
        self.map.bytes().len() as u64
    }

    /// Whether the file is served by an actual kernel memory mapping
    /// (false: the portable read-into-RAM fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Index-only metadata for stream `i` (no column data touched).
    pub fn stream_meta(&self, i: usize) -> Option<StreamMeta> {
        if i >= self.num_streams {
            return None;
        }
        let e = self.stream_entry(i);
        Some(StreamMeta {
            ue_id: UeId(e.ue_id),
            device_type: DeviceType::from_index(e.device as usize).expect("validated at open"),
            len: e.event_len as usize,
        })
    }

    /// Streams per device type, computed from the index alone.
    pub fn device_stream_counts(&self) -> [u64; 3] {
        let mut counts = [0u64; 3];
        for i in 0..self.num_streams {
            counts[self.stream_entry(i).device as usize] += 1;
        }
        counts
    }

    /// Zero-copy view of stream `i`, or `None` if out of range.
    pub fn stream(&self, i: usize) -> Option<StreamView<'_>> {
        if i >= self.num_streams {
            return None;
        }
        let e = self.stream_entry(i);
        let blk = self.block_entry(e.block as usize);
        let rel = (e.event_offset - blk.first_event) as usize;
        let n = e.event_len as usize;
        let base = blk.byte_offset as usize;
        let deltas_base = base + align8(blk.n_events as u64) as usize;
        let bytes = self.map.bytes();
        Some(StreamView {
            ue_id: UeId(e.ue_id),
            device_type: DeviceType::from_index(e.device as usize).expect("validated at open"),
            generation: self.generation,
            types: &bytes[base + rel..base + rel + n],
            deltas: &bytes[deltas_base + 8 * rel..deltas_base + 8 * (rel + n)],
        })
    }

    /// Iterates every stream as a zero-copy [`StreamView`].
    pub fn streams(&self) -> impl Iterator<Item = StreamView<'_>> + '_ {
        (0..self.num_streams).map(move |i| self.stream(i).expect("in range"))
    }

    /// Verifies the payload checksum of block `b` and that every event-type
    /// byte in it is valid for the file's generation.
    pub fn verify_block(&self, b: usize) -> Result<(), CtbError> {
        if b >= self.num_blocks {
            return Err(CtbError::Corrupt(format!("block {b} out of range")));
        }
        let e = self.block_entry(b);
        let start = e.byte_offset as usize;
        let payload = &self.map.bytes()[start..start + e.payload_len() as usize];
        if fnv1a(payload) != e.checksum {
            return Err(CtbError::Checksum {
                what: "block",
                index: b as u64,
            });
        }
        let types = &payload[..e.n_events as usize];
        for (k, &t) in types.iter().enumerate() {
            let valid = EventType::from_index(t as usize)
                .map(|et| et.exists_in(self.generation))
                .unwrap_or(false);
            if !valid {
                return Err(CtbError::Corrupt(format!(
                    "block {b}: invalid event-type byte {t} at event {k}"
                )));
            }
        }
        Ok(())
    }

    /// Verifies every block checksum (rayon-parallel). Structural index
    /// validation already ran at open time.
    pub fn verify(&self) -> Result<(), CtbError> {
        let mut failures: Vec<(usize, CtbError)> = (0..self.num_blocks)
            .into_par_iter()
            .filter_map(|b| self.verify_block(b).err().map(|e| (b, e)))
            .collect();
        failures.sort_by_key(|(b, _)| *b);
        match failures.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Decodes the whole file into an in-memory [`Dataset`], verifying each
    /// block's checksum, with rayon-parallel per-block decode.
    pub fn to_dataset(&self) -> Result<Dataset, CtbError> {
        // Streams are stored grouped by block in index order, so each
        // block's streams form one contiguous index range.
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(self.num_blocks);
        let mut start = 0usize;
        for b in 0..self.num_blocks {
            let n = self.block_entry(b).n_streams as usize;
            ranges.push((start, start + n));
            start += n;
        }
        let chunks: Result<Vec<Vec<Stream>>, CtbError> = ranges
            .into_par_iter()
            .enumerate()
            .map(|(b, (lo, hi))| {
                self.verify_block(b)?;
                (lo..hi)
                    .map(|i| self.stream(i).expect("in range").to_stream())
                    .collect()
            })
            .collect();
        let streams: Vec<Stream> = chunks?.into_iter().flatten().collect();
        Ok(Dataset::with_generation(self.generation, streams))
    }
}

/// Reads a whole `.ctb` file into a [`Dataset`] (checksum-verified,
/// parallel decode).
pub fn read_ctb(path: impl AsRef<Path>) -> Result<Dataset, CtbError> {
    ColumnarReader::open(path)?.to_dataset()
}

/// A zero-copy view of one stream: two sub-slices borrowed straight from
/// the file mapping (event-type bytes and timestamp XOR-deltas).
#[derive(Debug, Clone, Copy)]
pub struct StreamView<'a> {
    ue_id: UeId,
    device_type: DeviceType,
    generation: Generation,
    types: &'a [u8],
    deltas: &'a [u8],
}

impl<'a> StreamView<'a> {
    /// The stream's UE id.
    pub fn ue_id(&self) -> UeId {
        self.ue_id
    }

    /// The stream's device type.
    pub fn device_type(&self) -> DeviceType {
        self.device_type
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Raw event-type column (one [`EventType::index`] byte per event).
    pub fn type_bytes(&self) -> &'a [u8] {
        self.types
    }

    /// A view of the first `n` events only (cheap: shrinks the borrowed
    /// slices). XOR-delta decoding is prefix-closed, so the truncated view
    /// decodes to exactly the first `n` events.
    pub fn prefix(&self, n: usize) -> StreamView<'a> {
        let n = n.min(self.len());
        StreamView {
            types: &self.types[..n],
            deltas: &self.deltas[..8 * n],
            ..*self
        }
    }

    /// Decodes the timestamps (bit-exact; infallible).
    pub fn timestamps(&self) -> impl Iterator<Item = f64> + 'a {
        let mut prev = 0u64;
        self.deltas.chunks_exact(8).map(move |c| {
            let bits = prev ^ u64::from_le_bytes(c.try_into().unwrap());
            prev = bits;
            f64::from_bits(bits)
        })
    }

    /// Interarrival times with the same convention as
    /// [`Stream::interarrivals`]: first event 0, later `(t - prev).max(0)`.
    pub fn interarrivals(&self) -> impl Iterator<Item = f64> + 'a {
        let mut prev: Option<f64> = None;
        self.timestamps().map(move |t| {
            let iat = match prev {
                Some(p) => (t - p).max(0.0),
                None => 0.0,
            };
            prev = Some(t);
            iat
        })
    }

    /// Materializes the stream, validating every event-type byte.
    pub fn to_stream(&self) -> Result<Stream, CtbError> {
        let mut events = Vec::with_capacity(self.len());
        let mut prev = 0u64;
        for (k, (&t, c)) in self.types.iter().zip(self.deltas.chunks_exact(8)).enumerate() {
            let event_type = EventType::from_index(t as usize)
                .filter(|et| et.exists_in(self.generation))
                .ok_or_else(|| {
                    CtbError::Corrupt(format!(
                        "{}: invalid event-type byte {t} at event {k}",
                        self.ue_id
                    ))
                })?;
            let bits = prev ^ u64::from_le_bytes(c.try_into().unwrap());
            prev = bits;
            events.push(Event {
                event_type,
                timestamp: f64::from_bits(bits),
            });
        }
        Ok(Stream {
            ue_id: self.ue_id,
            device_type: self.device_type,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cpt-ctb-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn toy() -> Dataset {
        Dataset::new(vec![
            Stream::new(
                UeId(10),
                DeviceType::Phone,
                vec![
                    Event::new(EventType::Attach, 0.125),
                    Event::new(EventType::ServiceRequest, 3.5),
                    Event::new(EventType::ConnectionRelease, 3.5),
                ],
            ),
            Stream::new(UeId(11), DeviceType::ConnectedCar, vec![]),
            Stream::new(
                UeId(12),
                DeviceType::Tablet,
                vec![Event::new(EventType::TrackingAreaUpdate, 1e-300)],
            ),
        ])
    }

    fn write_bytes(d: &Dataset, tag: &str) -> Vec<u8> {
        let dir = tmpdir(tag);
        let path = dir.join("t.ctb");
        write_ctb(d, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        bytes
    }

    #[test]
    fn roundtrip_bit_exact() {
        let d = toy();
        let dir = tmpdir("rt");
        let path = dir.join("t.ctb");
        let summary = write_ctb(&d, &path).unwrap();
        assert_eq!(summary.streams, 3);
        assert_eq!(summary.events, 4);
        assert_eq!(summary.bytes, std::fs::metadata(&path).unwrap().len());
        let r = ColumnarReader::open(&path).unwrap();
        assert_eq!(r.num_streams(), 3);
        assert_eq!(r.num_events(), 4);
        assert_eq!(r.generation(), Generation::Lte);
        r.verify().unwrap();
        let back = r.to_dataset().unwrap();
        assert_eq!(back, d);
        // Bit-exactness, not just PartialEq.
        for (a, b) in d.streams[0].events.iter().zip(&back.streams[0].events) {
            assert_eq!(a.timestamp.to_bits(), b.timestamp.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_views_and_prefix() {
        let d = toy();
        let r = ColumnarReader::from_bytes(write_bytes(&d, "view")).unwrap();
        let v = r.stream(0).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.ue_id(), UeId(10));
        assert_eq!(v.device_type(), DeviceType::Phone);
        let ts: Vec<f64> = v.timestamps().collect();
        assert_eq!(ts, vec![0.125, 3.5, 3.5]);
        let iats: Vec<f64> = v.interarrivals().collect();
        assert_eq!(iats, d.streams[0].interarrivals());
        let p = v.prefix(2);
        assert_eq!(p.to_stream().unwrap(), d.streams[0].truncated(2));
        assert!(r.stream(1).unwrap().is_empty());
        assert!(r.stream(3).is_none());
        assert_eq!(r.stream_meta(2).unwrap().len, 1);
        assert_eq!(r.device_stream_counts(), [1, 1, 1]);
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let d = Dataset::with_generation(Generation::Nr, vec![]);
        let r = ColumnarReader::from_bytes(write_bytes(&d, "empty")).unwrap();
        assert_eq!(r.num_streams(), 0);
        assert_eq!(r.generation(), Generation::Nr);
        r.verify().unwrap();
        assert_eq!(r.to_dataset().unwrap(), d);
    }

    #[test]
    fn multi_block_file() {
        // Enough events to force several blocks.
        let streams: Vec<Stream> = (0..40)
            .map(|i| {
                let events = (0..5000)
                    .map(|k| Event::new(EventType::ALL[k % 6], (i * 5000 + k) as f64 * 0.25))
                    .collect();
                Stream::new(UeId(i as u64), DeviceType::Phone, events)
            })
            .collect();
        let d = Dataset::new(streams);
        let r = ColumnarReader::from_bytes(write_bytes(&d, "blocks")).unwrap();
        assert!(r.num_blocks() > 1, "expected multiple blocks, got {}", r.num_blocks());
        r.verify().unwrap();
        assert_eq!(r.to_dataset().unwrap(), d);
    }

    #[test]
    fn rejects_nr_file_with_tau() {
        let d = Dataset::with_generation(
            Generation::Nr,
            vec![Stream::new(
                UeId(1),
                DeviceType::Phone,
                vec![Event::new(EventType::TrackingAreaUpdate, 1.0)],
            )],
        );
        let dir = tmpdir("nr-tau");
        let err = write_ctb(&d, dir.join("t.ctb")).unwrap_err();
        assert!(matches!(err, CtbError::InvalidStream(_)), "{err}");
        // The failed writer must not leave the temp file behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_before_finish_publishes_nothing() {
        let d = toy();
        let dir = tmpdir("crash");
        let path = dir.join("t.ctb");
        {
            let mut w = ColumnarWriter::create(&path, d.generation).unwrap();
            w.push_stream(&d.streams[0]).unwrap();
            // Dropped without finish(): simulated crash.
        }
        assert!(!path.exists());
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_typed_error() {
        let bytes = write_bytes(&toy(), "trunc");
        for cut in [0, 7, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            let err = ColumnarReader::from_bytes(bytes[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    CtbError::Truncated { .. } | CtbError::Checksum { .. } | CtbError::Corrupt(_)
                ),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn bitflips_are_typed_errors() {
        let bytes = write_bytes(&toy(), "flip");
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let reader = ColumnarReader::from_bytes(bad);
            let outcome = reader.and_then(|r| {
                r.verify()?;
                r.to_dataset()?;
                Ok(())
            });
            assert!(outcome.is_err(), "bit flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let bytes = write_bytes(&toy(), "magic");
        let mut bad = bytes.clone();
        bad[0..8].copy_from_slice(b"notctb00");
        assert!(matches!(
            ColumnarReader::from_bytes(bad).unwrap_err(),
            CtbError::BadHeader(_)
        ));
        // A version bump with a re-sealed header checksum must still be
        // rejected as unsupported, not as a checksum error.
        let mut bumped = bytes.clone();
        bumped[8..12].copy_from_slice(&2u32.to_le_bytes());
        let hc = fnv1a(&bumped[0..56]);
        bumped[56..64].copy_from_slice(&hc.to_le_bytes());
        assert!(matches!(
            ColumnarReader::from_bytes(bumped).unwrap_err(),
            CtbError::BadHeader(_)
        ));
    }

    #[test]
    fn nan_and_negative_zero_roundtrip() {
        let d = Dataset::new(vec![Stream {
            ue_id: UeId(1),
            device_type: DeviceType::Phone,
            events: vec![
                Event::new(EventType::Attach, -0.0),
                Event::new(EventType::Detach, f64::NAN),
            ],
        }]);
        let r = ColumnarReader::from_bytes(write_bytes(&d, "nan")).unwrap();
        let back = r.to_dataset().unwrap();
        let bits: Vec<u64> = back.streams[0].events.iter().map(|e| e.timestamp.to_bits()).collect();
        assert_eq!(bits[0], (-0.0f64).to_bits());
        assert_eq!(bits[1], f64::NAN.to_bits());
    }
}
