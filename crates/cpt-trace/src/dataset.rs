//! Datasets: collections of streams plus the operations the evaluation
//! pipeline needs (filtering by device type, hourly windowing, sampling,
//! train/test splitting, summary statistics).

use crate::{DeviceType, EventType, Generation, Stream};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A control-plane traffic dataset `D = {S_1, …, S_n}` (§3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    /// Cellular generation the trace was collected on.
    pub generation: Generation,
    /// The per-UE streams.
    pub streams: Vec<Stream>,
}

impl Dataset {
    /// Creates a dataset from streams (LTE generation, like the paper's
    /// trace).
    pub fn new(streams: Vec<Stream>) -> Self {
        Dataset {
            generation: Generation::Lte,
            streams,
        }
    }

    /// Creates a dataset with an explicit generation.
    pub fn with_generation(generation: Generation, streams: Vec<Stream>) -> Self {
        Dataset {
            generation,
            streams,
        }
    }

    /// Number of streams (UEs).
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Total number of events across all streams.
    pub fn num_events(&self) -> usize {
        self.streams.iter().map(Stream::len).sum()
    }

    /// Streams belonging to one device type.
    pub fn filter_device(&self, device: DeviceType) -> Dataset {
        Dataset {
            generation: self.generation,
            streams: self
                .streams
                .iter()
                .filter(|s| s.device_type == device)
                .cloned()
                .collect(),
        }
    }

    /// Cuts the trace into one-hour windows (§5.1: "the 24-hour-long traces
    /// are divided into 24 traces of one hour in length each"). Empty
    /// per-hour streams are dropped.
    pub fn hourly_windows(&self, hours: usize) -> Vec<Dataset> {
        (0..hours)
            .map(|h| self.window(h as f64 * 3600.0, (h as f64 + 1.0) * 3600.0))
            .collect()
    }

    /// Sub-dataset containing, for each stream, the events inside
    /// `[start, end)` seconds, re-based to the window start. Streams that
    /// become empty are dropped.
    pub fn window(&self, start: f64, end: f64) -> Dataset {
        Dataset {
            generation: self.generation,
            streams: self
                .streams
                .iter()
                .map(|s| s.window(start, end))
                .filter(|s| !s.is_empty())
                .collect(),
        }
    }

    /// Truncates every stream to at most `max_len` events and drops streams
    /// shorter than `min_len` (the paper trains with max length 500 and
    /// excludes length-1 streams, §4.5/§5.1).
    pub fn clamp_lengths(&self, min_len: usize, max_len: usize) -> Dataset {
        Dataset {
            generation: self.generation,
            streams: self
                .streams
                .iter()
                .map(|s| s.truncated(max_len))
                .filter(|s| s.len() >= min_len)
                .collect(),
        }
    }

    /// Deterministically samples `n` streams without replacement (or all of
    /// them if `n >= num_streams`). Used by the scalability study (Fig 6)
    /// to compare against equal-size real subsets.
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.streams.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        idx.sort_unstable();
        Dataset {
            generation: self.generation,
            streams: idx.into_iter().map(|i| self.streams[i].clone()).collect(),
        }
    }

    /// Deterministic train/test split by stream, with `train_fraction` of
    /// streams going to the first returned dataset.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1]"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.streams.len()).collect();
        idx.shuffle(&mut rng);
        let n_train = (self.streams.len() as f64 * train_fraction).round() as usize;
        let (train_idx, test_idx) = idx.split_at(n_train.min(idx.len()));
        let pick = |ids: &[usize]| {
            let mut ids = ids.to_vec();
            ids.sort_unstable();
            Dataset {
                generation: self.generation,
                streams: ids.into_iter().map(|i| self.streams[i].clone()).collect(),
            }
        };
        (pick(train_idx), pick(test_idx))
    }

    /// Fraction of each event type among all events (the "event type
    /// breakdown" metric of Table 2). Types absent from the trace get 0.
    pub fn event_breakdown(&self) -> BTreeMap<EventType, f64> {
        let mut counts: BTreeMap<EventType, usize> =
            EventType::ALL.iter().map(|e| (*e, 0)).collect();
        let mut total = 0usize;
        for s in &self.streams {
            for e in &s.events {
                *counts.entry(e.event_type).or_insert(0) += 1;
                total += 1;
            }
        }
        counts
            .into_iter()
            .map(|(k, v)| (k, if total == 0 { 0.0 } else { v as f64 / total as f64 }))
            .collect()
    }

    /// Distribution of the initial event type across streams, used to
    /// bootstrap CPT-GPT inference (§4.5). Returned as (event, probability)
    /// pairs over the generation's event types.
    pub fn initial_event_distribution(&self) -> Vec<(EventType, f64)> {
        let mut counts = [0usize; EventType::ALL.len()];
        let mut total = 0usize;
        for s in &self.streams {
            if let Some(first) = s.events.first() {
                counts[first.event_type.index()] += 1;
                total += 1;
            }
        }
        self.generation
            .event_types()
            .iter()
            .map(|e| {
                let p = if total == 0 {
                    0.0
                } else {
                    counts[e.index()] as f64 / total as f64
                };
                (*e, p)
            })
            .collect()
    }

    /// Flow lengths (events per stream), in stream order.
    pub fn flow_lengths(&self) -> Vec<f64> {
        self.streams.iter().map(|s| s.len() as f64).collect()
    }

    /// Per-stream counts of a given event type, in stream order.
    pub fn flow_lengths_of(&self, event_type: EventType) -> Vec<f64> {
        self.streams
            .iter()
            .map(|s| s.count_of(event_type) as f64)
            .collect()
    }

    /// All interarrival times (seconds) pooled over streams, skipping the
    /// leading zero of each stream.
    pub fn interarrivals(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for s in &self.streams {
            out.extend(s.interarrivals().into_iter().skip(1));
        }
        out
    }

    /// Summary counts for logging.
    pub fn summary(&self) -> DatasetSummary {
        let mut per_device = [0usize; 3];
        for s in &self.streams {
            per_device[s.device_type.index()] += 1;
        }
        DatasetSummary {
            streams: self.num_streams(),
            events: self.num_events(),
            phones: per_device[0],
            connected_cars: per_device[1],
            tablets: per_device[2],
        }
    }
}

/// Headline counts for a dataset, mirroring the §4.1 dataset overview.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Number of streams (UEs).
    pub streams: usize,
    /// Total events.
    pub events: usize,
    /// Streams with device type phone.
    pub phones: usize,
    /// Streams with device type connected car.
    pub connected_cars: usize,
    /// Streams with device type tablet.
    pub tablets: usize,
}

impl std::fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events from {} UEs (phones: {}, connected cars: {}, tablets: {})",
            self.events, self.streams, self.phones, self.connected_cars, self.tablets
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, UeId};

    fn toy() -> Dataset {
        let mk = |id: u64, dt: DeviceType, evs: &[(EventType, f64)]| {
            Stream::new(
                UeId(id),
                dt,
                evs.iter().map(|(e, t)| Event::new(*e, *t)).collect(),
            )
        };
        Dataset::new(vec![
            mk(
                1,
                DeviceType::Phone,
                &[
                    (EventType::Attach, 0.0),
                    (EventType::ConnectionRelease, 10.0),
                    (EventType::ServiceRequest, 3700.0),
                ],
            ),
            mk(
                2,
                DeviceType::Tablet,
                &[
                    (EventType::ServiceRequest, 5.0),
                    (EventType::ConnectionRelease, 25.0),
                ],
            ),
            mk(3, DeviceType::Phone, &[(EventType::ServiceRequest, 100.0)]),
        ])
    }

    #[test]
    fn counts() {
        let d = toy();
        assert_eq!(d.num_streams(), 3);
        assert_eq!(d.num_events(), 6);
        let s = d.summary();
        assert_eq!(s.phones, 2);
        assert_eq!(s.tablets, 1);
        assert_eq!(s.connected_cars, 0);
    }

    #[test]
    fn filter_device_keeps_only_that_device() {
        let d = toy().filter_device(DeviceType::Phone);
        assert_eq!(d.num_streams(), 2);
        assert!(d.streams.iter().all(|s| s.device_type == DeviceType::Phone));
    }

    #[test]
    fn hourly_windows_rebased_and_nonempty() {
        let d = toy();
        let hours = d.hourly_windows(2);
        assert_eq!(hours.len(), 2);
        // Hour 0 contains events at t < 3600 from streams 1, 2, 3.
        assert_eq!(hours[0].num_streams(), 3);
        assert_eq!(hours[0].num_events(), 5);
        // Hour 1 contains only stream 1's event at 3700 → rebased to 100.
        assert_eq!(hours[1].num_streams(), 1);
        assert!((hours[1].streams[0].events[0].timestamp - 100.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_lengths_drops_short_and_truncates_long() {
        let d = toy().clamp_lengths(2, 2);
        assert_eq!(d.num_streams(), 2);
        assert!(d.streams.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn event_breakdown_sums_to_one() {
        let d = toy();
        let b = d.event_breakdown();
        let total: f64 = b.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((b[&EventType::ServiceRequest] - 3.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn initial_event_distribution_counts_first_events() {
        let d = toy();
        let dist = d.initial_event_distribution();
        let p: BTreeMap<EventType, f64> = dist.into_iter().collect();
        assert!((p[&EventType::Attach] - 1.0 / 3.0).abs() < 1e-9);
        assert!((p[&EventType::ServiceRequest] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let d = toy();
        let (tr1, te1) = d.split(0.67, 42);
        let (tr2, te2) = d.split(0.67, 42);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.num_streams() + te1.num_streams(), d.num_streams());
    }

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let d = toy();
        assert_eq!(d.sample(2, 1).num_streams(), 2);
        assert_eq!(d.sample(99, 1).num_streams(), 3);
        assert_eq!(d.sample(2, 1), d.sample(2, 1));
    }
}
