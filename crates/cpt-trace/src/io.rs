//! Dataset (de)serialization.
//!
//! Datasets are stored as JSON lines: a header line with the generation,
//! then one JSON object per stream. The format is line-oriented so that
//! multi-gigabyte traces can be streamed without building the whole dataset
//! in memory, and diff-able so that fixture files stay reviewable.

use crate::{Dataset, Generation, Stream};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header record (first line of a dataset file).
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    generation: Generation,
    num_streams: usize,
}

const FORMAT: &str = "cpt-trace";
const VERSION: u32 = 1;

/// Errors arising while reading or writing dataset files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed JSON or schema mismatch.
    Json(serde_json::Error),
    /// The file is not a cpt-trace file or has an unsupported version.
    BadHeader(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::BadHeader(msg) => write!(f, "bad dataset header: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Writes a dataset to `path` in JSON-lines format.
pub fn write_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    write_dataset_to(dataset, &mut w)
}

/// Writes a dataset to any writer (header line + one line per stream).
pub fn write_dataset_to(dataset: &Dataset, w: &mut impl Write) -> Result<(), IoError> {
    let header = Header {
        format: FORMAT.to_owned(),
        version: VERSION,
        generation: dataset.generation,
        num_streams: dataset.streams.len(),
    };
    serde_json::to_writer(&mut *w, &header)?;
    w.write_all(b"\n")?;
    for stream in &dataset.streams {
        serde_json::to_writer(&mut *w, stream)?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a dataset from `path`.
pub fn read_dataset(path: impl AsRef<Path>) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    read_dataset_from(BufReader::new(file))
}

/// Reads a dataset from any buffered reader.
pub fn read_dataset_from(r: impl BufRead) -> Result<Dataset, IoError> {
    let mut lines = r.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::BadHeader("empty file".into()))??;
    let header: Header = serde_json::from_str(&header_line)?;
    if header.format != FORMAT {
        return Err(IoError::BadHeader(format!(
            "expected format {FORMAT:?}, found {:?}",
            header.format
        )));
    }
    if header.version != VERSION {
        return Err(IoError::BadHeader(format!(
            "unsupported version {} (this build reads {VERSION})",
            header.version
        )));
    }
    let mut streams = Vec::with_capacity(header.num_streams);
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let stream: Stream = serde_json::from_str(&line)?;
        streams.push(stream);
    }
    if streams.len() != header.num_streams {
        return Err(IoError::BadHeader(format!(
            "header promised {} streams, file contains {}",
            header.num_streams,
            streams.len()
        )));
    }
    Ok(Dataset::with_generation(header.generation, streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceType, Event, EventType, UeId};
    use std::io::Cursor;

    fn toy() -> Dataset {
        Dataset::new(vec![
            Stream::new(
                UeId(1),
                DeviceType::Phone,
                vec![
                    Event::new(EventType::Attach, 0.0),
                    Event::new(EventType::ConnectionRelease, 12.25),
                ],
            ),
            Stream::new(UeId(2), DeviceType::ConnectedCar, vec![]),
        ])
    }

    #[test]
    fn roundtrip_in_memory() {
        let d = toy();
        let mut buf = Vec::new();
        write_dataset_to(&d, &mut buf).unwrap();
        let back = read_dataset_from(Cursor::new(buf)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn roundtrip_on_disk() {
        let d = toy();
        let dir = std::env::temp_dir().join(format!("cpt-trace-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.jsonl");
        write_dataset(&d, &path).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_empty_file() {
        assert!(matches!(
            read_dataset_from(Cursor::new(Vec::<u8>::new())),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_format() {
        let bad = r#"{"format":"pcap","version":1,"generation":"Lte","num_streams":0}"#;
        assert!(matches!(
            read_dataset_from(Cursor::new(bad.as_bytes().to_vec())),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_stream_count_mismatch() {
        let mut buf = Vec::new();
        write_dataset_to(&toy(), &mut buf).unwrap();
        // Drop the last line (one stream) while the header still says 2.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            read_dataset_from(Cursor::new(truncated.into_bytes())),
            Err(IoError::BadHeader(_))
        ));
    }
}
