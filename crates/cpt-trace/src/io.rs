//! Dataset (de)serialization.
//!
//! Datasets are stored as JSON lines: a header line with the generation,
//! then one JSON object per stream. The format is line-oriented so that
//! multi-gigabyte traces can be streamed without building the whole dataset
//! in memory, and diff-able so that fixture files stay reviewable.

use crate::{Dataset, Generation, Stream};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header record (first line of a dataset file).
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    format: String,
    version: u32,
    generation: Generation,
    num_streams: usize,
}

const FORMAT: &str = "cpt-trace";
const VERSION: u32 = 1;

/// Errors arising while reading or writing dataset files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Malformed JSON or schema mismatch (no position information; prefer
    /// [`IoError::Parse`], which the readers emit).
    Json(serde_json::Error),
    /// A line of the file does not parse. Carries the 1-based line number
    /// (the header is line 1) and a snippet of the offending line, so a
    /// multi-gigabyte trace with one bad record is debuggable from the
    /// error message alone.
    Parse {
        /// 1-based line number within the file.
        line: usize,
        /// First ~60 characters of the offending line.
        snippet: String,
        /// Underlying JSON error.
        source: serde_json::Error,
    },
    /// The file is not a cpt-trace file or has an unsupported version.
    BadHeader(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Parse {
                line,
                snippet,
                source,
            } => write!(f, "parse error at line {line}: {source}; offending line starts: {snippet:?}"),
            IoError::BadHeader(msg) => write!(f, "bad dataset header: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
            IoError::Parse { source, .. } => Some(source),
            IoError::BadHeader(_) => None,
        }
    }
}

/// Options controlling how a dataset file is read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// Tolerate a file whose final line was cut short (e.g. a writer died
    /// mid-record): the damaged last line is dropped and fewer streams than
    /// the header promises are accepted. Corruption anywhere *before* the
    /// final line still errors — data loss in the middle of a file is never
    /// silently skipped.
    pub allow_partial: bool,
}

impl ReadOptions {
    /// Strict reading (the default): any damage is an error.
    pub fn strict() -> Self {
        ReadOptions::default()
    }

    /// Tolerates a truncated final line.
    pub fn partial() -> Self {
        ReadOptions {
            allow_partial: true,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Writes a dataset to `path` in JSON-lines format.
///
/// The write is crash-safe (same idiom as the model registry's manifest
/// commit): the data goes to a sibling `.tmp` file which is flushed,
/// fsynced, and renamed over `path`, so a writer dying mid-trace can never
/// leave a header promising more streams than the file holds — readers see
/// either the old file or the complete new one.
pub fn write_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            IoError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} has no file name", path.display()),
            ))
        })?
        .to_owned();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let file = File::create(&tmp)?;
    let mut w = BufWriter::new(file);
    let result = write_dataset_to(dataset, &mut w)
        .and_then(|_| w.get_ref().sync_all().map_err(IoError::Io))
        .and_then(|_| std::fs::rename(&tmp, path).map_err(IoError::Io));
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Writes a dataset to any writer (header line + one line per stream).
pub fn write_dataset_to(dataset: &Dataset, w: &mut impl Write) -> Result<(), IoError> {
    let header = Header {
        format: FORMAT.to_owned(),
        version: VERSION,
        generation: dataset.generation,
        num_streams: dataset.streams.len(),
    };
    serde_json::to_writer(&mut *w, &header)?;
    w.write_all(b"\n")?;
    for stream in &dataset.streams {
        serde_json::to_writer(&mut *w, stream)?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a dataset from `path` (strict mode).
pub fn read_dataset(path: impl AsRef<Path>) -> Result<Dataset, IoError> {
    read_dataset_opts(path, ReadOptions::strict())
}

/// Reads a dataset from `path` with explicit [`ReadOptions`].
pub fn read_dataset_opts(path: impl AsRef<Path>, opts: ReadOptions) -> Result<Dataset, IoError> {
    let file = File::open(path)?;
    read_dataset_with(BufReader::new(file), opts)
}

/// Reads a dataset from any buffered reader (strict mode).
pub fn read_dataset_from(r: impl BufRead) -> Result<Dataset, IoError> {
    read_dataset_with(r, ReadOptions::strict())
}

/// Truncates `line` to a short prefix fit for an error message.
fn snippet_of(line: &str) -> String {
    const MAX: usize = 60;
    if line.len() <= MAX {
        return line.to_owned();
    }
    let mut end = MAX;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}...", &line[..end])
}

/// Reads a dataset from any buffered reader with explicit [`ReadOptions`].
pub fn read_dataset_with(r: impl BufRead, opts: ReadOptions) -> Result<Dataset, IoError> {
    let mut lines = r.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| IoError::BadHeader("empty file".into()))??;
    let header: Header = serde_json::from_str(&header_line).map_err(|source| IoError::Parse {
        line: 1,
        snippet: snippet_of(&header_line),
        source,
    })?;
    if header.format != FORMAT {
        return Err(IoError::BadHeader(format!(
            "expected format {FORMAT:?}, found {:?}",
            header.format
        )));
    }
    if header.version != VERSION {
        return Err(IoError::BadHeader(format!(
            "unsupported version {} (this build reads {VERSION})",
            header.version
        )));
    }
    let mut streams = Vec::with_capacity(header.num_streams);
    let mut lines = lines.enumerate();
    while let Some((i, line)) = lines.next() {
        let line_no = i + 2; // header consumed line 1
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Stream>(&line) {
            Ok(stream) => streams.push(stream),
            Err(source) => {
                // Only a damaged *final* line is tolerable: scan ahead for
                // any remaining content to distinguish a cut-short tail
                // from mid-file corruption. An I/O error while scanning is
                // surfaced as such — it must not masquerade as "more
                // content follows" and turn a tail-truncation read error
                // into a misleading mid-file parse error.
                let mut has_more_content = false;
                for (_, rest) in lines.by_ref() {
                    match rest {
                        Ok(l) if l.trim().is_empty() => continue,
                        Ok(_) => {
                            has_more_content = true;
                            break;
                        }
                        Err(e) => return Err(IoError::Io(e)),
                    }
                }
                if opts.allow_partial && !has_more_content {
                    break;
                }
                return Err(IoError::Parse {
                    line: line_no,
                    snippet: snippet_of(&line),
                    source,
                });
            }
        }
    }
    let count_ok = streams.len() == header.num_streams
        || (opts.allow_partial && streams.len() < header.num_streams);
    if !count_ok {
        return Err(IoError::BadHeader(format!(
            "header promised {} streams, file contains {}",
            header.num_streams,
            streams.len()
        )));
    }
    Ok(Dataset::with_generation(header.generation, streams))
}

/// Incremental strict-mode reader: parses the header eagerly, then yields
/// one [`Stream`] at a time, so a multi-gigabyte JSONL trace can be
/// converted or folded without ever materializing a [`Dataset`]. The
/// stream-count promise in the header is enforced when the file ends.
pub struct StreamReader<R: BufRead> {
    lines: std::iter::Enumerate<io::Lines<R>>,
    generation: Generation,
    promised: usize,
    delivered: usize,
}

impl<R: BufRead> StreamReader<R> {
    /// Opens a reader over JSONL content, validating the header line.
    pub fn new(r: R) -> Result<Self, IoError> {
        let mut lines = r.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| IoError::BadHeader("empty file".into()))??;
        let header: Header =
            serde_json::from_str(&header_line).map_err(|source| IoError::Parse {
                line: 1,
                snippet: snippet_of(&header_line),
                source,
            })?;
        if header.format != FORMAT {
            return Err(IoError::BadHeader(format!(
                "expected format {FORMAT:?}, found {:?}",
                header.format
            )));
        }
        if header.version != VERSION {
            return Err(IoError::BadHeader(format!(
                "unsupported version {} (this build reads {VERSION})",
                header.version
            )));
        }
        Ok(StreamReader {
            lines: lines.enumerate(),
            generation: header.generation,
            promised: header.num_streams,
            delivered: 0,
        })
    }

    /// The generation declared by the header.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The stream count the header promises.
    pub fn promised_streams(&self) -> usize {
        self.promised
    }

    /// The next stream, `Ok(None)` at a clean end of file. At EOF the
    /// delivered count must equal the header's promise (strict mode).
    pub fn next_stream(&mut self) -> Result<Option<Stream>, IoError> {
        for (i, line) in self.lines.by_ref() {
            let line_no = i + 2; // header consumed line 1
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let stream =
                serde_json::from_str::<Stream>(&line).map_err(|source| IoError::Parse {
                    line: line_no,
                    snippet: snippet_of(&line),
                    source,
                })?;
            self.delivered += 1;
            return Ok(Some(stream));
        }
        if self.delivered != self.promised {
            return Err(IoError::BadHeader(format!(
                "header promised {} streams, file contains {}",
                self.promised, self.delivered
            )));
        }
        Ok(None)
    }
}

/// Incremental crash-safe writer: the mirror of [`StreamReader`]. Streams
/// go to a sibling `.tmp` file one at a time; [`StreamWriter::finish`]
/// enforces the promised count, fsyncs, and atomically renames into
/// place. Dropping an unfinished writer removes the temp file, so a
/// crashed conversion can never publish a torn trace.
pub struct StreamWriter {
    w: Option<BufWriter<File>>,
    tmp: std::path::PathBuf,
    dst: std::path::PathBuf,
    promised: usize,
    written: usize,
}

impl StreamWriter {
    /// Creates the temp file and writes the header promising `num_streams`.
    pub fn create(
        path: impl AsRef<Path>,
        generation: Generation,
        num_streams: usize,
    ) -> Result<Self, IoError> {
        let path = path.as_ref();
        let mut tmp_name = path
            .file_name()
            .ok_or_else(|| {
                IoError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{} has no file name", path.display()),
                ))
            })?
            .to_owned();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut w = BufWriter::new(File::create(&tmp)?);
        let header = Header {
            format: FORMAT.to_owned(),
            version: VERSION,
            generation,
            num_streams,
        };
        let result = serde_json::to_writer(&mut w, &header)
            .map_err(IoError::Json)
            .and_then(|()| w.write_all(b"\n").map_err(IoError::Io));
        if let Err(e) = result {
            drop(w);
            std::fs::remove_file(&tmp).ok();
            return Err(e);
        }
        Ok(StreamWriter {
            w: Some(w),
            tmp,
            dst: path.to_path_buf(),
            promised: num_streams,
            written: 0,
        })
    }

    /// Appends one stream record.
    pub fn push(&mut self, stream: &Stream) -> Result<(), IoError> {
        let w = self.w.as_mut().expect("writer live until finish");
        serde_json::to_writer(&mut *w, stream)?;
        w.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Validates the promised count, fsyncs, and publishes atomically.
    pub fn finish(mut self) -> Result<(), IoError> {
        if self.written != self.promised {
            return Err(IoError::BadHeader(format!(
                "header promised {} streams, writer received {}",
                self.promised, self.written
            )));
        }
        let mut w = self.w.take().expect("writer live until finish");
        w.flush()?;
        w.get_ref().sync_all()?;
        drop(w);
        std::fs::rename(&self.tmp, &self.dst)?;
        Ok(())
    }
}

impl Drop for StreamWriter {
    fn drop(&mut self) {
        if self.w.take().is_some() {
            std::fs::remove_file(&self.tmp).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceType, Event, EventType, UeId};
    use std::io::Cursor;

    fn toy() -> Dataset {
        Dataset::new(vec![
            Stream::new(
                UeId(1),
                DeviceType::Phone,
                vec![
                    Event::new(EventType::Attach, 0.0),
                    Event::new(EventType::ConnectionRelease, 12.25),
                ],
            ),
            Stream::new(UeId(2), DeviceType::ConnectedCar, vec![]),
        ])
    }

    #[test]
    fn roundtrip_in_memory() {
        let d = toy();
        let mut buf = Vec::new();
        write_dataset_to(&d, &mut buf).unwrap();
        let back = read_dataset_from(Cursor::new(buf)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn roundtrip_on_disk() {
        let d = toy();
        let dir = std::env::temp_dir().join(format!("cpt-trace-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.jsonl");
        write_dataset(&d, &path).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_empty_file() {
        assert!(matches!(
            read_dataset_from(Cursor::new(Vec::<u8>::new())),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_format() {
        let bad = r#"{"format":"pcap","version":1,"generation":"Lte","num_streams":0}"#;
        assert!(matches!(
            read_dataset_from(Cursor::new(bad.as_bytes().to_vec())),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_stream_count_mismatch() {
        let mut buf = Vec::new();
        write_dataset_to(&toy(), &mut buf).unwrap();
        // Drop the last line (one stream) while the header still says 2.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            read_dataset_from(Cursor::new(truncated.into_bytes())),
            Err(IoError::BadHeader(_))
        ));
    }

    fn toy_text() -> String {
        let mut buf = Vec::new();
        write_dataset_to(&toy(), &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn parse_error_reports_line_number_and_snippet() {
        // Corrupt the first stream record (line 2; line 1 is the header).
        let corrupted: String = toy_text()
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    format!("{}<<garbage", &l[..l.len() / 2])
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        match read_dataset_from(Cursor::new(corrupted.into_bytes())) {
            Err(IoError::Parse { line, snippet, .. }) => {
                assert_eq!(line, 2);
                assert!(!snippet.is_empty());
                assert!(snippet.len() <= 64, "snippet too long: {snippet:?}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_header_reports_line_one() {
        let bad = "{\"format\": <oops\n";
        match read_dataset_from(Cursor::new(bad.as_bytes().to_vec())) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Parse error at line 1, got {other:?}"),
        }
    }

    #[test]
    fn allow_partial_tolerates_truncated_final_line() {
        // Cut the final stream record in half, as if the writer died.
        let text = toy_text();
        let cut = text.trim_end().len() - 10;
        let truncated = &text[..cut];
        // Strict mode: typed parse error on the damaged line.
        match read_dataset_from(Cursor::new(truncated.as_bytes().to_vec())) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected Parse error, got {other:?}"),
        }
        // Partial mode: the damaged tail is dropped, the rest survives.
        let d = read_dataset_with(
            Cursor::new(truncated.as_bytes().to_vec()),
            ReadOptions::partial(),
        )
        .unwrap();
        assert_eq!(d.streams.len(), 1);
        assert_eq!(d.streams[0].ue_id, UeId(1));
    }

    #[test]
    fn allow_partial_still_rejects_mid_file_corruption() {
        // Damage line 2 but keep an intact line 3: this is data loss in
        // the middle of the file, not a truncated tail.
        let corrupted: String = toy_text()
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 1 {
                    "{broken".to_owned()
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        match read_dataset_with(
            Cursor::new(corrupted.into_bytes()),
            ReadOptions::partial(),
        ) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn write_is_atomic_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("cpt-trace-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        std::fs::write(&path, b"stale content").unwrap();
        write_dataset(&toy(), &path).unwrap();
        assert_eq!(read_dataset(&path).unwrap(), toy());
        assert!(
            !dir.join("out.jsonl.tmp").exists(),
            "temp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_preserves_existing_file() {
        let dir = std::env::temp_dir().join(format!("cpt-trace-crashw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        write_dataset(&toy(), &path).unwrap();
        // Wedge the temp path with a directory so the next write fails
        // before it can touch the destination.
        std::fs::create_dir(dir.join("out.jsonl.tmp")).unwrap();
        let bigger = Dataset::new(vec![toy().streams[0].clone(); 5]);
        assert!(matches!(write_dataset(&bigger, &path), Err(IoError::Io(_))));
        // The previously committed file is intact.
        assert_eq!(read_dataset(&path).unwrap(), toy());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_ahead_io_error_is_surfaced_not_misreported() {
        // Header + one good stream + a corrupt JSON line + a line that
        // fails to *read* (invalid UTF-8). The scan-ahead past the corrupt
        // line hits the read error and must surface it as IoError::Io, not
        // misreport mid-file corruption as a Parse error.
        let mut bytes = Vec::new();
        for l in toy_text().lines().take(2) {
            bytes.extend_from_slice(l.as_bytes());
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(b"{broken\n");
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        for opts in [ReadOptions::partial(), ReadOptions::strict()] {
            match read_dataset_with(Cursor::new(bytes.clone()), opts) {
                Err(IoError::Io(_)) => {}
                other => panic!("expected Io error with {opts:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn allow_partial_still_rejects_excess_streams() {
        // More streams than the header promises is never acceptable.
        let mut text = toy_text();
        let extra = text.lines().nth(1).unwrap().to_owned();
        text.push_str(&extra);
        text.push('\n');
        assert!(matches!(
            read_dataset_with(Cursor::new(text.into_bytes()), ReadOptions::partial()),
            Err(IoError::BadHeader(_))
        ));
    }

    #[test]
    fn stream_writer_output_is_byte_identical_to_batch_write() {
        let d = toy();
        let mut batch = Vec::new();
        write_dataset_to(&d, &mut batch).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!("cpt-io-streamwriter-{}.jsonl", std::process::id()));
        let mut w = StreamWriter::create(&path, d.generation, d.streams.len()).unwrap();
        for s in &d.streams {
            w.push(s).unwrap();
        }
        w.finish().unwrap();
        let streamed = std::fs::read(&path).unwrap();
        assert_eq!(batch, streamed);

        let mut r = StreamReader::new(Cursor::new(streamed)).unwrap();
        assert_eq!(r.generation(), d.generation);
        assert_eq!(r.promised_streams(), d.streams.len());
        let mut streams = Vec::new();
        while let Some(s) = r.next_stream().unwrap() {
            streams.push(s);
        }
        assert_eq!(streams, d.streams);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_reader_enforces_promised_count() {
        // Header promises 2 streams, file carries 1: the shortfall must
        // surface at EOF, exactly like the batch reader.
        let mut text = String::new();
        for l in toy_text().lines().take(2) {
            text.push_str(l);
            text.push('\n');
        }
        let mut r = StreamReader::new(Cursor::new(text.into_bytes())).unwrap();
        assert!(r.next_stream().unwrap().is_some());
        assert!(matches!(r.next_stream(), Err(IoError::BadHeader(_))));
    }

    #[test]
    fn unfinished_stream_writer_publishes_nothing() {
        let d = toy();
        let mut path = std::env::temp_dir();
        path.push(format!("cpt-io-unfinished-{}.jsonl", std::process::id()));
        let tmp = path.with_file_name(format!(
            "cpt-io-unfinished-{}.jsonl.tmp",
            std::process::id()
        ));
        {
            let mut w = StreamWriter::create(&path, d.generation, d.streams.len()).unwrap();
            w.push(&d.streams[0]).unwrap();
            // Dropped without finish: a crashed conversion.
        }
        assert!(!path.exists(), "destination must not be published");
        assert!(!tmp.exists(), "temp file must be cleaned up");
    }

    #[test]
    fn stream_writer_rejects_count_mismatch_at_finish() {
        let d = toy();
        let mut path = std::env::temp_dir();
        path.push(format!("cpt-io-mismatch-{}.jsonl", std::process::id()));
        let mut w = StreamWriter::create(&path, d.generation, d.streams.len() + 1).unwrap();
        for s in &d.streams {
            w.push(s).unwrap();
        }
        assert!(matches!(w.finish(), Err(IoError::BadHeader(_))));
        assert!(!path.exists());
    }
}
