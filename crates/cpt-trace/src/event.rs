//! Control-plane event types for 4G (LTE) and 5G (NR), per Table 1 of the
//! paper.
//!
//! The two generations share the same *roles* (register, deregister, create
//! a signaling connection, release it, handover, tracking-area update) but
//! use different names, and 5G drops TAU entirely. [`EventType`] models the
//! union; [`Generation`] selects which subset is legal and how each event is
//! rendered.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Cellular technology generation a trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Generation {
    /// 4G / LTE (EPS). The paper's dataset and all experiments use LTE.
    #[default]
    Lte,
    /// 5G / NR. Supported by the state machine substrate for completeness
    /// (the paper's Fig. 1b) and exercised by tests and one example.
    Nr,
}

impl Generation {
    /// Event types that exist in this generation, in canonical order.
    ///
    /// The canonical order is also the one-hot encoding order used by the
    /// CPT-GPT tokenizer, so it must stay stable.
    pub fn event_types(self) -> &'static [EventType] {
        match self {
            Generation::Lte => &[
                EventType::Attach,
                EventType::Detach,
                EventType::ServiceRequest,
                EventType::ConnectionRelease,
                EventType::Handover,
                EventType::TrackingAreaUpdate,
            ],
            // 5G has no TAU (§2.1): the corresponding states and
            // transitions are removed from the two-level state machine.
            Generation::Nr => &[
                EventType::Attach,
                EventType::Detach,
                EventType::ServiceRequest,
                EventType::ConnectionRelease,
                EventType::Handover,
            ],
        }
    }

    /// Number of event types in this generation (the categorical
    /// sub-token width used by the tokenizer).
    pub fn num_event_types(self) -> usize {
        self.event_types().len()
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Generation::Lte => write!(f, "4G"),
            Generation::Nr => write!(f, "5G"),
        }
    }
}

/// A control-plane event type (Table 1 of the paper).
///
/// Variants are named by *role*; [`EventType::name`] renders the
/// generation-specific wire name (`ATCH` vs `REGISTER`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventType {
    /// Register the UE with the MCN (4G `ATCH`, 5G `REGISTER`).
    Attach,
    /// De-register the UE from the MCN (4G `DTCH`, 5G `DEREGISTER`).
    Detach,
    /// Create a signaling connection so the UE can send/receive data and
    /// control-plane messages (`SRV_REQ` in both generations).
    ServiceRequest,
    /// Release the signaling connection and other resources in both planes
    /// (4G `S1_CONN_REL`, 5G `AN_REL`).
    ConnectionRelease,
    /// Switch the UE from its current serving cell to another cell (`HO`).
    Handover,
    /// Update the UE's tracking area (4G `TAU`; absent in 5G).
    TrackingAreaUpdate,
}

impl EventType {
    /// All event roles across both generations, in canonical order.
    pub const ALL: [EventType; 6] = [
        EventType::Attach,
        EventType::Detach,
        EventType::ServiceRequest,
        EventType::ConnectionRelease,
        EventType::Handover,
        EventType::TrackingAreaUpdate,
    ];

    /// Stable index of this event within [`EventType::ALL`] (and within
    /// [`Generation::Lte`]'s canonical order). Used as the one-hot index by
    /// the tokenizer and as a dense table key everywhere else.
    pub fn index(self) -> usize {
        match self {
            EventType::Attach => 0,
            EventType::Detach => 1,
            EventType::ServiceRequest => 2,
            EventType::ConnectionRelease => 3,
            EventType::Handover => 4,
            EventType::TrackingAreaUpdate => 5,
        }
    }

    /// Inverse of [`EventType::index`]. Returns `None` for out-of-range
    /// indices.
    pub fn from_index(idx: usize) -> Option<EventType> {
        EventType::ALL.get(idx).copied()
    }

    /// Whether this event exists in the given generation. Only TAU is
    /// generation-specific (4G-only).
    pub fn exists_in(self, generation: Generation) -> bool {
        match generation {
            Generation::Lte => true,
            Generation::Nr => self != EventType::TrackingAreaUpdate,
        }
    }

    /// The generation-specific event name as printed in the paper's tables.
    pub fn name(self, generation: Generation) -> &'static str {
        match (generation, self) {
            (Generation::Lte, EventType::Attach) => "ATCH",
            (Generation::Lte, EventType::Detach) => "DTCH",
            (_, EventType::ServiceRequest) => "SRV_REQ",
            (Generation::Lte, EventType::ConnectionRelease) => "S1_CONN_REL",
            (_, EventType::Handover) => "HO",
            (Generation::Lte, EventType::TrackingAreaUpdate) => "TAU",
            (Generation::Nr, EventType::Attach) => "REGISTER",
            (Generation::Nr, EventType::Detach) => "DEREGISTER",
            (Generation::Nr, EventType::ConnectionRelease) => "AN_REL",
            (Generation::Nr, EventType::TrackingAreaUpdate) => "TAU(invalid-in-5G)",
        }
    }
}

impl fmt::Display for EventType {
    /// Displays the 4G name, which is what every table in the paper uses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name(Generation::Lte))
    }
}

impl FromStr for EventType {
    type Err = ParseEventTypeError;

    /// Parses either the 4G or the 5G wire name.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ATCH" | "REGISTER" => Ok(EventType::Attach),
            "DTCH" | "DEREGISTER" => Ok(EventType::Detach),
            "SRV_REQ" => Ok(EventType::ServiceRequest),
            "S1_CONN_REL" | "AN_REL" => Ok(EventType::ConnectionRelease),
            "HO" => Ok(EventType::Handover),
            "TAU" => Ok(EventType::TrackingAreaUpdate),
            _ => Err(ParseEventTypeError(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unknown event-type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventTypeError(pub String);

impl fmt::Display for ParseEventTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown control-plane event type: {:?}", self.0)
    }
}

impl std::error::Error for ParseEventTypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, et) in EventType::ALL.iter().enumerate() {
            assert_eq!(et.index(), i);
            assert_eq!(EventType::from_index(i), Some(*et));
        }
        assert_eq!(EventType::from_index(6), None);
    }

    #[test]
    fn lte_has_six_event_types_nr_has_five() {
        assert_eq!(Generation::Lte.num_event_types(), 6);
        assert_eq!(Generation::Nr.num_event_types(), 5);
        assert!(!EventType::TrackingAreaUpdate.exists_in(Generation::Nr));
        assert!(EventType::TrackingAreaUpdate.exists_in(Generation::Lte));
    }

    #[test]
    fn names_match_paper_table1() {
        use EventType::*;
        assert_eq!(Attach.name(Generation::Lte), "ATCH");
        assert_eq!(Attach.name(Generation::Nr), "REGISTER");
        assert_eq!(Detach.name(Generation::Lte), "DTCH");
        assert_eq!(Detach.name(Generation::Nr), "DEREGISTER");
        assert_eq!(ServiceRequest.name(Generation::Lte), "SRV_REQ");
        assert_eq!(ServiceRequest.name(Generation::Nr), "SRV_REQ");
        assert_eq!(ConnectionRelease.name(Generation::Lte), "S1_CONN_REL");
        assert_eq!(ConnectionRelease.name(Generation::Nr), "AN_REL");
        assert_eq!(Handover.name(Generation::Lte), "HO");
        assert_eq!(TrackingAreaUpdate.name(Generation::Lte), "TAU");
    }

    #[test]
    fn parse_both_generations() {
        for et in EventType::ALL {
            assert_eq!(et.name(Generation::Lte).parse::<EventType>(), Ok(et));
        }
        for et in Generation::Nr.event_types() {
            assert_eq!(et.name(Generation::Nr).parse::<EventType>(), Ok(*et));
        }
        assert!("BOGUS".parse::<EventType>().is_err());
    }

    #[test]
    fn canonical_order_is_stable() {
        // The tokenizer's one-hot layout depends on this exact order;
        // changing it silently breaks saved checkpoints.
        let names: Vec<&str> = Generation::Lte
            .event_types()
            .iter()
            .map(|e| e.name(Generation::Lte))
            .collect();
        assert_eq!(
            names,
            vec!["ATCH", "DTCH", "SRV_REQ", "S1_CONN_REL", "HO", "TAU"]
        );
    }
}
