//! Streams: per-UE sequences of timestamped control events.

use crate::{DeviceType, EventType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque UE identifier.
///
/// In the real trace UE IDs are hashed strings without semantic meaning
/// (§4.2.1), so the paper generates them with a random string generator
/// rather than a model. We model them as plain `u64`s; the `Display`
/// implementation renders the hashed-string form.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct UeId(pub u64);

impl fmt::Display for UeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex-rendered like an anonymized IMSI hash.
        write!(f, "ue-{:016x}", self.0)
    }
}

/// One control-plane event: a type plus the absolute timestamp (seconds
/// since trace epoch) at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The control event type.
    pub event_type: EventType,
    /// Seconds since the trace epoch. Non-negative, non-decreasing within a
    /// stream.
    pub timestamp: f64,
}

impl Event {
    /// Convenience constructor.
    pub fn new(event_type: EventType, timestamp: f64) -> Self {
        Event {
            event_type,
            timestamp,
        }
    }
}

/// A stream: the sequence of control events produced by a single UE
/// (`S_i = {UE_ID, device_type, events}` in §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stream {
    /// The UE this stream belongs to.
    pub ue_id: UeId,
    /// The UE's device type.
    pub device_type: DeviceType,
    /// Events ordered by non-decreasing timestamp.
    pub events: Vec<Event>,
}

impl Stream {
    /// Creates a stream, asserting (in debug builds) that events are
    /// time-ordered.
    pub fn new(ue_id: UeId, device_type: DeviceType, events: Vec<Event>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
            "stream events must be time-ordered"
        );
        Stream {
            ue_id,
            device_type,
            events,
        }
    }

    /// Number of events in the stream (the paper's "flow length").
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Wall-clock span covered by the stream in seconds (0 for streams with
    /// fewer than two events).
    pub fn duration(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.timestamp - first.timestamp,
            _ => 0.0,
        }
    }

    /// Interarrival times between consecutive events, in seconds.
    ///
    /// By the paper's tokenization convention the first event of a stream
    /// has interarrival time 0, so the returned vector has the same length
    /// as `events` with `out[0] == 0.0`.
    pub fn interarrivals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.events.len());
        let mut prev: Option<f64> = None;
        for ev in &self.events {
            out.push(match prev {
                Some(p) => (ev.timestamp - p).max(0.0),
                None => 0.0,
            });
            prev = Some(ev.timestamp);
        }
        out
    }

    /// Event types only, in order.
    pub fn event_types(&self) -> Vec<EventType> {
        self.events.iter().map(|e| e.event_type).collect()
    }

    /// Number of events of a given type (per-type "flow length" used by
    /// Table 6's SRV_REQ / S1_CONN_REL rows).
    pub fn count_of(&self, event_type: EventType) -> usize {
        self.events
            .iter()
            .filter(|e| e.event_type == event_type)
            .count()
    }

    /// Returns a copy truncated to at most `max_len` events.
    ///
    /// Both NetShare and CPT-GPT are configured to synthesize streams with a
    /// maximum length (500 in the paper, §5.1); training discards the tail
    /// the same way.
    pub fn truncated(&self, max_len: usize) -> Stream {
        Stream {
            ue_id: self.ue_id,
            device_type: self.device_type,
            events: self.events.iter().take(max_len).copied().collect(),
        }
    }

    /// Returns the sub-stream whose timestamps fall in `[start, end)`,
    /// re-based so the window start is time 0. Used to cut day-long traces
    /// into hourly traces (§5.1).
    pub fn window(&self, start: f64, end: f64) -> Stream {
        let events = self
            .events
            .iter()
            .filter(|e| e.timestamp >= start && e.timestamp < end)
            .map(|e| Event::new(e.event_type, e.timestamp - start))
            .collect();
        Stream {
            ue_id: self.ue_id,
            device_type: self.device_type,
            events,
        }
    }

    /// Rebuilds a stream from interarrival times and event types, the
    /// inverse of [`Stream::interarrivals`]. Inputs must have equal length;
    /// the first interarrival is treated as an offset from time 0.
    pub fn from_interarrivals(
        ue_id: UeId,
        device_type: DeviceType,
        event_types: &[EventType],
        interarrivals: &[f64],
    ) -> Stream {
        assert_eq!(
            event_types.len(),
            interarrivals.len(),
            "event/interarrival length mismatch"
        );
        let mut t = 0.0;
        let events = event_types
            .iter()
            .zip(interarrivals)
            .map(|(et, dt)| {
                t += dt.max(0.0);
                Event::new(*et, t)
            })
            .collect();
        Stream {
            ue_id,
            device_type,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn s(events: &[(EventType, f64)]) -> Stream {
        Stream::new(
            UeId(1),
            DeviceType::Phone,
            events.iter().map(|(e, t)| Event::new(*e, *t)).collect(),
        )
    }

    #[test]
    fn interarrivals_first_is_zero() {
        let st = s(&[
            (EventType::ServiceRequest, 3.0),
            (EventType::ConnectionRelease, 10.0),
            (EventType::ServiceRequest, 12.5),
        ]);
        assert_eq!(st.interarrivals(), vec![0.0, 7.0, 2.5]);
        assert_eq!(st.len(), 3);
        assert!((st.duration() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stream() {
        let st = s(&[]);
        assert!(st.is_empty());
        assert_eq!(st.duration(), 0.0);
        assert!(st.interarrivals().is_empty());
    }

    #[test]
    fn window_rebases_time() {
        let st = s(&[
            (EventType::ServiceRequest, 5.0),
            (EventType::ConnectionRelease, 3605.0),
            (EventType::ServiceRequest, 7300.0),
        ]);
        let w = st.window(3600.0, 7200.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.events[0].event_type, EventType::ConnectionRelease);
        assert!((w.events[0].timestamp - 5.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_caps_length() {
        let st = s(&[
            (EventType::ServiceRequest, 1.0),
            (EventType::ConnectionRelease, 2.0),
            (EventType::ServiceRequest, 3.0),
        ]);
        assert_eq!(st.truncated(2).len(), 2);
        assert_eq!(st.truncated(10).len(), 3);
    }

    #[test]
    fn count_of_filters_by_type() {
        let st = s(&[
            (EventType::ServiceRequest, 1.0),
            (EventType::ConnectionRelease, 2.0),
            (EventType::ServiceRequest, 3.0),
        ]);
        assert_eq!(st.count_of(EventType::ServiceRequest), 2);
        assert_eq!(st.count_of(EventType::Handover), 0);
    }

    proptest! {
        /// from_interarrivals ∘ interarrivals is the identity on the
        /// interarrival representation (up to float round-off).
        #[test]
        fn interarrival_roundtrip(mut iats in proptest::collection::vec(0.0f64..1e4, 0..50)) {
            // By convention the first event of a stream has interarrival 0
            // (it is an offset from stream start, which interarrivals()
            // cannot recover), so the roundtrip only holds with iats[0]=0.
            if let Some(first) = iats.first_mut() {
                *first = 0.0;
            }
            let ets: Vec<EventType> =
                iats.iter().enumerate().map(|(i, _)| EventType::ALL[i % 6]).collect();
            let st = Stream::from_interarrivals(UeId(7), DeviceType::Tablet, &ets, &iats);
            let back = st.interarrivals();
            prop_assert_eq!(back.len(), iats.len());
            for (a, b) in back.iter().zip(&iats) {
                prop_assert!((a - b).abs() < 1e-6, "a={a} b={b}");
            }
            // Timestamps are non-decreasing by construction.
            prop_assert!(st.events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        }
    }
}
