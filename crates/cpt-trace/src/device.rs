//! UE device types.
//!
//! The paper's dataset covers three device types with markedly different
//! control-plane behaviour (§4.1): phones (278 389 UEs), connected cars
//! (113 182) and tablets (39 368). Every experiment in §5 is broken down by
//! device type, so the type is carried on every [`crate::Stream`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The three UE device types of the paper's dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceType {
    /// Smartphones: the dominant population, frequent short
    /// CONNECTED/IDLE cycles (CONNECTED sojourn mostly 5–50 s).
    Phone,
    /// Connected cars: heavier mobility (HO/TAU fractions ~4–5× phones'),
    /// longer IDLE sojourns.
    ConnectedCar,
    /// Tablets: phone-like event mix but lower activity and longer flows.
    Tablet,
}

impl DeviceType {
    /// All device types in the order the paper's tables use.
    pub const ALL: [DeviceType; 3] = [
        DeviceType::Phone,
        DeviceType::ConnectedCar,
        DeviceType::Tablet,
    ];

    /// Dense index (0..3) for table lookups.
    pub fn index(self) -> usize {
        match self {
            DeviceType::Phone => 0,
            DeviceType::ConnectedCar => 1,
            DeviceType::Tablet => 2,
        }
    }

    /// Inverse of [`DeviceType::index`].
    pub fn from_index(idx: usize) -> Option<DeviceType> {
        DeviceType::ALL.get(idx).copied()
    }

    /// Relative population share in the paper's dataset (§4.1), used by the
    /// simulator to mix device types when generating a full trace.
    pub fn population_share(self) -> f64 {
        // 278_389 / 113_182 / 39_368 of 430_939 total UEs.
        match self {
            DeviceType::Phone => 278_389.0 / 430_939.0,
            DeviceType::ConnectedCar => 113_182.0 / 430_939.0,
            DeviceType::Tablet => 39_368.0 / 430_939.0,
        }
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceType::Phone => "phone",
            DeviceType::ConnectedCar => "connected_car",
            DeviceType::Tablet => "tablet",
        };
        write!(f, "{s}")
    }
}

impl FromStr for DeviceType {
    type Err = ParseDeviceTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "phone" | "phones" => Ok(DeviceType::Phone),
            "connected_car" | "car" | "connected-car" => Ok(DeviceType::ConnectedCar),
            "tablet" | "tablets" => Ok(DeviceType::Tablet),
            _ => Err(ParseDeviceTypeError(s.to_owned())),
        }
    }
}

/// Error returned when parsing an unknown device-type name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeviceTypeError(pub String);

impl fmt::Display for ParseDeviceTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown device type: {:?}", self.0)
    }
}

impl std::error::Error for ParseDeviceTypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, dt) in DeviceType::ALL.iter().enumerate() {
            assert_eq!(dt.index(), i);
            assert_eq!(DeviceType::from_index(i), Some(*dt));
        }
        assert_eq!(DeviceType::from_index(3), None);
    }

    #[test]
    fn population_shares_sum_to_one() {
        let total: f64 = DeviceType::ALL.iter().map(|d| d.population_share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Phones dominate, tablets are smallest — as in §4.1.
        assert!(
            DeviceType::Phone.population_share() > DeviceType::ConnectedCar.population_share()
        );
        assert!(
            DeviceType::ConnectedCar.population_share() > DeviceType::Tablet.population_share()
        );
    }

    #[test]
    fn parse_display_roundtrip() {
        for dt in DeviceType::ALL {
            assert_eq!(dt.to_string().parse::<DeviceType>(), Ok(dt));
        }
        assert!("router".parse::<DeviceType>().is_err());
    }
}
