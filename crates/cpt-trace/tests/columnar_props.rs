//! Property tests for the `.ctb` columnar trace format (DESIGN.md §17).
//!
//! Three contracts, over randomly-shaped datasets (empty datasets, empty
//! streams, every device type, timestamps across the full finite f64
//! range including subnormals and repeated values):
//!
//! 1. A dataset written to `.ctb` and read back is **bit-identical** —
//!    every timestamp compared via `to_bits`, not float equality.
//! 2. JSONL → ctb → JSONL produces a **byte-identical** JSONL file: the
//!    columnar format is a lossless intermediate for the text format.
//! 3. Any truncation or single-bit flip of a `.ctb` file is rejected
//!    with a typed [`CtbError`] by open + verify + decode — never a
//!    panic, never silently-wrong data. Every byte of the file is
//!    covered by the header, index, or per-block checksum, so this holds
//!    for *arbitrary* corruption positions, not just curated ones.

use cpt_trace::columnar::{read_ctb, write_ctb, ColumnarReader, ColumnarWriter};
use cpt_trace::io::{write_dataset, StreamReader, StreamWriter};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::collection::vec;
use proptest::prelude::*;
use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;

fn tmp_path(test: &str, suffix: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "cpt-columnar-props-{}-{test}.{suffix}",
        std::process::id()
    ));
    p
}

fn arb_device() -> impl Strategy<Value = DeviceType> {
    (0usize..DeviceType::ALL.len()).prop_map(|i| DeviceType::ALL[i])
}

fn arb_type() -> impl Strategy<Value = EventType> {
    (0usize..EventType::ALL.len()).prop_map(|i| EventType::ALL[i])
}

/// Interarrival gaps spanning the finite f64 range: ordinary magnitudes,
/// exact zero (repeated timestamps), the smallest positive subnormal, a
/// huge-but-safely-summable magnitude, and a non-terminating binary
/// fraction. Timestamps are cumulative sums, so streams stay
/// time-ordered and finite while still exercising exotic bit patterns.
fn arb_gap() -> impl Strategy<Value = f64> {
    prop_oneof![
        1.0e-3f64..5.0e3,
        Just(0.0),
        Just(5e-324),
        Just(1.0e100),
        Just(1.0 / 3.0),
    ]
}

/// Datasets of 0..16 streams with 0..12 events each — covering the empty
/// dataset, empty streams, and every device type.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    vec((arb_device(), vec((arb_type(), arb_gap()), 0..12)), 0..16).prop_map(|specs| {
        let streams = specs
            .into_iter()
            .enumerate()
            .map(|(i, (device, evs))| {
                let mut t = 0.0;
                let events = evs
                    .into_iter()
                    .map(|(et, gap)| {
                        t += gap;
                        Event::new(et, t)
                    })
                    .collect();
                Stream::new(UeId(i as u64), device, events)
            })
            .collect();
        Dataset::new(streams)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ctb_roundtrips_datasets_bit_exactly(data in arb_dataset()) {
        let path = tmp_path("roundtrip", "ctb");
        let summary = write_ctb(&data, &path).expect("write ctb");
        prop_assert_eq!(summary.streams as usize, data.num_streams());
        prop_assert_eq!(summary.events as usize, data.num_events());

        let back = read_ctb(&path).expect("read ctb");
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(back.generation, data.generation);
        prop_assert_eq!(back.streams.len(), data.streams.len());
        for (a, b) in data.streams.iter().zip(&back.streams) {
            prop_assert_eq!(a.ue_id, b.ue_id);
            prop_assert_eq!(a.device_type, b.device_type);
            prop_assert_eq!(a.events.len(), b.events.len());
            for (ea, eb) in a.events.iter().zip(&b.events) {
                prop_assert_eq!(ea.event_type, eb.event_type);
                prop_assert_eq!(
                    ea.timestamp.to_bits(),
                    eb.timestamp.to_bits(),
                    "timestamp {} came back as {}",
                    ea.timestamp,
                    eb.timestamp
                );
            }
        }
    }

    #[test]
    fn jsonl_to_ctb_to_jsonl_is_byte_identical(data in arb_dataset()) {
        let jsonl_in = tmp_path("jsonl-in", "jsonl");
        let ctb = tmp_path("jsonl-mid", "ctb");
        let jsonl_out = tmp_path("jsonl-out", "jsonl");

        write_dataset(&data, &jsonl_in).expect("write jsonl");

        // JSONL -> ctb, stream by stream — the `cptgen trace convert` path.
        let mut sr = StreamReader::new(BufReader::new(
            File::open(&jsonl_in).expect("open jsonl"),
        ))
        .expect("jsonl header");
        let mut cw = ColumnarWriter::create(&ctb, sr.generation()).expect("create ctb");
        while let Some(s) = sr.next_stream().expect("read stream") {
            cw.push_stream(&s).expect("push stream");
        }
        cw.finish().expect("finish ctb");

        // ctb -> JSONL, stream by stream.
        let r = ColumnarReader::open(&ctb).expect("open ctb");
        r.verify().expect("verify ctb");
        let mut sw = StreamWriter::create(&jsonl_out, r.generation(), r.num_streams())
            .expect("create jsonl");
        for view in r.streams() {
            sw.push(&view.to_stream().expect("decode stream")).expect("push");
        }
        sw.finish().expect("finish jsonl");

        let original = std::fs::read(&jsonl_in).expect("read original");
        let rewritten = std::fs::read(&jsonl_out).expect("read rewritten");
        std::fs::remove_file(&jsonl_in).ok();
        std::fs::remove_file(&ctb).ok();
        std::fs::remove_file(&jsonl_out).ok();
        prop_assert_eq!(original, rewritten);
    }

    #[test]
    fn corrupted_ctb_is_rejected_with_typed_error(
        data in arb_dataset(),
        frac in 0.0f64..1.0,
        bit in 0u32..8,
        truncate in 0usize..2,
    ) {
        let path = tmp_path("corrupt", "ctb");
        write_ctb(&data, &path).expect("write ctb");
        let bytes = std::fs::read(&path).expect("read ctb bytes");
        std::fs::remove_file(&path).ok();

        let corrupted = if truncate == 1 {
            // Cut anywhere strictly inside the file, including mid-header.
            let cut = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[..cut].to_vec()
        } else {
            let pos = ((frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            let mut b = bytes.clone();
            b[pos] ^= 1 << bit;
            b
        };

        // Open-time structural validation, full checksum verification, or
        // decode must catch it — with an error, not a panic or garbage.
        let outcome = ColumnarReader::from_bytes(corrupted).and_then(|r| {
            r.verify()?;
            r.to_dataset().map(|_| ())
        });
        prop_assert!(
            outcome.is_err(),
            "corruption (truncate={}, frac={}, bit={}) went undetected",
            truncate,
            frac,
            bit
        );
    }
}
