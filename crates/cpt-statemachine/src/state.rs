//! UE states of the two-level hierarchical machines.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Top-level UE state, the merge of the EMM/RM and ECM/CM machines (§2.1):
/// DEREGISTERED, CONNECTED and IDLE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TopState {
    /// Not registered with the MCN (EMM-DEREGISTERED).
    Deregistered,
    /// Registered with an active signaling connection (EMM-REGISTERED +
    /// ECM-CONNECTED).
    Connected,
    /// Registered but with the signaling connection released
    /// (EMM-REGISTERED + ECM-IDLE).
    Idle,
}

impl TopState {
    /// All top states.
    pub const ALL: [TopState; 3] = [
        TopState::Deregistered,
        TopState::Connected,
        TopState::Idle,
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            TopState::Deregistered => 0,
            TopState::Connected => 1,
            TopState::Idle => 2,
        }
    }
}

impl fmt::Display for TopState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopState::Deregistered => "DEREGISTERED",
            TopState::Connected => "CONNECTED",
            TopState::Idle => "IDLE",
        };
        write!(f, "{s}")
    }
}

/// Bottom-level sub-state, embedded in the top-level CONNECTED and IDLE
/// states. Sub-states capture the event-history-dependent constraints the
/// top level alone cannot express (e.g. "HO must be followed by TAU" and
/// "S1_CONN_REL / HO are invalid in S1_REL_S", the top NetShare violations
/// of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubState {
    /// CONNECTED via ATCH or SRV_REQ (a fresh signaling connection).
    SrvS,
    /// CONNECTED, immediately after a handover. In 4G the only legal next
    /// event is TAU (the standard mandates a tracking-area update after a
    /// handover that changes tracking area, which the trace always records).
    HoS,
    /// CONNECTED, after the TAU that completes a handover.
    TauCS,
    /// IDLE, entered via S1_CONN_REL / AN_REL. `S1_REL_S` in the paper's
    /// Table 3.
    S1RelS,
    /// IDLE, after an idle-mode (periodic) TAU. 4G only.
    TauIS,
    /// Placeholder sub-state of DEREGISTERED (the top state has no bottom
    /// machine; a single sub-state keeps the representation uniform).
    DeregS,
}

impl SubState {
    /// All sub-states.
    pub const ALL: [SubState; 6] = [
        SubState::SrvS,
        SubState::HoS,
        SubState::TauCS,
        SubState::S1RelS,
        SubState::TauIS,
        SubState::DeregS,
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            SubState::SrvS => 0,
            SubState::HoS => 1,
            SubState::TauCS => 2,
            SubState::S1RelS => 3,
            SubState::TauIS => 4,
            SubState::DeregS => 5,
        }
    }

    /// The top-level state this sub-state belongs to.
    pub fn top(self) -> TopState {
        match self {
            SubState::SrvS | SubState::HoS | SubState::TauCS => TopState::Connected,
            SubState::S1RelS | SubState::TauIS => TopState::Idle,
            SubState::DeregS => TopState::Deregistered,
        }
    }
}

impl fmt::Display for SubState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubState::SrvS => "SRV_S",
            SubState::HoS => "HO_S",
            SubState::TauCS => "TAU_C_S",
            SubState::S1RelS => "S1_REL_S",
            SubState::TauIS => "TAU_I_S",
            SubState::DeregS => "DEREG_S",
        };
        write!(f, "{s}")
    }
}

/// A complete two-level UE state: the sub-state determines the top state
/// via [`SubState::top`], so `UeState` is a thin wrapper adding convenience
/// accessors and the canonical display form `TOP/SUB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UeState(pub SubState);

impl UeState {
    /// The UE state machine's initial state.
    pub const DEREGISTERED: UeState = UeState(SubState::DeregS);

    /// The bottom-level sub-state.
    pub fn sub(self) -> SubState {
        self.0
    }

    /// The top-level state.
    pub fn top(self) -> TopState {
        self.0.top()
    }
}

impl fmt::Display for UeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.top(), self.sub())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substate_top_mapping() {
        assert_eq!(SubState::SrvS.top(), TopState::Connected);
        assert_eq!(SubState::HoS.top(), TopState::Connected);
        assert_eq!(SubState::TauCS.top(), TopState::Connected);
        assert_eq!(SubState::S1RelS.top(), TopState::Idle);
        assert_eq!(SubState::TauIS.top(), TopState::Idle);
        assert_eq!(SubState::DeregS.top(), TopState::Deregistered);
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, s) in SubState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, s) in TopState::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(UeState(SubState::S1RelS).to_string(), "IDLE/S1_REL_S");
        assert_eq!(UeState(SubState::SrvS).to_string(), "CONNECTED/SRV_S");
        assert_eq!(TopState::Deregistered.to_string(), "DEREGISTERED");
    }
}
