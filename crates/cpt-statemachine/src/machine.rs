//! The transition tables of the 4G and 5G two-level machines, and the
//! validation API.

use crate::state::{SubState, UeState};
use cpt_trace::{EventType, Generation};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A legal transition: observing `event` in `from` moves the UE to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transition {
    /// Source state.
    pub from: UeState,
    /// Observed control event.
    pub event: EventType,
    /// Destination state.
    pub to: UeState,
}

/// A semantic violation: `event` is not legal in state `state`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Violation {
    /// The state the UE was in when the illegal event was observed.
    pub state: UeState,
    /// The illegal event.
    pub event: EventType,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.state.sub(), self.event)
    }
}

/// A two-level hierarchical UE state machine (Fig. 1 of the paper),
/// parameterized by cellular generation.
///
/// The transition relation is deterministic: for each (state, event) pair
/// there is at most one destination state. This matches the paper's replay
/// procedure, which advances a single state per event and freezes on
/// violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateMachine {
    generation: Generation,
}

impl StateMachine {
    /// The 4G machine (Fig. 1a).
    pub fn lte() -> Self {
        StateMachine {
            generation: Generation::Lte,
        }
    }

    /// The 5G machine (Fig. 1b): TAU states/transitions removed, HO needs no
    /// TAU follow-up.
    pub fn nr() -> Self {
        StateMachine {
            generation: Generation::Nr,
        }
    }

    /// Machine for a given generation.
    pub fn for_generation(generation: Generation) -> Self {
        StateMachine { generation }
    }

    /// The generation this machine models.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Attempts to apply `event` in `state`. Returns the destination state,
    /// or the [`Violation`] if the event is illegal there.
    pub fn transition(&self, state: UeState, event: EventType) -> Result<UeState, Violation> {
        use EventType as E;
        use SubState as S;
        let dst = match self.generation {
            Generation::Lte => match (state.sub(), event) {
                // DEREGISTERED: only an attach is possible.
                (S::DeregS, E::Attach) => Some(S::SrvS),

                // CONNECTED/SRV_S: release, handover, or detach.
                (S::SrvS, E::ConnectionRelease) => Some(S::S1RelS),
                (S::SrvS, E::Handover) => Some(S::HoS),
                (S::SrvS, E::Detach) => Some(S::DeregS),

                // CONNECTED/HO_S: a TAU typically completes the handover
                // (§5.6: "HO is always followed by TAU in the CONNECTED
                // state" is the *common* pattern), but a handover within
                // the same tracking area records no TAU, so the UE may also
                // hand over again, release, or detach. Note TAU < HO in the
                // real trace's event breakdown (Table 7), so TAU-after-HO
                // cannot be mandatory.
                (S::HoS, E::TrackingAreaUpdate) => Some(S::TauCS),
                (S::HoS, E::Handover) => Some(S::HoS),
                (S::HoS, E::ConnectionRelease) => Some(S::S1RelS),
                (S::HoS, E::Detach) => Some(S::DeregS),

                // CONNECTED/TAU_C_S: same options as a fresh connection.
                (S::TauCS, E::ConnectionRelease) => Some(S::S1RelS),
                (S::TauCS, E::Handover) => Some(S::HoS),
                (S::TauCS, E::Detach) => Some(S::DeregS),

                // IDLE/S1_REL_S: reconnect, idle-mode TAU, or detach.
                // S1_CONN_REL and HO are illegal here — the top-2 NetShare
                // violations of Table 3.
                (S::S1RelS, E::ServiceRequest) => Some(S::SrvS),
                (S::S1RelS, E::TrackingAreaUpdate) => Some(S::TauIS),
                (S::S1RelS, E::Detach) => Some(S::DeregS),

                // IDLE/TAU_I_S: same options as S1_REL_S (TAU can repeat).
                (S::TauIS, E::ServiceRequest) => Some(S::SrvS),
                (S::TauIS, E::TrackingAreaUpdate) => Some(S::TauIS),
                (S::TauIS, E::Detach) => Some(S::DeregS),

                _ => None,
            },
            Generation::Nr => match (state.sub(), event) {
                // 5G: REGISTER/DEREGISTER/AN_REL map onto the same roles;
                // no TAU, and HO is not followed by anything special, so
                // HO_S behaves like SRV_S.
                (S::DeregS, E::Attach) => Some(S::SrvS),
                (S::SrvS, E::ConnectionRelease) => Some(S::S1RelS),
                (S::SrvS, E::Handover) => Some(S::HoS),
                (S::SrvS, E::Detach) => Some(S::DeregS),
                (S::HoS, E::ConnectionRelease) => Some(S::S1RelS),
                (S::HoS, E::Handover) => Some(S::HoS),
                (S::HoS, E::Detach) => Some(S::DeregS),
                (S::S1RelS, E::ServiceRequest) => Some(S::SrvS),
                (S::S1RelS, E::Detach) => Some(S::DeregS),
                _ => None,
            },
        };
        match dst {
            Some(sub) => Ok(UeState(sub)),
            None => Err(Violation { state, event }),
        }
    }

    /// Whether `event` is legal in `state`.
    pub fn is_legal(&self, state: UeState, event: EventType) -> bool {
        self.transition(state, event).is_ok()
    }

    /// Events legal in `state`, in canonical order.
    pub fn legal_events(&self, state: UeState) -> Vec<EventType> {
        self.generation
            .event_types()
            .iter()
            .copied()
            .filter(|e| self.is_legal(state, *e))
            .collect()
    }

    /// Every legal transition of the machine, enumerated in canonical
    /// (state, event) order. Used by `cpt-smm` to lay out its probability
    /// tables and by tests to cross-check the transition relation.
    pub fn transitions(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        for sub in SubState::ALL {
            let from = UeState(sub);
            for event in self.generation.event_types() {
                if let Ok(to) = self.transition(from, *event) {
                    out.push(Transition {
                        from,
                        event: *event,
                        to,
                    });
                }
            }
        }
        out
    }

    /// The paper's bootstrap heuristic (§5.2.1): the first
    /// ATCH / DTCH / SRV_REQ / HO event determines the UE state
    /// *after* that event regardless of the (unknown) source state.
    ///
    /// Returns the post-event state if `event` is a bootstrap event.
    pub fn bootstrap_state(&self, event: EventType) -> Option<UeState> {
        use EventType as E;
        match event {
            // ATCH registers and connects.
            E::Attach => Some(UeState(SubState::SrvS)),
            // DTCH always lands in DEREGISTERED.
            E::Detach => Some(UeState(SubState::DeregS)),
            // SRV_REQ always results in a fresh connection.
            E::ServiceRequest => Some(UeState(SubState::SrvS)),
            // HO implies the UE was CONNECTED and is now awaiting TAU (4G)
            // or simply still connected (5G).
            E::Handover => Some(match self.generation {
                Generation::Lte => UeState(SubState::HoS),
                Generation::Nr => UeState(SubState::HoS),
            }),
            // S1_CONN_REL and TAU do *not* determine the destination
            // uniquely enough for the paper's heuristic (TAU can be
            // connected- or idle-mode), so they are skipped.
            E::ConnectionRelease | E::TrackingAreaUpdate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::TopState;
    use EventType as E;
    use SubState as S;

    fn st(s: SubState) -> UeState {
        UeState(s)
    }

    #[test]
    fn lte_happy_path_cycle() {
        let m = StateMachine::lte();
        let mut s = UeState::DEREGISTERED;
        for (ev, expect) in [
            (E::Attach, S::SrvS),
            (E::ConnectionRelease, S::S1RelS),
            (E::ServiceRequest, S::SrvS),
            (E::Handover, S::HoS),
            (E::TrackingAreaUpdate, S::TauCS),
            (E::ConnectionRelease, S::S1RelS),
            (E::TrackingAreaUpdate, S::TauIS),
            (E::ServiceRequest, S::SrvS),
            (E::Detach, S::DeregS),
        ] {
            s = m.transition(s, ev).unwrap_or_else(|v| panic!("unexpected violation {v}"));
            assert_eq!(s.sub(), expect);
        }
    }

    #[test]
    fn table3_violations_are_illegal() {
        // The top-3 NetShare violations of Table 3 must be violations here.
        let m = StateMachine::lte();
        assert!(!m.is_legal(st(S::S1RelS), E::ConnectionRelease));
        assert!(!m.is_legal(st(S::S1RelS), E::Handover));
        for conn in [S::SrvS, S::HoS, S::TauCS] {
            assert!(!m.is_legal(st(conn), E::ServiceRequest), "SRV_REQ legal in {conn}");
        }
    }

    #[test]
    fn ho_state_allows_tau_completion_and_connected_actions() {
        let m = StateMachine::lte();
        assert_eq!(
            m.legal_events(st(S::HoS)),
            vec![
                E::Detach,
                E::ConnectionRelease,
                E::Handover,
                E::TrackingAreaUpdate
            ]
        );
        // TAU after HO lands in TAU_C_S (connected), not IDLE.
        assert_eq!(
            m.transition(st(S::HoS), E::TrackingAreaUpdate).unwrap().sub(),
            S::TauCS
        );
    }

    #[test]
    fn attach_only_from_deregistered() {
        let m = StateMachine::lte();
        for sub in S::ALL {
            let legal = m.is_legal(st(sub), E::Attach);
            assert_eq!(legal, sub == S::DeregS, "ATCH legality wrong in {sub}");
        }
    }

    #[test]
    fn detach_legal_in_every_registered_state_except_ho_pending() {
        let m = StateMachine::lte();
        for sub in [S::SrvS, S::HoS, S::TauCS, S::S1RelS, S::TauIS] {
            assert!(m.is_legal(st(sub), E::Detach), "DTCH illegal in {sub}");
        }
        assert!(!m.is_legal(st(S::DeregS), E::Detach));
    }

    #[test]
    fn nr_has_no_tau() {
        let m = StateMachine::nr();
        for sub in S::ALL {
            assert!(
                !m.is_legal(st(sub), E::TrackingAreaUpdate),
                "TAU legal in 5G state {sub}"
            );
        }
        // And HO can repeat without TAU.
        assert!(m.is_legal(st(S::HoS), E::Handover));
        assert!(m.is_legal(st(S::HoS), E::ConnectionRelease));
    }

    #[test]
    fn transition_preserves_top_level_semantics() {
        // CONNECTED ↔ IDLE only via release / service request; every
        // machine transition must respect the top-level merged EMM+ECM
        // semantics.
        for m in [StateMachine::lte(), StateMachine::nr()] {
            for t in m.transitions() {
                match t.event {
                    E::Attach => {
                        assert_eq!(t.from.top(), TopState::Deregistered);
                        assert_eq!(t.to.top(), TopState::Connected);
                    }
                    E::Detach => assert_eq!(t.to.top(), TopState::Deregistered),
                    E::ServiceRequest => {
                        assert_eq!(t.from.top(), TopState::Idle);
                        assert_eq!(t.to.top(), TopState::Connected);
                    }
                    E::ConnectionRelease => {
                        assert_eq!(t.from.top(), TopState::Connected);
                        assert_eq!(t.to.top(), TopState::Idle);
                    }
                    E::Handover => {
                        assert_eq!(t.from.top(), TopState::Connected);
                        assert_eq!(t.to.top(), TopState::Connected);
                    }
                    E::TrackingAreaUpdate => {
                        assert_eq!(t.from.top(), t.to.top(), "TAU must not change top state");
                    }
                }
            }
        }
    }

    #[test]
    fn transition_count_is_exactly_the_table() {
        // 4G: 1 (ATCH) + 3 (SRV_S) + 4 (HO_S) + 3 (TAU_C_S) + 3 (S1_REL_S)
        //     + 3 (TAU_I_S) = 17.
        assert_eq!(StateMachine::lte().transitions().len(), 17);
        // 5G: 1 + 3 + 3 + 2 = 9.
        assert_eq!(StateMachine::nr().transitions().len(), 9);
    }

    #[test]
    fn bootstrap_heuristic_matches_paper() {
        let m = StateMachine::lte();
        assert_eq!(m.bootstrap_state(E::Attach), Some(st(S::SrvS)));
        assert_eq!(m.bootstrap_state(E::Detach), Some(st(S::DeregS)));
        assert_eq!(m.bootstrap_state(E::ServiceRequest), Some(st(S::SrvS)));
        assert_eq!(m.bootstrap_state(E::Handover), Some(st(S::HoS)));
        assert_eq!(m.bootstrap_state(E::ConnectionRelease), None);
        assert_eq!(m.bootstrap_state(E::TrackingAreaUpdate), None);
    }

    #[test]
    fn bootstrap_states_are_reachable_and_consistent() {
        // Each bootstrap destination must be the destination of every legal
        // transition with that event (that is what makes the heuristic
        // sound: the event determines the destination regardless of
        // source).
        for m in [StateMachine::lte(), StateMachine::nr()] {
            for event in m.generation().event_types() {
                if let Some(boot) = m.bootstrap_state(*event) {
                    for t in m.transitions().into_iter().filter(|t| t.event == *event) {
                        assert_eq!(
                            t.to, boot,
                            "{event} transition to {} disagrees with bootstrap {}",
                            t.to, boot
                        );
                    }
                }
            }
        }
    }
}
