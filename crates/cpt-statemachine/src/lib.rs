//! Two-level hierarchical 3GPP UE state machines (Figure 1 of the paper).
//!
//! The 3GPP standard specifies two per-UE state machines — EMM/RM
//! (mobility/registration management) and ECM/CM (connection management) —
//! and intricate dependences of control events on their states. Following
//! [Meng et al., IMC'23] the paper merges them into a *two-level*
//! hierarchical machine per generation: three top-level states
//! (DEREGISTERED, CONNECTED, IDLE) with bottom-level sub-states embedded in
//! CONNECTED and IDLE.
//!
//! This crate is the domain-knowledge substrate of the workspace. It is used
//! in three roles:
//!
//! 1. by `cpt-synth` to *generate* semantically correct ground-truth traces;
//! 2. by `cpt-smm` as the skeleton of the Semi-Markov baselines;
//! 3. by `cpt-metrics` to *validate* synthesized traces (the semantic
//!    violation metric) and to extract per-state sojourn times — the replay
//!    procedure of §5.2.1, including the paper's bootstrap heuristic.
//!
//! Note that CPT-GPT itself never sees this crate at training or inference
//! time — that is the paper's whole point ("without domain knowledge").

pub mod dot;
pub mod machine;
pub mod replay;
pub mod state;

pub use dot::to_dot;
pub use machine::{StateMachine, Transition, Violation};
pub use replay::{replay, ReplayOutcome, SojournRecord};
pub use state::{SubState, TopState, UeState};
