//! Stream replay against the UE state machine: semantic-violation counting
//! and sojourn-time extraction (§5.2.1 of the paper).
//!
//! > "For each synthesized stream, we sequentially replay the events against
//! > the UE state machine. On encountering a state-violating event, a
//! > counter is incremented and the state machine stays in the same state.
//! > To bootstrap the initial state of the state machine, we employ a
//! > heuristic that looks for the first ATCH, DTCH, SRV_REQ, or HO event
//! > [...]. Events preceding the state machine bootstrapping are excluded
//! > from the semantic correctness calculation."

use crate::machine::{StateMachine, Violation};
use crate::state::TopState;
use cpt_trace::Stream;
use serde::{Deserialize, Serialize};

/// Time spent in one visit to a top-level state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SojournRecord {
    /// The top-level state that was occupied.
    pub state: TopState,
    /// Duration of the visit in seconds.
    pub duration: f64,
}

/// Result of replaying one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ReplayOutcome {
    /// Whether a bootstrap event was found; if not, nothing was checked.
    pub bootstrapped: bool,
    /// Number of events checked against the machine (events after the
    /// bootstrap event).
    pub events_checked: usize,
    /// Violations encountered, in stream order.
    pub violations: Vec<Violation>,
    /// Completed visits to top-level states (a visit completes when the UE
    /// *leaves* the state; the trailing open visit is not counted, matching
    /// the paper's "duration that the UE stays in each state").
    pub sojourns: Vec<SojournRecord>,
}

impl ReplayOutcome {
    /// Whether the stream contains at least one violating event (the
    /// stream-level violation metric of Tables 3 and 5).
    pub fn has_violation(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Completed sojourn durations in a given top state.
    pub fn sojourns_in(&self, state: TopState) -> Vec<f64> {
        self.sojourns
            .iter()
            .filter(|s| s.state == state)
            .map(|s| s.duration)
            .collect()
    }

    /// Mean of the completed sojourn durations in `state`, if any — the
    /// per-UE quantity whose distribution Fig. 2 / Fig. 5 plot ("the
    /// average sojourn time in the CONNECTED state of each UE").
    pub fn mean_sojourn_in(&self, state: TopState) -> Option<f64> {
        let xs = self.sojourns_in(state);
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }
}

/// Replays `stream` against `machine`, returning violation counts and
/// per-top-state sojourn times.
pub fn replay(machine: &StateMachine, stream: &Stream) -> ReplayOutcome {
    let mut outcome = ReplayOutcome::default();

    // --- Bootstrap: find the first event that determines the state. ---
    let mut iter = stream.events.iter();
    let mut state = None;
    let mut entered_at = 0.0;
    for ev in iter.by_ref() {
        if let Some(s) = machine.bootstrap_state(ev.event_type) {
            state = Some(s);
            entered_at = ev.timestamp;
            break;
        }
    }
    let Some(mut state) = state else {
        return outcome; // No bootstrap event: nothing to check.
    };
    outcome.bootstrapped = true;

    // --- Replay the remainder. ---
    for ev in iter {
        outcome.events_checked += 1;
        match machine.transition(state, ev.event_type) {
            Ok(next) => {
                if next.top() != state.top() {
                    outcome.sojourns.push(SojournRecord {
                        state: state.top(),
                        duration: (ev.timestamp - entered_at).max(0.0),
                    });
                    entered_at = ev.timestamp;
                }
                state = next;
            }
            Err(v) => {
                // Violation: count it; the machine stays in the same state.
                outcome.violations.push(v);
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpt_trace::{DeviceType, Event, EventType, Stream, UeId};
    use EventType as E;

    fn stream(evs: &[(E, f64)]) -> Stream {
        Stream::new(
            UeId(0),
            DeviceType::Phone,
            evs.iter().map(|(e, t)| Event::new(*e, *t)).collect(),
        )
    }

    #[test]
    fn clean_stream_has_no_violations() {
        let m = StateMachine::lte();
        let s = stream(&[
            (E::Attach, 0.0),
            (E::ConnectionRelease, 10.0),
            (E::ServiceRequest, 100.0),
            (E::ConnectionRelease, 130.0),
            (E::Detach, 400.0),
        ]);
        let out = replay(&m, &s);
        assert!(out.bootstrapped);
        assert_eq!(out.events_checked, 4);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn sojourns_are_split_by_top_state() {
        let m = StateMachine::lte();
        // CONNECTED [0,10), IDLE [10,100), CONNECTED [100,130), IDLE [130,400)
        let s = stream(&[
            (E::Attach, 0.0),
            (E::ConnectionRelease, 10.0),
            (E::ServiceRequest, 100.0),
            (E::ConnectionRelease, 130.0),
            (E::Detach, 400.0),
        ]);
        let out = replay(&m, &s);
        assert_eq!(out.sojourns_in(TopState::Connected), vec![10.0, 30.0]);
        assert_eq!(out.sojourns_in(TopState::Idle), vec![90.0, 270.0]);
        assert_eq!(out.mean_sojourn_in(TopState::Connected), Some(20.0));
    }

    #[test]
    fn tau_within_idle_does_not_close_the_sojourn() {
        let m = StateMachine::lte();
        let s = stream(&[
            (E::ServiceRequest, 0.0),
            (E::ConnectionRelease, 5.0),
            (E::TrackingAreaUpdate, 50.0), // idle-mode TAU: still IDLE
            (E::ServiceRequest, 100.0),
        ]);
        let out = replay(&m, &s);
        assert!(out.violations.is_empty());
        assert_eq!(out.sojourns_in(TopState::Idle), vec![95.0]);
    }

    #[test]
    fn violation_freezes_state() {
        let m = StateMachine::lte();
        // SRV_REQ bootstrap → CONNECTED; second SRV_REQ is illegal in
        // CONNECTED; the machine stays CONNECTED so the S1_CONN_REL after it
        // is legal.
        let s = stream(&[
            (E::ServiceRequest, 0.0),
            (E::ServiceRequest, 1.0),
            (E::ConnectionRelease, 2.0),
        ]);
        let out = replay(&m, &s);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].event, E::ServiceRequest);
        assert_eq!(out.violations[0].state.top(), TopState::Connected);
        assert!(out.has_violation());
        // The release still completed a CONNECTED sojourn of 2 s.
        assert_eq!(out.sojourns_in(TopState::Connected), vec![2.0]);
    }

    #[test]
    fn events_before_bootstrap_are_excluded() {
        let m = StateMachine::lte();
        // Leading S1_CONN_REL and TAU cannot bootstrap; the SRV_REQ does.
        let s = stream(&[
            (E::ConnectionRelease, 0.0),
            (E::TrackingAreaUpdate, 1.0),
            (E::ServiceRequest, 2.0),
            (E::ConnectionRelease, 3.0),
        ]);
        let out = replay(&m, &s);
        assert!(out.bootstrapped);
        assert_eq!(out.events_checked, 1);
        assert!(out.violations.is_empty());
    }

    #[test]
    fn stream_without_bootstrap_checks_nothing() {
        let m = StateMachine::lte();
        let s = stream(&[(E::ConnectionRelease, 0.0), (E::TrackingAreaUpdate, 1.0)]);
        let out = replay(&m, &s);
        assert!(!out.bootstrapped);
        assert_eq!(out.events_checked, 0);
        assert!(!out.has_violation());
        assert!(out.sojourns.is_empty());
    }

    #[test]
    fn ho_tau_sequence_keeps_connected_sojourn_open() {
        let m = StateMachine::lte();
        let s = stream(&[
            (E::ServiceRequest, 0.0),
            (E::Handover, 5.0),
            (E::TrackingAreaUpdate, 6.0),
            (E::ConnectionRelease, 20.0),
        ]);
        let out = replay(&m, &s);
        assert!(out.violations.is_empty());
        assert_eq!(out.sojourns_in(TopState::Connected), vec![20.0]);
    }

    #[test]
    fn empty_stream() {
        let m = StateMachine::lte();
        let out = replay(&m, &stream(&[]));
        assert!(!out.bootstrapped);
        assert_eq!(out.events_checked, 0);
    }
}
