//! Graphviz (DOT) export of the two-level state machines — tooling for
//! documentation and for visually verifying the Fig. 1 reconstruction.

use crate::machine::StateMachine;
use crate::state::{SubState, TopState};
use std::fmt::Write as _;

/// Renders the machine as a Graphviz digraph with one cluster per
/// top-level state (the two-level structure of Fig. 1).
pub fn to_dot(machine: &StateMachine) -> String {
    let mut out = String::new();
    let gen = machine.generation();
    let _ = writeln!(out, "digraph ue_state_machine_{gen} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    // Clusters per top state, containing their sub-states.
    for top in TopState::ALL {
        let subs: Vec<SubState> = SubState::ALL
            .iter()
            .copied()
            .filter(|s| s.top() == top)
            .filter(|s| {
                // Only sub-states that actually participate in this
                // generation's transition relation.
                machine
                    .transitions()
                    .iter()
                    .any(|t| t.from.sub() == *s || t.to.sub() == *s)
            })
            .collect();
        if subs.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  subgraph cluster_{} {{", top.index());
        let _ = writeln!(out, "    label=\"{top}\";");
        for s in subs {
            let _ = writeln!(out, "    s{} [label=\"{s}\"];", s.index());
        }
        let _ = writeln!(out, "  }}");
    }

    for t in machine.transitions() {
        let _ = writeln!(
            out,
            "  s{} -> s{} [label=\"{}\"];",
            t.from.sub().index(),
            t.to.sub().index(),
            t.event.name(gen)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_transitions_and_states() {
        let m = StateMachine::lte();
        let dot = to_dot(&m);
        assert!(dot.starts_with("digraph ue_state_machine_4G {"));
        // One edge line per transition.
        let edges = dot.lines().filter(|l| l.contains(" -> ")).count();
        assert_eq!(edges, m.transitions().len());
        // The three top-level clusters are present.
        for label in ["DEREGISTERED", "CONNECTED", "IDLE"] {
            assert!(dot.contains(label), "missing cluster {label}");
        }
        // 4G event names are used.
        assert!(dot.contains("S1_CONN_REL"));
        assert!(dot.contains("TAU"));
    }

    #[test]
    fn nr_dot_uses_5g_names_and_omits_tau() {
        let dot = to_dot(&StateMachine::nr());
        assert!(dot.contains("REGISTER"));
        assert!(dot.contains("AN_REL"));
        assert!(!dot.contains("\"TAU\""));
        // TAU sub-states don't appear in 5G.
        assert!(!dot.contains("TAU_I_S"));
    }
}
