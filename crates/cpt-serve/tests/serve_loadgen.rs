//! Integration tests for the TCP server and the load-generator client:
//! overload shedding surfaces as a typed protocol error, closes are clean,
//! `/stats` counters move, disconnected clients leak nothing, and the
//! engine sustains 1000 concurrent sessions with bit-identical output at
//! 1 and 8 workers (the acceptance criteria, at test scale).

use cpt_gpt::{
    CptGpt, CptGptConfig, SessionEvent, StreamParams, Tokenizer, TrainConfig,
};
use cpt_serve::protocol::{ErrorKind, Request, Response};
use cpt_serve::{
    run_loadgen, ChaosPlan, Engine, LoadgenConfig, ServeConfig, Server, ServerConfig,
    SessionId, WireMode,
};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn trained_model() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// A running in-process server plus the means to stop it.
struct TestServer {
    addr: std::net::SocketAddr,
    stop: Box<dyn Fn() + Send + Sync>,
    thread: std::thread::JoinHandle<()>,
    handle: cpt_serve::ServeHandle,
}

fn start_server(serve_cfg: ServeConfig) -> TestServer {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        serve: ServeConfig {
            max_connections: 64,
            ..serve_cfg
        },
        chaos: ChaosPlan::default(),
        registry: None,
    };
    let server = Server::bind(trained_model(), cfg).expect("server binds");
    let addr = server.local_addr().expect("bound address");
    let stop = Box::new(server.stopper());
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    TestServer {
        addr,
        stop,
        thread,
        handle,
    }
}

impl TestServer {
    fn shutdown(self) {
        (self.stop)();
        self.thread.join().expect("server thread joins");
    }
}

/// A minimal line-JSON test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("client connects");
        let write_half = stream.try_clone().expect("clone stream");
        Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        }
    }

    fn send_line(&mut self, line: &str) -> Response {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        serde_json::from_str(&resp).expect("response parses")
    }

    fn request(&mut self, req: &Request) -> Response {
        let line = serde_json::to_string(req).expect("request serializes");
        self.send_line(&line)
    }

    fn open(&mut self, seed: u64) -> Response {
        self.request(&Request::Open {
            seed,
            streams: 1,
            device: "phone".to_string(),
            max_stream_len: None,
        })
    }
}

/// Asserts the response is `opened` and extracts the session id.
fn opened_id(resp: Response) -> u64 {
    assert!(
        matches!(resp, Response::Opened { .. }),
        "expected opened, got {resp:?}"
    );
    if let Response::Opened { session } = resp {
        session
    } else {
        unreachable!()
    }
}

/// Satellite (4): open past the cap over the wire, assert typed
/// `overloaded` shedding, clean close making room, and non-zero stats.
#[test]
fn overload_sheds_with_typed_protocol_error() {
    let server = start_server(ServeConfig {
        max_sessions: 4,
        ..ServeConfig::new(2)
    });
    let mut client = Client::connect(server.addr);

    let ids: Vec<u64> = (0..4).map(|seed| opened_id(client.open(seed))).collect();
    let shed = client.open(99);
    assert!(
        matches!(
            &shed,
            Response::Error { kind: ErrorKind::Overloaded, message }
                if message.contains("cap 4")
        ),
        "expected overloaded with a helpful message, got {shed:?}"
    );

    // A clean close makes room for a new session.
    let closed = client.request(&Request::Close { session: ids[0] });
    assert!(
        matches!(&closed, Response::Closed { session } if *session == ids[0]),
        "expected closed {}, got {closed:?}",
        ids[0]
    );
    let reopened = client.open(100);
    assert!(
        matches!(reopened, Response::Opened { .. }),
        "expected opened after close, got {reopened:?}"
    );

    // Stats over the wire reflect all of the above.
    let resp = client.request(&Request::Stats);
    assert!(
        matches!(&resp, Response::Stats { .. }),
        "expected stats, got {resp:?}"
    );
    if let Response::Stats { stats } = resp {
        assert_eq!(stats.sessions_opened, 5);
        assert_eq!(stats.sessions_shed, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.sessions_open, 4);
        assert_eq!(stats.workers, 2);
    }

    // Malformed and unknown-session requests are typed errors, not drops.
    let bad = client.send_line("{\"op\":\"frobnicate\"}");
    assert!(
        matches!(bad, Response::Error { kind: ErrorKind::InvalidRequest, .. }),
        "expected invalid_request, got {bad:?}"
    );
    let unknown = client.request(&Request::Next {
        session: 424242,
        max: 1,
        wait_ms: 0,
    });
    assert!(
        matches!(unknown, Response::Error { kind: ErrorKind::UnknownSession, .. }),
        "expected unknown_session, got {unknown:?}"
    );

    server.shutdown();
}

/// A client that disconnects with sessions open leaks no session slots.
#[test]
fn disconnect_reclaims_abandoned_sessions() {
    let server = start_server(ServeConfig::new(2));
    {
        let mut client = Client::connect(server.addr);
        for seed in 0..3 {
            opened_id(client.open(seed));
        }
        assert_eq!(server.handle.stats().sessions_open, 3);
    } // client dropped: connection closes without close_session calls

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if server.handle.stats().sessions_open == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned sessions were not reclaimed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

/// End-to-end loadgen against a live server: every session opens, streams,
/// and closes cleanly, and the final server stats are coherent.
#[test]
fn loadgen_end_to_end() {
    let server = start_server(ServeConfig::new(2));
    let mut cfg = LoadgenConfig::new(server.addr.to_string());
    cfg.sessions = 40;
    cfg.concurrent = 16;
    cfg.threads = 2;
    cfg.streams = 2;
    let report = run_loadgen(&cfg).expect("loadgen runs");

    assert_eq!(report.sessions_opened, 40);
    assert_eq!(report.sessions_completed, 40);
    assert_eq!(report.sessions_shed, 0);
    assert_eq!(report.errors, 0);
    assert!(report.events_received > 0);
    let server_stats = report.server_stats.expect("server stats fetched");
    assert_eq!(server_stats.sessions_opened, 40);
    assert_eq!(server_stats.sessions_closed, 40);
    assert_eq!(server_stats.sessions_open, 0);
    assert_eq!(server_stats.events_delivered, report.events_received);
    assert!(server_stats.slices > 0);
    server.shutdown();
}

/// Satellite (3), equivalence half: a JSON-lines client and a binary-wire
/// client observe byte-identical event streams for the same seeds — the
/// loadgen digest folds the canonical `wire::encode_event` bytes of every
/// data event, so equal digests mean equal streams, codec-independently.
#[test]
fn cross_codec_clients_observe_identical_event_streams() {
    let run = |wire: WireMode| {
        let server = start_server(ServeConfig::new(2));
        let mut cfg = LoadgenConfig::new(server.addr.to_string());
        cfg.sessions = 32;
        cfg.concurrent = 12;
        cfg.threads = 2;
        cfg.streams = 2;
        cfg.seed_base = 7_000;
        cfg.wire = wire;
        let report = run_loadgen(&cfg).expect("loadgen runs");
        server.shutdown();
        report
    };
    let json = run(WireMode::Json);
    let bin = run(WireMode::Bin);
    for r in [&json, &bin] {
        assert_eq!(r.sessions_opened, 32);
        assert_eq!(r.sessions_completed, 32);
        assert_eq!(r.sessions_shed, 0);
        assert_eq!(r.errors, 0);
        assert!(r.events_received > 0);
    }
    assert_eq!(json.events_received, bin.events_received);
    assert_eq!(
        json.events_digest, bin.events_digest,
        "JSON and binary clients must observe byte-identical event streams"
    );
}

/// The loadgen digest is also stable across server shard counts: the same
/// seeds against a 1-shard and a 4-shard server produce the same streams.
#[test]
fn loadgen_digest_stable_across_shard_counts() {
    let run = |shards: usize| {
        let server = start_server(ServeConfig {
            shards,
            ..ServeConfig::new(4)
        });
        let mut cfg = LoadgenConfig::new(server.addr.to_string());
        cfg.sessions = 32;
        cfg.concurrent = 12;
        cfg.threads = 2;
        cfg.streams = 2;
        cfg.seed_base = 11_000;
        cfg.wire = WireMode::Bin;
        let report = run_loadgen(&cfg).expect("loadgen runs");
        server.shutdown();
        report
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.events_received, four.events_received);
    assert_eq!(
        one.events_digest, four.events_digest,
        "event streams must be bit-identical at any shard count"
    );
    assert_eq!(four.shards, 4, "report carries the server shard count");
}

/// The `shutdown` verb stops the server from the client side.
#[test]
fn shutdown_verb_stops_the_server() {
    let server = start_server(ServeConfig::new(1));
    let mut client = Client::connect(server.addr);
    let bye = client.request(&Request::Shutdown);
    assert!(matches!(bye, Response::Bye), "expected bye, got {bye:?}");
    // run() returns once the stop flag is seen; join must not hang.
    server.thread.join().expect("server exits after shutdown");
}

/// Acceptance at test scale: 1000 concurrent sessions, no shedding, and
/// per-session output bit-identical between 1 and 8 workers.
#[test]
fn thousand_concurrent_sessions_bit_identical_across_workers() {
    let run = |workers: usize| -> Vec<Vec<SessionEvent>> {
        let engine = Engine::start(trained_model(), ServeConfig::new(workers))
            .expect("engine starts");
        let handle = engine.handle();
        let ids: Vec<SessionId> = (0..1000u64)
            .map(|i| {
                handle
                    .open_session(StreamParams::new(i))
                    .expect("session admitted under the 4096 cap")
            })
            .collect();
        assert_eq!(handle.stats().sessions_open, 1000);
        let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
        let mut done = vec![false; ids.len()];
        while !done.iter().all(|d| *d) {
            for (i, id) in ids.iter().enumerate() {
                if done[i] {
                    continue;
                }
                let b = handle
                    .next_events(*id, 64, Duration::from_secs(10))
                    .expect("next_events");
                outputs[i].extend(b.events.iter().map(|e| {
                    assert!(!e.is_failure(), "unexpected failure record: {e:?}");
                    *e.data().expect("data event")
                }));
                if b.finished {
                    handle.close_session(*id).expect("close");
                    done[i] = true;
                }
            }
        }
        engine.shutdown();
        outputs
    };
    let serial = run(1);
    assert!(serial.iter().all(|s| !s.is_empty()));
    let parallel = run(8);
    assert_eq!(serial, parallel, "output differs between 1 and 8 workers");
}
