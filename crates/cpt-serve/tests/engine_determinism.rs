//! The engine's acceptance property: a session's event stream is a pure
//! function of `(model, params)` — bit-identical whether it is decoded by
//! a fresh single-session `SessionDecoder`, or by the continuous-batching
//! engine at 1, 2, or 8 workers, interleaved with other sessions, through
//! recycled decode states, under tiny slice budgets and queue capacities
//! that force parking and re-queueing.

use cpt_gpt::{
    CptGpt, CptGptConfig, SessionEvent, StreamParams, Tokenizer, TrainConfig,
};
use cpt_serve::{Engine, ServeConfig, ServeError, SessionId};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

/// One tiny trained model shared by every case — training per case would
/// dominate the runtime.
fn trained_model() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// The ground truth: a fresh single-session decoder drained to completion.
fn reference(params: StreamParams) -> Vec<SessionEvent> {
    let model = trained_model();
    let mut dec = model.open_session(params).expect("open reference session");
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event(&model) {
        out.push(ev);
    }
    out
}

/// Unwraps delivered events to the decoded data, asserting none is a
/// contained-failure record (no chaos is injected in these tests).
fn data_events(events: &[cpt_serve::SessionEvent]) -> Vec<SessionEvent> {
    events
        .iter()
        .map(|e| {
            assert!(!e.is_failure(), "unexpected failure record: {e:?}");
            *e.data().expect("data event")
        })
        .collect()
}

/// Opens every session on one engine and drains them round-robin with the
/// given per-call batch size, returning each session's full event stream.
fn drain_on_engine(
    workers: usize,
    all_params: &[StreamParams],
    batch: usize,
) -> Vec<Vec<SessionEvent>> {
    // Tiny slices and queues on purpose: force many park/re-queue cycles
    // so scheduling has every chance to leak into the output if it can.
    let cfg = ServeConfig {
        slice_budget: 3,
        queue_capacity: 8,
        ..ServeConfig::new(workers)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let ids: Vec<SessionId> = all_params
        .iter()
        .map(|p| handle.open_session(*p).expect("session admitted"))
        .collect();
    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
    let mut done = vec![false; ids.len()];
    while !done.iter().all(|d| *d) {
        for (i, id) in ids.iter().enumerate() {
            if done[i] {
                continue;
            }
            let b = handle
                .next_events(*id, batch, Duration::from_secs(10))
                .expect("next_events on open session");
            outputs[i].extend(data_events(&b.events));
            if b.finished {
                handle.close_session(*id).expect("close finished session");
                done[i] = true;
            }
        }
    }
    engine.shutdown();
    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interleaved engine decode at 1/2/8 workers, through recycled decode
    /// states, matches the fresh-state single-session reference byte for
    /// byte. This is satellite (3) and the worker-count half of the
    /// acceptance criteria.
    #[test]
    fn engine_matches_reference_at_any_worker_count(
        seed in 0u64..10_000,
        sessions in 1usize..6,
        streams in 1usize..4,
        batch in 1usize..16,
    ) {
        let all_params: Vec<StreamParams> = (0..sessions as u64)
            .map(|i| StreamParams::new(seed.wrapping_add(i * 7919)).streams(streams))
            .collect();
        let expected: Vec<Vec<SessionEvent>> =
            all_params.iter().map(|p| reference(*p)).collect();
        for workers in [1usize, 2, 8] {
            let got = drain_on_engine(workers, &all_params, batch);
            prop_assert_eq!(
                &expected,
                &got,
                "engine output differs from reference at {} workers",
                workers
            );
        }
    }

    /// Open/close churn recycles decode states through the free-list; a
    /// session served from a recycled state must be identical to one
    /// served from a fresh allocation.
    #[test]
    fn free_list_reuse_is_invisible(
        seed in 0u64..10_000,
        rounds in 2usize..5,
    ) {
        let engine = Engine::start(trained_model(), ServeConfig::new(2))
            .expect("engine starts");
        let handle = engine.handle();
        let params = StreamParams::new(seed).streams(2);
        let expected = reference(params);
        for round in 0..rounds {
            let id = handle.open_session(params).expect("session admitted");
            let mut got = Vec::new();
            loop {
                let b = handle
                    .next_events(id, 64, Duration::from_secs(10))
                    .expect("next_events");
                got.extend(data_events(&b.events));
                if b.finished {
                    break;
                }
            }
            handle.close_session(id).expect("close");
            prop_assert_eq!(&expected, &got, "round {} diverged", round);
        }
        // The churn actually exercised the free-list.
        prop_assert!(handle.stats().free_states >= 1);
        engine.shutdown();
    }

    /// Crash-only satellite: `shutdown()` with decode slices in flight and
    /// consumers parked on the delivery condvar must never deadlock — the
    /// workers and the reaper always join, blocked consumers return, and
    /// the handle degrades to a typed shutting-down error.
    #[test]
    fn shutdown_mid_decode_joins_workers(
        seed in 0u64..10_000,
        sessions in 1usize..6,
        consumed in 0usize..3,
    ) {
        let cfg = ServeConfig {
            queue_capacity: 4,
            slice_budget: 2,
            ..ServeConfig::new(4)
        };
        let engine = Engine::start(trained_model(), cfg).expect("engine starts");
        let handle = engine.handle();
        let ids: Vec<SessionId> = (0..sessions as u64)
            .map(|i| {
                handle
                    .open_session(StreamParams::new(seed.wrapping_add(i)).streams(8))
                    .expect("session admitted")
            })
            .collect();
        // Partially drain a prefix of the sessions so a mix of Running,
        // Parked, and freshly Queued slots exists when the shutdown lands.
        for id in ids.iter().take(consumed) {
            handle
                .next_events(*id, 2, Duration::from_millis(20))
                .expect("next_events");
        }
        // Park a consumer mid-wait on the delivery condvar; only its
        // returning matters, not what it returns.
        let blocked = {
            let handle = handle.clone();
            let id = ids[0];
            std::thread::spawn(move || {
                let _ = handle.next_events(id, 64, Duration::from_secs(30));
            })
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let shutter = std::thread::spawn(move || {
            engine.shutdown(); // joins workers and the reaper
            tx.send(()).ok();
        });
        prop_assert!(
            rx.recv_timeout(Duration::from_secs(30)).is_ok(),
            "shutdown deadlocked with parked consumers and live decode"
        );
        shutter.join().expect("shutdown thread joins");
        blocked.join().expect("blocked consumer returns");
        prop_assert!(matches!(
            handle.open_session(StreamParams::new(seed)),
            Err(ServeError::ShuttingDown)
        ));
    }
}

/// Admission control: the cap sheds with a typed error carrying the
/// observed occupancy, and closing a session makes room again.
#[test]
fn session_cap_sheds_with_typed_error() {
    let cfg = ServeConfig {
        max_sessions: 3,
        ..ServeConfig::new(1)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let ids: Vec<SessionId> = (0..3)
        .map(|i| {
            handle
                .open_session(StreamParams::new(i))
                .expect("under cap admits")
        })
        .collect();
    let got = handle.open_session(StreamParams::new(99));
    assert!(
        matches!(&got, Err(ServeError::Overloaded { open: 3, cap: 3, .. })),
        "expected Overloaded with open=3 cap=3, got {got:?}"
    );
    assert_eq!(handle.stats().sessions_shed, 1);
    handle.close_session(ids[0]).expect("close");
    handle
        .open_session(StreamParams::new(100))
        .expect("closing made room");
    engine.shutdown();
}

/// A consumer that never drains parks its session: the queue stays
/// bounded at `queue_capacity` instead of buffering the whole session.
#[test]
fn slow_consumer_is_parked_not_buffered() {
    let cfg = ServeConfig {
        queue_capacity: 4,
        slice_budget: 4,
        ..ServeConfig::new(2)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let id = handle
        .open_session(StreamParams::new(1).streams(8))
        .expect("admitted");
    // Let workers run; with nobody draining, the queue must cap at 4.
    std::thread::sleep(Duration::from_millis(200));
    let stats = handle.stats();
    assert!(
        stats.queued_events <= 4,
        "parked session buffered {} events past its 4-event queue",
        stats.queued_events
    );
    // Draining un-parks and eventually completes the session.
    let mut total = 0usize;
    loop {
        let b = handle
            .next_events(id, 2, Duration::from_secs(10))
            .expect("next_events");
        total += b.events.len();
        if b.finished {
            break;
        }
    }
    assert!(total > 4, "session produced more than one queue's worth");
    handle.close_session(id).expect("close");
    engine.shutdown();
}

/// Unknown and double-closed session ids are typed errors, not panics.
#[test]
fn unknown_sessions_are_typed_errors() {
    let engine =
        Engine::start(trained_model(), ServeConfig::new(1)).expect("engine starts");
    let handle = engine.handle();
    assert!(matches!(
        handle.next_events(SessionId(42), 1, Duration::ZERO),
        Err(ServeError::UnknownSession(42))
    ));
    assert!(matches!(
        handle.close_session(SessionId(42)),
        Err(ServeError::UnknownSession(42))
    ));
    let id = handle.open_session(StreamParams::new(7)).expect("admitted");
    handle.close_session(id).expect("first close");
    assert!(matches!(
        handle.close_session(id),
        Err(ServeError::UnknownSession(_))
    ));
    engine.shutdown();
}
