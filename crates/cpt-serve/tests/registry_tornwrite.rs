//! Property tests for registry crash recovery (satellite 3): truncate or
//! bit-flip the manifest or an artifact at an *arbitrary* byte offset and
//! reopen — startup must always land on the last durable intact version,
//! with the damage quarantined, never serve damaged bytes, and never
//! panic.
//!
//! The pristine registry (v1 promoted, then v2 promoted over it, so there
//! is a live version, a draining predecessor, and a manifest backup) is
//! built once; each case copies it, applies one deterministic injury, and
//! runs full recovery.

use cpt_gpt::{CptGpt, CptGptConfig, Tokenizer, TrainConfig};
use cpt_serve::registry::{canary_fingerprint, Registry, VersionState, MANIFEST};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn trained_model() -> &'static CptGpt {
    static MODEL: OnceLock<CptGpt> = OnceLock::new();
    MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        model
    })
}

/// The pristine two-version registry every case starts from: v1 staged,
/// validated, promoted; then v2 staged, validated, promoted over it. The
/// last durable commit therefore has v2 live and v1 draining, and
/// `manifest.prev.json` holds the state one commit earlier.
fn template_root() -> &'static Path {
    static ROOT: OnceLock<PathBuf> = OnceLock::new();
    ROOT.get_or_init(|| {
        let dir = std::env::temp_dir()
            .join(format!("cpt-tornwrite-template-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut reg, report) = Registry::open(&dir).expect("template registry opens");
        assert!(report.is_clean());
        let model = trained_model();
        for note in ["template v1", "template v2"] {
            let id = reg.stage(model, note).expect("stage");
            reg.validate(id).expect("validate");
            reg.promote(id).expect("promote");
        }
        assert_eq!(reg.live(), Some(2));
        dir
    })
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create case dir");
    for entry in std::fs::read_dir(src).expect("read template dir").flatten() {
        let ty = entry.file_type().expect("entry type");
        let to = dst.join(entry.file_name());
        if ty.is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy template file");
        }
    }
}

/// A per-case scratch copy of the template registry, removed on drop.
struct CaseRoot(PathBuf);

impl CaseRoot {
    fn new() -> CaseRoot {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let n = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("cpt-tornwrite-case-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        copy_dir(template_root(), &dir);
        CaseRoot(dir)
    }
}

impl Drop for CaseRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Which file the injury lands on.
#[derive(Debug, Clone, Copy)]
enum Target {
    Manifest,
    LiveArtifact,
    PrevArtifact,
}

impl Target {
    fn path(self, root: &Path) -> PathBuf {
        match self {
            Target::Manifest => root.join(MANIFEST),
            Target::LiveArtifact => root.join("versions/v0002/model.json"),
            Target::PrevArtifact => root.join("versions/v0001/model.json"),
        }
    }
}

/// Damage one file at a deterministic byte offset: truncate everything
/// from the offset on, or flip one bit there.
fn injure(path: &Path, truncate: bool, offset_frac: f64) {
    let mut bytes = std::fs::read(path).expect("read injury target");
    assert!(!bytes.is_empty(), "injury target is empty");
    let offset = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);
    if truncate {
        bytes.truncate(offset);
    } else {
        bytes[offset] ^= 0x01;
    }
    std::fs::write(path, &bytes).expect("write injured file");
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        Just(Target::Manifest),
        Just(Target::LiveArtifact),
        Just(Target::PrevArtifact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever single injury lands wherever it lands, recovery succeeds,
    /// a live version exists, its artifact loads and passes the canary,
    /// and a damaged artifact is never the one served.
    #[test]
    fn recovery_always_lands_on_a_durable_intact_version(
        target in arb_target(),
        truncate in prop_oneof![Just(true), Just(false)],
        offset_frac in 0.0f64..1.0,
    ) {
        let case = CaseRoot::new();
        injure(&target.path(&case.0), truncate, offset_frac);

        let (mut reg, report) =
            Registry::open(&case.0).expect("recovery must succeed after any single injury");

        let live = reg.live().expect("a durable version must survive");
        prop_assert!(live == 1 || live == 2, "live fell outside the known versions: {live}");
        let rec = reg.manifest().record(live).expect("live record exists");
        prop_assert_eq!(rec.state, VersionState::Live);

        let (loaded_id, model) = reg
            .load_live()
            .expect("the recovered live artifact must load cleanly");
        prop_assert_eq!(loaded_id, live);
        prop_assert!(
            canary_fingerprint(&model).is_ok(),
            "the recovered live model must pass the canary"
        );

        match target {
            // Damaging the live artifact must demote it: v2 is
            // quarantined and the registry falls back to v1.
            Target::LiveArtifact => {
                prop_assert_eq!(live, 1, "damaged live version still serving");
                prop_assert!(
                    report.quarantined.iter().any(|(id, _)| *id == 2),
                    "damaged v2 not quarantined: {:?}",
                    report.quarantined
                );
            }
            // Damaging the draining predecessor must not disturb the
            // live version.
            Target::PrevArtifact => {
                prop_assert_eq!(live, 2, "intact live version was demoted");
                prop_assert!(
                    report.quarantined.iter().any(|(id, _)| *id == 1),
                    "damaged v1 not quarantined: {:?}",
                    report.quarantined
                );
            }
            // A damaged manifest recovers from the current file (if the
            // injury left it parseable and consistent) or the previous
            // commit's backup — either way onto an intact version, which
            // the generic assertions above already proved.
            Target::Manifest => {}
        }
    }
}
