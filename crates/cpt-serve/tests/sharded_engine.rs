//! Integration tests for the shared-nothing sharded engine: per-session
//! output is bit-identical at any shard × worker shape, the admission cap
//! is strict under concurrent opens racing across shards, occupancy and
//! imbalance stats are coherent, detach/reattach and drain work when the
//! parked group spans shards, and version promote/rollback sweeps on
//! per-shard refcounts.

use cpt_gpt::{CptGpt, CptGptConfig, StreamParams, Tokenizer, TrainConfig};
use cpt_serve::{Engine, ServeConfig, ServeError, SessionId};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

type DecodedEvent = cpt_gpt::SessionEvent;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn trained_model() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// A second, differently-trained version for promote/rollback tests.
fn trained_v2() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let mut model = (*trained_model()).clone();
        cpt_gpt::train(
            &mut model,
            &alternating_dataset(12),
            &TrainConfig::quick().with_epochs(1),
        )
        .expect("fixture v2 training failed");
        Arc::new(model)
    }))
}

/// Ground truth: a fresh single-session decoder on `model`, drained fully.
fn reference(model: &Arc<CptGpt>, params: StreamParams) -> Vec<DecodedEvent> {
    let mut dec = model.open_session(params).expect("open reference session");
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event(model) {
        out.push(ev);
    }
    out
}

/// Drains one session to completion on a running engine.
fn drain_session(handle: &cpt_serve::ServeHandle, id: SessionId) -> Vec<DecodedEvent> {
    let mut out = Vec::new();
    loop {
        let b = handle
            .next_events(id, 64, Duration::from_secs(10))
            .expect("next_events");
        out.extend(b.events.iter().map(|e| {
            assert!(!e.is_failure(), "unexpected failure record: {e:?}");
            *e.data().expect("data event")
        }));
        if b.finished {
            handle.close_session(id).expect("close finished session");
            return out;
        }
    }
}

/// The tentpole determinism contract: the same 24 seeds produce
/// bit-identical per-session streams at every shard × worker shape,
/// matching the fresh single-session reference — steering, per-shard
/// free-lists, and worker counts must never leak into the output.
#[test]
fn bit_identical_at_any_shard_and_worker_count() {
    let all_params: Vec<StreamParams> = (0..24u64)
        .map(|i| StreamParams::new(1000 + i * 7919).streams(1 + (i as usize) % 2))
        .collect();
    let expected: Vec<Vec<DecodedEvent>> = all_params
        .iter()
        .map(|p| reference(&trained_model(), *p))
        .collect();
    for (shards, workers) in [(1usize, 1usize), (1, 8), (4, 4), (8, 8), (8, 1)] {
        let cfg = ServeConfig {
            shards,
            slice_budget: 3,
            queue_capacity: 8,
            ..ServeConfig::new(workers)
        };
        let engine = Engine::start(trained_model(), cfg).expect("engine starts");
        let handle = engine.handle();
        let ids: Vec<SessionId> = all_params
            .iter()
            .map(|p| handle.open_session(*p).expect("session admitted"))
            .collect();
        let got: Vec<Vec<DecodedEvent>> =
            ids.iter().map(|id| drain_session(&handle, *id)).collect();
        engine.shutdown();
        assert_eq!(
            expected, got,
            "output diverged at {shards} shards / {workers} workers"
        );
    }
}

/// Occupancy and imbalance stats: every shard is reported, the max/min
/// bracket the mean, and the totals agree with the global gauges.
#[test]
fn occupancy_and_imbalance_stats_are_coherent() {
    let cfg = ServeConfig {
        shards: 4,
        ..ServeConfig::new(4)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let ids: Vec<SessionId> = (0..24u64)
        .map(|i| {
            handle
                .open_session(StreamParams::new(i * 131))
                .expect("session admitted")
        })
        .collect();
    let stats = handle.stats();
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.sessions_open, 24);
    assert!(
        stats.shard_sessions_max >= stats.shard_sessions_min,
        "imbalance bracket inverted: max {} < min {}",
        stats.shard_sessions_max,
        stats.shard_sessions_min
    );
    // Pigeonhole: with 24 sessions on 4 shards the fullest holds >= 6 and
    // the emptiest <= 6.
    assert!(stats.shard_sessions_max >= 6);
    assert!(stats.shard_sessions_min <= 6);
    assert!(
        stats.shard_runnable_max >= stats.shard_runnable_min,
        "runnable bracket inverted"
    );
    for id in ids {
        handle.close_session(id).expect("close");
    }
    let stats = handle.stats();
    assert_eq!(stats.sessions_open, 0);
    assert_eq!(stats.shard_sessions_max, 0);
    engine.shutdown();
}

/// The admission cap is strict even when opens race from many threads
/// across shards: the open gauge is reserved before shard placement, so
/// the cap can never be overshot, and every rejection is a typed
/// `Overloaded` counted as a shed.
#[test]
fn admission_cap_is_strict_under_concurrent_opens() {
    let cfg = ServeConfig {
        shards: 4,
        max_sessions: 16,
        ..ServeConfig::new(4)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let opened: Vec<SessionId> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4u64)
            .map(|t| {
                let handle = handle.clone();
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..16u64 {
                        match handle.open_session(StreamParams::new(t * 1000 + i)) {
                            Ok(id) => mine.push(id),
                            Err(ServeError::Overloaded { open, cap, .. }) => {
                                assert!(open >= cap, "shed below cap: open {open} cap {cap}");
                            }
                            Err(other) => panic!("unexpected open error: {other:?}"),
                        }
                    }
                    mine
                })
            })
            .collect();
        joins
            .into_iter()
            .flat_map(|j| j.join().expect("opener thread"))
            .collect()
    });
    assert_eq!(opened.len(), 16, "exactly the cap must be admitted");
    let stats = handle.stats();
    assert_eq!(stats.sessions_open, 16);
    assert_eq!(stats.sessions_shed, 64 - 16);
    engine.shutdown();
}

/// Detach/reattach with a parked group spanning shards: delivery resumes
/// exactly where it stopped on every session, and the final streams match
/// the reference bit for bit.
#[test]
fn detach_reattach_spans_shards() {
    let cfg = ServeConfig {
        shards: 4,
        slice_budget: 3,
        queue_capacity: 8,
        ..ServeConfig::new(4)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let all_params: Vec<StreamParams> = (0..8u64)
        .map(|i| StreamParams::new(4000 + i * 97).streams(2))
        .collect();
    let ids: Vec<SessionId> = all_params
        .iter()
        .map(|p| handle.open_session(*p).expect("session admitted"))
        .collect();
    // Consume a partial prefix from each session so the resume point is
    // mid-stream, not at the start.
    let mut prefixes: Vec<Vec<DecodedEvent>> = Vec::new();
    for id in &ids {
        let b = handle
            .next_events(*id, 2, Duration::from_secs(10))
            .expect("partial drain");
        prefixes.push(b.events.iter().map(|e| *e.data().expect("data")).collect());
    }
    let token = handle.detach_sessions(&ids).expect("detach all");
    let mut back = handle.reattach(token).expect("reattach");
    back.sort();
    let mut want = ids.clone();
    want.sort();
    assert_eq!(back, want, "every parked session comes back");
    // A redeemed token is single-use.
    assert!(matches!(
        handle.reattach(token),
        Err(ServeError::UnknownToken)
    ));
    for ((id, prefix), params) in ids.iter().zip(prefixes).zip(&all_params) {
        let mut got = prefix;
        got.extend(drain_session(&handle, *id));
        assert_eq!(
            reference(&trained_model(), *params),
            got,
            "stream diverged across detach/reattach"
        );
    }
    engine.shutdown();
}

/// Drain with sessions spread across shards: every session finishes
/// within the deadline, admission is suspended engine-wide (all shards),
/// and `resume_admission` reopens it.
#[test]
fn drain_suspends_admission_across_shards() {
    let cfg = ServeConfig {
        shards: 4,
        ..ServeConfig::new(4)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let ids: Vec<SessionId> = (0..8u64)
        .map(|i| {
            handle
                .open_session(StreamParams::new(6000 + i * 31))
                .expect("session admitted")
        })
        .collect();
    let report = handle.drain(Duration::from_secs(30));
    assert_eq!(report.force_failed, 0, "small sessions finish in time");
    assert_eq!(report.completed, 8);
    assert!(handle.is_draining());
    assert!(matches!(
        handle.open_session(StreamParams::new(7777)),
        Err(ServeError::Draining)
    ));
    // Decoded events are still deliverable after the drain.
    for id in ids {
        let b = handle
            .next_events(id, 1024, Duration::from_secs(10))
            .expect("post-drain delivery");
        assert!(!b.events.is_empty() || b.finished);
    }
    handle.resume_admission();
    handle
        .open_session(StreamParams::new(8888))
        .expect("admission resumes");
    engine.shutdown();
}

/// Promote and rollback with sessions pinned across shards: per-version
/// session counts are summed over shards, sessions opened after the
/// promote decode on the new version, pinned sessions finish on their
/// original version, and rollback restores the old live version.
#[test]
fn promote_and_rollback_with_per_shard_refcounts() {
    let cfg = ServeConfig {
        shards: 4,
        slice_budget: 3,
        queue_capacity: 8,
        ..ServeConfig::new(4)
    };
    let engine = Engine::start(trained_model(), cfg).expect("engine starts");
    let handle = engine.handle();
    let v1_params: Vec<StreamParams> = (0..8u64)
        .map(|i| StreamParams::new(9000 + i * 61).streams(2))
        .collect();
    let v1_ids: Vec<SessionId> = v1_params
        .iter()
        .map(|p| handle.open_session(*p).expect("session admitted"))
        .collect();
    // Nudge each session mid-stream so it is live when the promote lands.
    for id in &v1_ids {
        handle
            .next_events(*id, 1, Duration::from_secs(10))
            .expect("partial drain");
    }

    handle.install_version(2, trained_v2());
    assert_eq!(handle.promote_version(2).expect("promote"), Some(1));
    assert_eq!(handle.live_version(), 2);
    let per: Vec<(u64, u64)> = handle.sessions_per_version();
    assert_eq!(
        per.iter().find(|(v, _)| *v == 1).map(|(_, n)| *n),
        Some(8),
        "pinned v1 sessions survive the promote: {per:?}"
    );

    // A post-promote session decodes on v2, wherever it is steered.
    let new_params = StreamParams::new(12345).streams(1);
    let new_id = handle.open_session(new_params).expect("open on v2");
    assert_eq!(
        reference(&trained_v2(), new_params),
        drain_session(&handle, new_id),
        "post-promote session must decode on the new version"
    );

    // The pinned originals still complete byte-identically on v1.
    for (id, params) in v1_ids.iter().zip(&v1_params) {
        let mut got: Vec<DecodedEvent> = Vec::new();
        // Their first event was already consumed above; re-derive it from
        // the reference instead of tracking it.
        let want = reference(&trained_model(), *params);
        got.push(want[0]);
        got.extend(drain_session(&handle, *id));
        assert_eq!(want, got, "v1-pinned session diverged after promote");
    }
    // Every v1 session is closed, but v1 is the rollback target: it stays
    // installed at zero refs rather than being swept.
    let per = handle.sessions_per_version();
    assert_eq!(
        per.iter().find(|(v, _)| *v == 1).map(|(_, n)| *n),
        Some(0),
        "rollback target retained unpinned: {per:?}"
    );

    // Rollback demotes v2 and restores v1 engine-wide.
    let (demoted, live) = handle.rollback_version().expect("rollback to v1");
    assert_eq!((demoted, live), (2, 1));
    assert_eq!(handle.live_version(), 1);
    // v2 has no pinned sessions left (its one session closed above), is
    // retired, and is neither live nor the rollback target — swept.
    let per = handle.sessions_per_version();
    assert!(
        !per.iter().any(|(v, _)| *v == 2),
        "demoted unpinned version swept on rollback: {per:?}"
    );
    // The rollback consumed the target; a second one must fail typed.
    assert!(matches!(
        handle.rollback_version(),
        Err(ServeError::NoPreviousVersion)
    ));

    // Promoting twice displaces the older rollback target, which sweeps
    // once unpinned: after promote(3) then promote(4), v1 is gone.
    handle.install_version(3, trained_v2());
    assert_eq!(handle.promote_version(3).expect("promote v3"), Some(1));
    handle.install_version(4, trained_model());
    assert_eq!(handle.promote_version(4).expect("promote v4"), Some(3));
    let per = handle.sessions_per_version();
    assert!(
        !per.iter().any(|(v, _)| *v == 1),
        "displaced rollback target swept: {per:?}"
    );
    assert_eq!(handle.live_version(), 4);
    engine.shutdown();
}
