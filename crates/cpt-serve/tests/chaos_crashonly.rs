//! Crash-only acceptance tests for the serving engine: contained worker
//! panics, bounded drains, detach/reattach, and token-TTL reclamation —
//! all driven by the deterministic [`ChaosPlan`].
//!
//! The acceptance criterion from the failure-model design: a chaos plan
//! that panics one worker mid-slice must fail *only* the targeted session
//! (its consumer sees the decoded prefix plus one terminal failure
//! record), every other session's event stream must be byte-identical to
//! an uninjected run at 1, 2, and 8 workers, and a reattached consumer
//! must resume parked sessions byte-identically.
//!
//! This file deliberately avoids proptest and runtime JSON so it can run
//! under `scripts/offline-check.sh test -p cpt-serve --test
//! chaos_crashonly` in sandboxed environments.

use cpt_gpt::{
    CptGpt, CptGptConfig, StreamParams, Tokenizer, TrainConfig,
};
use cpt_serve::{
    ChaosPlan, Engine, ServeConfig, ServeError, ServeHandle, SessionEvent, SessionId,
};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn trained_model() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// Ground truth for a session: a fresh decoder drained to completion,
/// wrapped as delivered data events.
fn reference(params: StreamParams) -> Vec<SessionEvent> {
    let model = trained_model();
    let mut dec = model.open_session(params).expect("open reference session");
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event(&model) {
        out.push(SessionEvent::Data(ev));
    }
    out
}

/// Drains one session to `finished`, returning its full delivered stream.
fn drain_session(handle: &ServeHandle, id: SessionId, batch: usize) -> Vec<SessionEvent> {
    let mut out = Vec::new();
    loop {
        let b = handle
            .next_events(id, batch, Duration::from_secs(10))
            .expect("next_events on open session");
        out.extend(b.events);
        if b.finished {
            handle.close_session(id).expect("close drained session");
            return out;
        }
    }
}

/// Opens `params` in order on an engine with `chaos` and drains every
/// session round-robin; returns each session's full stream.
fn run_engine(
    workers: usize,
    chaos: ChaosPlan,
    all_params: &[StreamParams],
) -> (Vec<Vec<SessionEvent>>, cpt_serve::StatsSnapshot) {
    let cfg = ServeConfig {
        slice_budget: 3,
        queue_capacity: 8,
        ..ServeConfig::new(workers)
    };
    let engine =
        Engine::start_with_chaos(trained_model(), cfg, chaos).expect("engine starts");
    let handle = engine.handle();
    let ids: Vec<SessionId> = all_params
        .iter()
        .map(|p| handle.open_session(*p).expect("session admitted"))
        .collect();
    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); ids.len()];
    let mut done = vec![false; ids.len()];
    while !done.iter().all(|d| *d) {
        for (i, id) in ids.iter().enumerate() {
            if done[i] {
                continue;
            }
            let b = handle
                .next_events(*id, 5, Duration::from_secs(10))
                .expect("next_events");
            outputs[i].extend(b.events);
            if b.finished {
                handle.close_session(*id).expect("close");
                done[i] = true;
            }
        }
    }
    let stats = handle.stats();
    engine.shutdown();
    (outputs, stats)
}

/// The acceptance criterion: an injected worker panic fails only the
/// targeted session; every other stream is byte-identical to an
/// uninjected run at 1, 2, and 8 workers.
#[test]
fn injected_panic_fails_only_the_targeted_session_at_any_worker_count() {
    let all_params: Vec<StreamParams> = (0..8u64)
        .map(|i| StreamParams::new(1000 + i * 7919).streams(2))
        .collect();
    let expected: Vec<Vec<SessionEvent>> =
        all_params.iter().map(|p| reference(*p)).collect();
    // Sessions are opened in order from one thread, so engine ids are
    // 1..=N deterministically; target the third session after it has
    // emitted 2 events.
    let target_idx = 2usize;
    let target_id = target_idx as u64 + 1;
    let panic_at = 2u64;
    let chaos = ChaosPlan::panic_session_at(target_id, panic_at);

    for workers in [1usize, 2, 8] {
        let (got, stats) = run_engine(workers, chaos, &all_params);
        for (i, stream) in got.iter().enumerate() {
            if i == target_idx {
                // Decoded prefix (exactly `panic_at` events), then one
                // terminal failure record — nothing after it.
                let expect_prefix = &expected[i][..panic_at as usize];
                assert_eq!(
                    &stream[..panic_at as usize],
                    expect_prefix,
                    "targeted session's prefix diverged at {workers} workers"
                );
                assert_eq!(
                    stream.len(),
                    panic_at as usize + 1,
                    "targeted session should end right after the failure record"
                );
                let last = stream.last().expect("non-empty");
                assert!(
                    matches!(last, SessionEvent::Failed { reason } if reason.contains("chaos")),
                    "expected a chaos failure record, got {last:?}"
                );
            } else {
                assert_eq!(
                    stream, &expected[i],
                    "non-targeted session {i} diverged at {workers} workers"
                );
            }
        }
        assert_eq!(stats.worker_panics, 1, "exactly one contained panic");
        assert_eq!(stats.sessions_failed, 1, "exactly one failed session");
        // The uninjected comparison run is implicit: `expected` comes from
        // fresh single-session decoders, which the engine matches.
    }
}

/// A worker that panicked re-enters its loop: with a single worker, the
/// engine must still finish other sessions after containing a panic.
#[test]
fn single_worker_survives_a_contained_panic() {
    let chaos = ChaosPlan::panic_session_at(1, 0); // first session, first event
    let cfg = ServeConfig {
        slice_budget: 4,
        ..ServeConfig::new(1)
    };
    let engine =
        Engine::start_with_chaos(trained_model(), cfg, chaos).expect("engine starts");
    let handle = engine.handle();
    let doomed = handle
        .open_session(StreamParams::new(7))
        .expect("doomed session admitted");
    let healthy = handle
        .open_session(StreamParams::new(8).streams(2))
        .expect("healthy session admitted");

    let doomed_stream = drain_session(&handle, doomed, 64);
    assert_eq!(doomed_stream.len(), 1, "no data events before an at-0 panic");
    assert!(doomed_stream[0].is_failure());

    let healthy_stream = drain_session(&handle, healthy, 64);
    assert_eq!(
        healthy_stream,
        reference(StreamParams::new(8).streams(2)),
        "the surviving worker must decode untouched sessions byte-identically"
    );
    // And the engine still admits + completes brand-new work.
    let after = handle
        .open_session(StreamParams::new(9))
        .expect("engine admits after a contained panic");
    assert_eq!(drain_session(&handle, after, 64), reference(StreamParams::new(9)));
    engine.shutdown();
}

/// Drain with a generous deadline: live sessions finish decoding, nothing
/// is force-failed, admission is suspended until `resume_admission`.
#[test]
fn drain_completes_live_sessions_and_suspends_admission() {
    let engine = Engine::start(trained_model(), ServeConfig::new(2)).expect("starts");
    let handle = engine.handle();
    let a = handle.open_session(StreamParams::new(1)).expect("admitted");
    let b = handle.open_session(StreamParams::new(2)).expect("admitted");

    let report = handle.drain(Duration::from_secs(30));
    assert_eq!(report.completed, 2);
    assert_eq!(report.force_failed, 0);
    assert!(handle.is_draining());
    assert!(
        matches!(
            handle.open_session(StreamParams::new(3)),
            Err(ServeError::Draining)
        ),
        "admission must shed with the typed draining error"
    );

    // Delivery continues after the drain: both sessions produce their full
    // reference streams.
    assert_eq!(drain_session(&handle, a, 64), reference(StreamParams::new(1)));
    assert_eq!(drain_session(&handle, b, 64), reference(StreamParams::new(2)));

    handle.resume_admission();
    assert!(!handle.is_draining());
    handle
        .open_session(StreamParams::new(3))
        .expect("admission resumes after resume_admission");
    engine.shutdown();
}

/// Drain with a deadline too short for a parked session (its consumer
/// never drains): the straggler is force-failed with a terminal record.
#[test]
fn drain_force_fails_parked_stragglers_at_the_deadline() {
    let cfg = ServeConfig {
        queue_capacity: 4,
        slice_budget: 4,
        ..ServeConfig::new(2)
    };
    let engine = Engine::start(trained_model(), cfg).expect("starts");
    let handle = engine.handle();
    let id = handle
        .open_session(StreamParams::new(5).streams(8))
        .expect("admitted");
    // Wait until the undrained session parks on its full queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.stats().queued_events < 4 {
        assert!(Instant::now() < deadline, "session never filled its queue");
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = handle.drain(Duration::from_millis(50));
    assert_eq!(report.force_failed, 1, "the parked session is a straggler");
    assert_eq!(handle.stats().sessions_force_failed, 1);

    // Its consumer still gets the buffered events plus the terminal record.
    let stream = drain_session(&handle, id, 64);
    let last = stream.last().expect("non-empty stream");
    assert!(
        matches!(last, SessionEvent::Failed { reason } if reason.contains("drain")),
        "expected a drain failure record, got {last:?}"
    );
    assert!(
        stream.iter().take(stream.len() - 1).all(|e| !e.is_failure()),
        "exactly one terminal failure record"
    );
    engine.shutdown();
}

/// Detach parks sessions under a capability token; reattaching resumes
/// delivery exactly where it stopped — the combined stream is
/// byte-identical to an undisturbed run.
#[test]
fn reattached_sessions_resume_byte_identically() {
    let cfg = ServeConfig {
        queue_capacity: 8,
        slice_budget: 3,
        ..ServeConfig::new(2)
    };
    let engine = Engine::start(trained_model(), cfg).expect("starts");
    let handle = engine.handle();
    let params = StreamParams::new(77).streams(4);
    let expected = reference(params);
    let id = handle.open_session(params).expect("admitted");

    // Deliver a few events, then detach mid-stream.
    let before = handle
        .next_events(id, 3, Duration::from_secs(10))
        .expect("partial delivery");
    assert!(!before.finished, "fixture session must outlive the prefix");
    let token = handle.detach_sessions(&[id]).expect("detach");

    // While parked the session is unreachable to ordinary consumers...
    assert!(matches!(
        handle.next_events(id, 1, Duration::ZERO),
        Err(ServeError::UnknownSession(_))
    ));
    assert!(matches!(
        handle.close_session(id),
        Err(ServeError::UnknownSession(_))
    ));
    // ...but keeps decoding into its bounded queue in the background.
    std::thread::sleep(Duration::from_millis(100));

    let ids = handle.reattach(token).expect("token redeems");
    assert_eq!(ids, vec![id]);
    // A token is single-use.
    assert!(matches!(
        handle.reattach(token),
        Err(ServeError::UnknownToken)
    ));

    let mut got = before.events;
    got.extend(drain_session(&handle, id, 5));
    assert_eq!(got, expected, "reattached stream diverged from reference");

    let stats = handle.stats();
    assert_eq!(stats.sessions_detached, 1);
    assert_eq!(stats.sessions_reattached, 1);
    engine.shutdown();
}

/// An unredeemed token expires: the reaper reclaims the parked sessions
/// and later reattach attempts get the typed unknown-token error.
#[test]
fn expired_detach_tokens_are_reaped() {
    let cfg = ServeConfig {
        detach_ttl_secs: 1,
        ..ServeConfig::new(1)
    };
    let engine = Engine::start(trained_model(), cfg).expect("starts");
    let handle = engine.handle();
    let id = handle
        .open_session(StreamParams::new(3))
        .expect("admitted");
    let token = handle.detach_sessions(&[id]).expect("detach");
    assert_eq!(handle.sessions_open(), 1, "parked sessions stay open");

    // Past the TTL the reaper reclaims the slot and the token dies.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.sessions_open() > 0 {
        assert!(Instant::now() < deadline, "reaper never reclaimed the session");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(matches!(
        handle.reattach(token),
        Err(ServeError::UnknownToken)
    ));
    assert_eq!(handle.stats().sessions_expired, 1);

    // The reclaimed slot is genuinely free: a new session is admitted and
    // decodes to the reference.
    let fresh = handle.open_session(StreamParams::new(4)).expect("admitted");
    assert_eq!(drain_session(&handle, fresh, 64), reference(StreamParams::new(4)));
    engine.shutdown();
}

/// The reaper parks on a condvar rather than polling: an engine holding
/// a detach token with an enormous TTL must still shut down promptly —
/// a TTL-length sleep in the reaper would stall this join for days.
#[test]
fn reaper_with_huge_ttl_does_not_delay_shutdown() {
    let cfg = ServeConfig {
        detach_ttl_secs: 1_000_000,
        ..ServeConfig::new(1)
    };
    let engine = Engine::start(trained_model(), cfg).expect("starts");
    let handle = engine.handle();
    let id = handle
        .open_session(StreamParams::new(3))
        .expect("admitted");
    let _token = handle.detach_sessions(&[id]).expect("detach");

    let begin = Instant::now();
    engine.shutdown();
    assert!(
        begin.elapsed() < Duration::from_secs(10),
        "shutdown stalled behind the reaper's TTL wait ({:?})",
        begin.elapsed()
    );
}

/// Garbage and never-minted tokens are typed errors.
#[test]
fn bogus_tokens_are_typed_errors() {
    let engine = Engine::start(trained_model(), ServeConfig::new(1)).expect("starts");
    let handle = engine.handle();
    assert!(matches!(
        handle.reattach(cpt_serve::DetachToken(0xDEAD_BEEF)),
        Err(ServeError::UnknownToken)
    ));
    assert!(matches!(
        handle.detach_sessions(&[SessionId(999)]),
        Err(ServeError::UnknownSession(999))
    ));
    engine.shutdown();
}
