//! Acceptance properties for cross-session batched decode: the batched
//! engine (packed per-layer GEMMs over whatever sessions a worker holds)
//! must be byte-identical to the sequential engine *and* to the
//! fresh-state single-session reference — at 1, 2, and 8 workers, for
//! any `batch_max` in 1..=64, with sessions joining and leaving
//! mid-stream, and with a chaos panic injected inside a batch failing
//! only the targeted entry's session.
//!
//! (These are proptests; the deterministic offline-runnable coverage of
//! the batched path lives in `chaos_crashonly.rs` and
//! `engine_determinism.rs`, which run it via the default config.)

use cpt_gpt::{CptGpt, CptGptConfig, StreamParams, Tokenizer, TrainConfig};
use cpt_serve::{ChaosPlan, Engine, ServeConfig, SessionEvent, SessionId, StatsSnapshot};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

fn trained_model() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// Ground truth: a fresh single-session decoder drained to completion,
/// wrapped as delivered data events.
fn reference(params: StreamParams) -> Vec<SessionEvent> {
    let model = trained_model();
    let mut dec = model.open_session(params).expect("open reference session");
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event(&model) {
        out.push(SessionEvent::Data(ev));
    }
    out
}

/// Runs every session to completion on one engine, returning each
/// session's full delivered stream plus the final stats snapshot.
///
/// With `stagger`, only the first half of the sessions is opened up
/// front; a couple of events are pulled from each (so they are genuinely
/// mid-stream), then the second half joins — batch composition changes as
/// sessions join, and again as each one finishes and leaves.
fn run_engine(
    cfg: ServeConfig,
    chaos: ChaosPlan,
    all_params: &[StreamParams],
    stagger: bool,
) -> (Vec<Vec<SessionEvent>>, StatsSnapshot) {
    let engine = Engine::start_with_chaos(trained_model(), cfg, chaos).expect("engine starts");
    let handle = engine.handle();
    let n = all_params.len();
    let mut ids: Vec<Option<SessionId>> = vec![None; n];
    let mut outputs: Vec<Vec<SessionEvent>> = vec![Vec::new(); n];
    let mut done = vec![false; n];
    let first_wave = if stagger { n.div_ceil(2) } else { n };
    for i in 0..first_wave {
        ids[i] = Some(handle.open_session(all_params[i]).expect("session admitted"));
    }
    if stagger {
        for i in 0..first_wave {
            let id = ids[i].expect("opened");
            let b = handle
                .next_events(id, 2, Duration::from_secs(10))
                .expect("next_events");
            outputs[i].extend(b.events);
            if b.finished {
                handle.close_session(id).expect("close");
                done[i] = true;
            }
        }
        for i in first_wave..n {
            ids[i] = Some(handle.open_session(all_params[i]).expect("session admitted"));
        }
    }
    while !done.iter().all(|d| *d) {
        for i in 0..n {
            if done[i] {
                continue;
            }
            let id = ids[i].expect("opened");
            let b = handle
                .next_events(id, 5, Duration::from_secs(10))
                .expect("next_events");
            outputs[i].extend(b.events);
            if b.finished {
                handle.close_session(id).expect("close");
                done[i] = true;
            }
        }
    }
    let stats = handle.stats();
    engine.shutdown();
    (outputs, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole property: for any worker count, any `batch_max` in
    /// 1..=64, and sessions joining/leaving mid-stream, the batched
    /// engine's per-session output is byte-identical to both the
    /// sequential engine and the single-session reference.
    #[test]
    fn batched_decode_matches_sequential_engine_and_reference(
        seed in 0u64..10_000,
        sessions in 1usize..6,
        streams in 1usize..4,
        batch_max in 1usize..=64,
    ) {
        let all_params: Vec<StreamParams> = (0..sessions as u64)
            .map(|i| StreamParams::new(seed.wrapping_add(i * 7919)).streams(streams))
            .collect();
        let expected: Vec<Vec<SessionEvent>> =
            all_params.iter().map(|p| reference(*p)).collect();
        for workers in [1usize, 2, 8] {
            let base = ServeConfig {
                slice_budget: 3,
                queue_capacity: 8,
                ..ServeConfig::new(workers)
            };
            let (seq, seq_stats) = run_engine(
                ServeConfig { batch_decode: false, ..base },
                ChaosPlan::default(),
                &all_params,
                true,
            );
            let (bat, bat_stats) = run_engine(
                ServeConfig { batch_decode: true, batch_max, ..base },
                ChaosPlan::default(),
                &all_params,
                true,
            );
            prop_assert_eq!(
                &seq, &expected,
                "sequential engine diverged from reference at {} workers", workers
            );
            prop_assert_eq!(
                &bat, &expected,
                "batched engine diverged from reference at {} workers / batch_max {}",
                workers, batch_max
            );
            // Each run decoded through the path it was configured for,
            // and the occupancy accounting is wired up.
            prop_assert!(seq_stats.sequential_tokens > 0 && seq_stats.batched_tokens == 0);
            prop_assert!(bat_stats.batched_tokens > 0 && bat_stats.sequential_tokens == 0);
            prop_assert!(bat_stats.batch_rounds > 0);
            prop_assert!(bat_stats.batch_peak as usize <= batch_max);
        }
    }

    /// Containment inside a batch: a chaos panic targeting one session
    /// fails only that entry — its consumer sees exactly the pre-panic
    /// prefix plus one terminal failure record, while every other session
    /// in the same batches stays byte-identical to the reference.
    #[test]
    fn chaos_panic_inside_a_batch_fails_only_the_target(
        seed in 0u64..10_000,
        target_idx in 0usize..4,
        panic_at in 0u64..4,
    ) {
        let all_params: Vec<StreamParams> = (0..4u64)
            .map(|i| StreamParams::new(seed.wrapping_add(i * 131)).streams(2))
            .collect();
        let expected: Vec<Vec<SessionEvent>> =
            all_params.iter().map(|p| reference(*p)).collect();
        // Sessions open in order from one thread, so engine ids are 1..=N.
        let chaos = ChaosPlan::panic_session_at(target_idx as u64 + 1, panic_at);
        // One wide-open worker batch: the target is advanced in the same
        // packed GEMM as its neighbours when they are runnable together.
        let cfg = ServeConfig {
            slice_budget: 4,
            queue_capacity: 8,
            batch_max: 64,
            ..ServeConfig::new(2)
        };
        let (got, stats) = run_engine(cfg, chaos, &all_params, false);
        // The panic fires iff the target would ever reach `panic_at`
        // emitted events (the chaos check precedes every advance,
        // including the finish-discovering one — same as sequential).
        let fires = expected[target_idx].len() as u64 >= panic_at;
        prop_assert_eq!(stats.worker_panics, u64::from(fires));
        prop_assert_eq!(stats.sessions_failed, u64::from(fires));
        for (i, stream) in got.iter().enumerate() {
            if i == target_idx && fires {
                let p = panic_at as usize;
                prop_assert_eq!(&stream[..p], &expected[i][..p], "target prefix diverged");
                prop_assert_eq!(
                    stream.len(), p + 1,
                    "target must end right after the failure record"
                );
                let last = stream.last().expect("non-empty");
                prop_assert!(
                    matches!(last, SessionEvent::Failed { reason } if reason.contains("chaos")),
                    "expected a chaos failure record, got {:?}", last
                );
            } else {
                prop_assert_eq!(stream, &expected[i], "untargeted session {} diverged", i);
            }
        }
    }
}

/// The int8 path makes no bit-identity claim, but a quantized engine must
/// still complete sessions with well-formed streams and no failures.
#[test]
fn quantized_engine_completes_well_formed_sessions() {
    let cfg = ServeConfig {
        quantized: true,
        ..ServeConfig::new(2)
    };
    let all_params: Vec<StreamParams> =
        (0..4u64).map(|i| StreamParams::new(300 + i).streams(2)).collect();
    let (got, stats) = run_engine(cfg, ChaosPlan::default(), &all_params, true);
    for stream in &got {
        let data: Vec<_> = stream
            .iter()
            .map(|e| {
                assert!(!e.is_failure(), "unexpected failure: {e:?}");
                *e.data().expect("data event")
            })
            .collect();
        assert_eq!(data.iter().filter(|e| e.last_in_stream).count(), 2);
        assert!(data.iter().all(|e| e.timestamp.is_finite() && e.iat >= 0.0));
    }
    assert!(stats.batched_tokens > 0, "quantized decode runs the batched path");
    assert_eq!(stats.worker_panics, 0);
}
