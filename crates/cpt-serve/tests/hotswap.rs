//! Acceptance tests for validated hot-swap through the crash-safe model
//! registry: publish a new version while sessions stream, under chaos.
//!
//! The acceptance criterion: with ≥64 sessions streaming, a publish must
//! leave pinned sessions byte-identical to an un-swapped run while new
//! sessions open on the new version — at 1, 2, and 8 workers; a corrupt
//! candidate must be rejected with a typed error while the previous
//! version keeps serving; a crash between the manifest temp-write and
//! rename must leave the old version durable, with a restart recovering
//! it; and a worker panic mid-publish must fail only the targeted
//! session.
//!
//! These tests exercise runtime JSON (registry manifests and artifacts),
//! so they run in CI rather than under the offline serde stub.

use cpt_gpt::{CptGpt, CptGptConfig, StreamParams, Tokenizer, TrainConfig};
use cpt_serve::registry::{Registry, RegistryError, VersionState};
use cpt_serve::{
    ChaosPlan, Director, Engine, ServeConfig, ServeError, ServeHandle, SessionEvent,
    SessionId,
};
use cpt_trace::{Dataset, DeviceType, Event, EventType, Stream, UeId};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn alternating_dataset(n: usize) -> Dataset {
    let streams = (0..n)
        .map(|i| {
            let mut t = 0.0;
            let events = (0..6 + (i % 3) * 2)
                .map(|k| {
                    let (et, gap) = if k % 2 == 0 {
                        (EventType::ServiceRequest, 100.0)
                    } else {
                        (EventType::ConnectionRelease, 10.0)
                    };
                    t += gap;
                    Event::new(et, t)
                })
                .collect();
            Stream::new(UeId(i as u64), DeviceType::Phone, events)
        })
        .collect();
    Dataset::new(streams)
}

/// v1: the bootstrap model every registry in this file starts from.
fn model_v1() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let data = alternating_dataset(12);
        let cfg = CptGptConfig {
            d_model: 16,
            n_blocks: 1,
            n_heads: 2,
            d_mlp: 32,
            d_head: 16,
            max_len: 16,
            ..CptGptConfig::small()
        };
        let mut model = CptGpt::new(cfg, Tokenizer::fit(&data));
        cpt_gpt::train(&mut model, &data, &TrainConfig::quick().with_epochs(2))
            .expect("fixture training failed");
        Arc::new(model)
    }))
}

/// v2: v1 trained one more epoch — genuinely different weights, so a
/// swapped session's output provably comes from the version it pinned.
fn model_v2() -> Arc<CptGpt> {
    static MODEL: OnceLock<Arc<CptGpt>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let mut model = (*model_v1()).clone();
        cpt_gpt::train(
            &mut model,
            &alternating_dataset(12),
            &TrainConfig::quick().with_epochs(1),
        )
        .expect("fixture v2 training failed");
        Arc::new(model)
    }))
}

/// Ground truth for one session on one model: a fresh decoder drained to
/// completion (identical to what an un-swapped engine run delivers).
fn reference(model: &CptGpt, params: StreamParams) -> Vec<SessionEvent> {
    let mut dec = model.open_session(params).expect("open reference session");
    let mut out = Vec::new();
    while let Some(ev) = dec.next_event(model) {
        out.push(SessionEvent::Data(ev));
    }
    out
}

/// A scratch directory holding `registry/` plus candidate files, removed
/// on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir()
            .join(format!("cpt-hotswap-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn registry_root(&self) -> PathBuf {
        self.0.join("registry")
    }

    /// Writes `model` as a publishable candidate file and returns its path.
    fn candidate(&self, name: &str, model: &CptGpt) -> PathBuf {
        let path = self.0.join(name);
        cpt_gpt::save_model_file(model, &path).expect("write candidate file");
        path
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Bootstraps the registry with v1 promoted live (chaos-free), then
/// reopens it with `chaos` and wires the engine + director — exactly the
/// server's startup sequence, so the director's first staged candidate is
/// chaos stage ordinal 1.
fn start_stack(
    scratch: &Scratch,
    workers: usize,
    chaos: ChaosPlan,
) -> (Engine, ServeHandle, Arc<Director>) {
    let root = scratch.registry_root();
    {
        let (mut reg, report) = Registry::open(&root).expect("bootstrap registry");
        if reg.is_empty() {
            assert!(report.is_clean());
            let id = reg.stage(&model_v1(), "bootstrap import").expect("stage v1");
            reg.validate(id).expect("validate v1");
            reg.promote(id).expect("promote v1");
        }
    }
    let (mut reg, _) = Registry::open_with_chaos(&root, chaos).expect("reopen registry");
    let (live, model) = reg.load_live().expect("live version loads");
    let engine = Engine::start_versioned(Arc::new(model), live, ServeConfig::new(workers), chaos)
        .expect("engine starts");
    let handle = engine.handle();
    let director =
        Arc::new(Director::new(reg, engine.handle(), chaos).expect("director starts"));
    (engine, handle, director)
}

/// Drains one session to `finished`, returning everything it delivered.
fn drain_session(handle: &ServeHandle, id: SessionId, batch: usize) -> Vec<SessionEvent> {
    let mut out = Vec::new();
    loop {
        let b = handle
            .next_events(id, batch, Duration::from_secs(10))
            .expect("next_events on open session");
        out.extend(b.events);
        if b.finished {
            handle.close_session(id).expect("close drained session");
            return out;
        }
    }
}

/// The swap-under-load acceptance: 64 sessions pinned to v1 keep decoding
/// byte-identically across a mid-stream publish while new sessions open
/// on v2 — at 1, 2, and 8 workers.
#[test]
fn publish_under_load_pins_old_sessions_and_switches_new_ones() {
    for workers in [1usize, 2, 8] {
        let scratch = Scratch::new(&format!("swap{workers}"));
        let (engine, handle, director) =
            start_stack(&scratch, workers, ChaosPlan::default());
        assert_eq!(handle.live_version(), 1);

        let pinned_params: Vec<StreamParams> = (0..64u64)
            .map(|i| StreamParams::new(4000 + i * 101).streams(2))
            .collect();
        let pinned: Vec<SessionId> = pinned_params
            .iter()
            .map(|p| handle.open_session(*p).expect("pinned session admitted"))
            .collect();

        // Deliver a prefix so every session is demonstrably mid-stream,
        // then swap underneath it.
        let mut outputs: Vec<Vec<SessionEvent>> = Vec::with_capacity(pinned.len());
        for id in &pinned {
            let b = handle
                .next_events(*id, 2, Duration::from_secs(10))
                .expect("prefix delivery");
            outputs.push(b.events);
        }

        let candidate = scratch.candidate("v2-candidate.json", &model_v2());
        let outcome = director.publish_path(&candidate).expect("publish succeeds");
        assert_eq!(outcome.version, 2);
        assert_eq!(outcome.previous, Some(1));
        assert_eq!(handle.live_version(), 2, "new sessions must open on v2");

        // Sessions opened after the publish decode with v2's weights.
        let fresh_params: Vec<StreamParams> = (0..16u64)
            .map(|i| StreamParams::new(9000 + i * 17).streams(2))
            .collect();
        for p in &fresh_params {
            let id = handle.open_session(*p).expect("fresh session admitted");
            assert_eq!(
                drain_session(&handle, id, 16),
                reference(&model_v2(), *p),
                "post-swap session diverged from the v2 reference at {workers} workers"
            );
        }
        let per_version = handle.sessions_per_version();
        assert!(
            per_version.contains(&(1, 64)),
            "64 sessions must stay pinned to v1, got {per_version:?}"
        );

        // Pinned sessions complete byte-identically to an un-swapped run.
        for ((id, prefix), p) in pinned.iter().zip(outputs).zip(&pinned_params) {
            let mut got = prefix;
            got.extend(drain_session(&handle, *id, 16));
            assert_eq!(
                got,
                reference(&model_v1(), *p),
                "pinned session diverged from the v1 reference at {workers} workers"
            );
        }

        // A second publish displaces v1 as the rollback target; with its
        // last pinned session gone the engine frees it and the director
        // persists the retirement.
        let outcome = director.publish_path(&candidate).expect("second publish");
        assert_eq!(outcome.version, 3);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (_, records, _) = director.versions();
            let v1_state = records
                .iter()
                .find(|r| r.id == 1)
                .expect("v1 record persists")
                .state;
            if v1_state == VersionState::Retired {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "v1 was never retired durably (state {v1_state:?})"
            );
            std::thread::sleep(Duration::from_millis(25));
        }

        let stats = handle.stats();
        assert_eq!(stats.versions_published, 2);
        assert_eq!(stats.versions_retired, 1);
        director.shutdown();
        engine.shutdown();
    }
}

/// A corrupt candidate is rejected with a typed error and quarantined
/// durably; the previous version never stops serving.
#[test]
fn corrupt_candidate_is_rejected_typed_while_v1_keeps_serving() {
    let scratch = Scratch::new("corrupt");
    let chaos = ChaosPlan {
        corrupt_candidate: Some(1),
        ..ChaosPlan::default()
    };
    let (engine, handle, director) = start_stack(&scratch, 2, chaos);

    let params: Vec<StreamParams> = (0..8u64)
        .map(|i| StreamParams::new(100 + i * 7).streams(2))
        .collect();
    let ids: Vec<SessionId> = params
        .iter()
        .map(|p| handle.open_session(*p).expect("admitted"))
        .collect();

    let candidate = scratch.candidate("v2-candidate.json", &model_v2());
    let err = director
        .publish_path(&candidate)
        .expect_err("a corrupt candidate must not publish");
    assert!(
        matches!(
            &err,
            ServeError::Registry(RegistryError::CorruptArtifact { version: 2, detail, .. })
                if detail.contains("checksum mismatch")
        ),
        "expected a typed corrupt-artifact rejection, got {err:?}"
    );
    assert_eq!(handle.live_version(), 1, "v1 must keep serving");
    assert_eq!(handle.stats().versions_quarantined, 1);
    let (live, records, _) = director.versions();
    assert_eq!(live, Some(1));
    assert_eq!(
        records.iter().find(|r| r.id == 2).expect("record kept").state,
        VersionState::Quarantined
    );

    // In-flight and brand-new sessions still decode v1 exactly.
    for (id, p) in ids.iter().zip(&params) {
        assert_eq!(drain_session(&handle, *id, 16), reference(&model_v1(), *p));
    }
    let p = StreamParams::new(777).streams(2);
    let fresh = handle.open_session(p).expect("still admitting");
    assert_eq!(drain_session(&handle, fresh, 16), reference(&model_v1(), p));
    director.shutdown();
    engine.shutdown();
}

/// A crash in the promote commit window (between manifest temp-write and
/// rename) leaves v1 durable and serving; a restart recovers it, and the
/// interrupted candidate — staged and validated durably — can then be
/// published to completion.
#[test]
fn crash_in_promote_commit_window_recovers_to_last_durable_version() {
    let scratch = Scratch::new("crashpromote");
    // Publishing stages (commit 1), validates (commit 2), promotes
    // (commit 3): crash the promote.
    let chaos = ChaosPlan {
        crash_manifest_commit: Some(3),
        ..ChaosPlan::default()
    };
    let (engine, handle, director) = start_stack(&scratch, 2, chaos);
    let p = StreamParams::new(42).streams(2);
    let id = handle.open_session(p).expect("admitted");

    let candidate = scratch.candidate("v2-candidate.json", &model_v2());
    let err = director
        .publish_path(&candidate)
        .expect_err("the crashed commit must surface");
    assert!(
        matches!(err, ServeError::Registry(RegistryError::SimulatedCrash { .. })),
        "expected the simulated crash, got {err:?}"
    );
    assert_eq!(handle.live_version(), 1, "the engine must not half-promote");
    assert_eq!(drain_session(&handle, id, 16), reference(&model_v1(), p));
    director.shutdown();
    engine.shutdown();

    // Restart: recovery cleans the torn temp file, lands on v1, and keeps
    // the durably staged candidate (it never got damaged).
    let (mut reg, report) = Registry::open(scratch.registry_root()).expect("recovery");
    assert_eq!(report.torn_commits_cleaned, 1);
    let (live, model) = reg.load_live().expect("durable version loads");
    assert_eq!(live, 1);
    assert_eq!(
        reg.manifest().record(2).expect("candidate survived").state,
        VersionState::Validated
    );

    let engine = Engine::start_versioned(Arc::new(model), live, ServeConfig::new(2), ChaosPlan::default())
        .expect("engine restarts");
    let handle = engine.handle();
    let director = Director::new(reg, engine.handle(), ChaosPlan::default())
        .expect("director restarts");
    let outcome = director
        .publish_version(2)
        .expect("the interrupted swap completes after restart");
    assert_eq!(outcome.version, 2);
    assert_eq!(handle.live_version(), 2);
    let fresh = handle.open_session(p).expect("admitted");
    assert_eq!(drain_session(&handle, fresh, 16), reference(&model_v2(), p));
    director.shutdown();
    engine.shutdown();
}

/// A worker panic landing inside the publish window (widened by chaos)
/// fails only the targeted session; the publish itself and every other
/// pinned session are untouched.
#[test]
fn worker_panic_mid_publish_fails_only_the_targeted_session() {
    let scratch = Scratch::new("panicswap");
    // Session id 3 panics after 2 events; the publish window is held open
    // for 100ms so the panic lands inside it.
    let chaos = ChaosPlan {
        publish_delay_ms: 100,
        ..ChaosPlan::panic_session_at(3, 2)
    };
    let (engine, handle, director) = start_stack(&scratch, 2, chaos);

    let params: Vec<StreamParams> = (0..8u64)
        .map(|i| StreamParams::new(300 + i * 13).streams(2))
        .collect();
    let ids: Vec<SessionId> = params
        .iter()
        .map(|p| handle.open_session(*p).expect("admitted"))
        .collect();

    let candidate = scratch.candidate("v2-candidate.json", &model_v2());
    let publisher = {
        let director = Arc::clone(&director);
        std::thread::spawn(move || director.publish_path(&candidate))
    };

    // Drain everything while the publish is in flight.
    let streams: Vec<Vec<SessionEvent>> = ids
        .iter()
        .map(|id| drain_session(&handle, *id, 4))
        .collect();
    let outcome = publisher
        .join()
        .expect("publisher thread joins")
        .expect("publish succeeds despite the contained panic");
    assert_eq!(outcome.version, 2);
    assert_eq!(handle.live_version(), 2);

    for (i, (stream, p)) in streams.iter().zip(&params).enumerate() {
        let expected = reference(&model_v1(), *p);
        if i == 2 {
            // The targeted session: its decoded prefix, then exactly one
            // terminal failure record.
            assert_eq!(&stream[..2], &expected[..2]);
            assert_eq!(stream.len(), 3, "prefix + one failure record");
            assert!(
                matches!(&stream[2], SessionEvent::Failed { reason } if reason.contains("chaos")),
                "expected a chaos failure record, got {:?}",
                stream[2]
            );
        } else {
            assert_eq!(stream, &expected, "untargeted session {i} diverged");
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.sessions_failed, 1);
    director.shutdown();
    engine.shutdown();
}
