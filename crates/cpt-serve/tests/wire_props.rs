//! Property tests for the binary wire codec: every verb and response
//! round-trips bit-exactly through `encode`/`decode`; truncating an
//! encoded frame at any offset yields a typed [`ProtocolError`]; and
//! flipping any single bit anywhere in a frame decodes to `Ok` or a typed
//! error — never a panic. The `stats`/`versions` responses embed a JSON
//! blob and are covered by `serve_loadgen.rs` (they need the real
//! `serde_json` at runtime); everything here is pure fixed-layout codec.

use cpt_serve::protocol::wire::{self, ProtocolError};
use cpt_serve::protocol::{ErrorKind, Request, Response};
use cpt_serve::SessionEvent;
use cpt_trace::EventType;
use proptest::prelude::*;

type DecodedEvent = cpt_gpt::SessionEvent;

const DEVICES: [&str; 3] = ["phone", "connected_car", "tablet"];

const KINDS: [ErrorKind; 12] = [
    ErrorKind::Overloaded,
    ErrorKind::UnknownSession,
    ErrorKind::InvalidRequest,
    ErrorKind::ShuttingDown,
    ErrorKind::Draining,
    ErrorKind::UnknownToken,
    ErrorKind::Registry,
    ErrorKind::UnknownVersion,
    ErrorKind::NoPreviousVersion,
    ErrorKind::NoRegistry,
    ErrorKind::Busy,
    ErrorKind::Internal,
];

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0u64..u64::MAX, 1usize..9, 0usize..3, 0usize..40).prop_map(
            |(seed, streams, dev, cap)| Request::Open {
                seed,
                streams,
                device: DEVICES[dev].to_string(),
                max_stream_len: if cap == 0 { None } else { Some(cap) },
            }
        ),
        (0u64..u64::MAX, 0usize..4096, 0u64..100_000).prop_map(
            |(session, max, wait_ms)| Request::Next {
                session,
                max,
                wait_ms,
            }
        ),
        (0u64..u64::MAX).prop_map(|session| Request::Close { session }),
        Just(Request::Detach),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(a, b)| Request::Reattach {
            token: format!("{a:016x}{b:016x}"),
        }),
        (0u64..600_000).prop_map(|timeout_ms| Request::Drain { timeout_ms }),
        Just(Request::Stats),
        (1u64..64, 0u8..2).prop_map(|(v, staged)| Request::Publish {
            path: if staged == 0 {
                Some(format!("model-{v}.json"))
            } else {
                None
            },
            version: if staged == 0 { None } else { Some(v) },
        }),
        Just(Request::Rollback),
        (0u64..u64::MAX, 0usize..20, 0u8..2).prop_map(|(seed, epochs, has_seed)| {
            Request::Finetune {
                trace: format!("trace-{}.jsonl", seed % 1000),
                epochs: if epochs == 0 { None } else { Some(epochs) },
                seed: if has_seed == 1 { Some(seed) } else { None },
            }
        }),
        Just(Request::Versions),
        Just(Request::Shutdown),
    ]
}

/// Finite event payloads (NaN bit-exactness has its own unit test in the
/// codec; `PartialEq` round-trip comparison needs finite floats).
fn arb_event() -> impl Strategy<Value = SessionEvent> {
    prop_oneof![
        (0usize..8, 0usize..EventType::ALL.len(), 0.0f64..1e6, 0.0f64..1e9, 0u8..2).prop_map(
            |(stream, et, iat, timestamp, last)| {
                SessionEvent::Data(DecodedEvent {
                    stream,
                    event_type: EventType::from_index(et).expect("index in range"),
                    iat,
                    timestamp,
                    last_in_stream: last == 1,
                })
            }
        ),
        (0u64..1000).prop_map(|n| SessionEvent::Failed {
            reason: format!("chaos: injected panic advancing session {n}"),
        }),
    ]
}

/// Every response except the JSON-blob pair (`stats`, `versions`).
fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u64..u64::MAX).prop_map(|session| Response::Opened { session }),
        (
            0u64..u64::MAX,
            proptest::collection::vec(arb_event(), 0..16),
            0u8..2
        )
            .prop_map(|(session, events, fin)| Response::Events {
                session,
                events,
                finished: fin == 1,
            }),
        (0u64..u64::MAX).prop_map(|session| Response::Closed { session }),
        (0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(a, b)| Response::Detached {
            token: format!("{a:016x}{b:016x}"),
        }),
        proptest::collection::vec(0u64..u64::MAX, 0..32)
            .prop_map(|sessions| Response::Reattached { sessions }),
        (0u64..5000, 0u64..5000).prop_map(|(completed, force_failed)| Response::Drained {
            completed,
            force_failed,
        }),
        (1u64..64, 0u64..64).prop_map(|(version, prev)| Response::Published {
            version,
            previous: if prev == 0 { None } else { Some(prev) },
        }),
        (1u64..64, 1u64..64).prop_map(|(demoted, live)| Response::RolledBack { demoted, live }),
        (1u64..1000).prop_map(|job| Response::FinetuneStarted { job }),
        Just(Response::Bye),
        (0usize..KINDS.len(), 0u64..1000).prop_map(|(k, n)| Response::Error {
            kind: KINDS[k],
            message: format!("failure {n}"),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request verb round-trips bit-exactly.
    #[test]
    fn every_request_round_trips(req in arb_request()) {
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        let back = wire::decode_request(&buf);
        prop_assert_eq!(Ok(req), back);
    }

    /// Every fixed-layout response round-trips bit-exactly.
    #[test]
    fn every_response_round_trips(resp in arb_response()) {
        let mut buf = Vec::new();
        wire::encode_response(&resp, &mut buf).expect("fixed-layout responses encode");
        let back = wire::decode_response(&buf);
        prop_assert_eq!(Ok(resp), back);
    }

    /// A request frame truncated at any strict prefix is a typed error,
    /// never a panic and never a silent partial decode.
    #[test]
    fn truncated_requests_are_typed_errors(req in arb_request(), cut in 0usize..4096) {
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        let cut = cut % buf.len(); // strict prefix: every opcode is >= 1 byte
        let got = wire::decode_request(&buf[..cut]);
        prop_assert!(got.is_err(), "prefix of len {} decoded to {:?}", cut, got);
    }

    /// A response frame truncated at any strict prefix is a typed error.
    #[test]
    fn truncated_responses_are_typed_errors(resp in arb_response(), cut in 0usize..4096) {
        let mut buf = Vec::new();
        wire::encode_response(&resp, &mut buf).expect("fixed-layout responses encode");
        let cut = cut % buf.len();
        let got = wire::decode_response(&buf[..cut]);
        prop_assert!(got.is_err(), "prefix of len {} decoded to {:?}", cut, got);
    }

    /// Flipping any single bit anywhere in an encoded request decodes to
    /// `Ok` (the flip landed in a value field) or a typed error — the
    /// decoder must never panic on adversarial bytes.
    #[test]
    fn bit_flipped_requests_never_panic(
        req in arb_request(),
        byte_sel in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        let idx = byte_sel % buf.len();
        buf[idx] ^= 1 << bit;
        match wire::decode_request(&buf) {
            Ok(_) | Err(ProtocolError::Truncated)
            | Err(ProtocolError::BadVarint)
            | Err(ProtocolError::Oversize { .. })
            | Err(ProtocolError::UnknownOpcode(_))
            | Err(ProtocolError::BadTag { .. })
            | Err(ProtocolError::BadUtf8)
            | Err(ProtocolError::Trailing { .. }) => {}
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Same single-bit-flip robustness for encoded responses.
    #[test]
    fn bit_flipped_responses_never_panic(
        resp in arb_response(),
        byte_sel in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        wire::encode_response(&resp, &mut buf).expect("fixed-layout responses encode");
        let idx = byte_sel % buf.len();
        buf[idx] ^= 1 << bit;
        // Any typed outcome is acceptable; reaching this line at all is
        // the property (no panic, no abort).
        let _ = wire::decode_response(&buf);
    }

    /// Framing survives bit flips too: corrupting any byte of a framed
    /// message (length prefix included) yields a clean read, a typed
    /// frame error, or a short read — never a panic or an OOM-sized
    /// allocation.
    #[test]
    fn bit_flipped_frames_never_panic(
        req in arb_request(),
        byte_sel in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut payload = Vec::new();
        wire::encode_request(&req, &mut payload);
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).expect("frame into memory");
        let idx = byte_sel % framed.len();
        framed[idx] ^= 1 << bit;
        let mut reader = framed.as_slice();
        let mut buf = Vec::new();
        let _ = wire::read_frame(&mut reader, &mut buf);
    }
}
