//! Deterministic chaos injection for the serving layer.
//!
//! The crash-only contract (worker panics contained, disconnects parked,
//! drains bounded) is only trustworthy if the failure paths run in CI on
//! every change — and real panics, drops, and corrupt frames cannot be
//! scheduled. A [`ChaosPlan`] mirrors `cpt_gpt::faultinject::FaultPlan`
//! for the serving layer: every fault fires at an exactly reproducible
//! point, so a chaos run can be diffed event-for-event against an
//! uninjected run.
//!
//! Determinism discipline: faults are targeted by *logical* coordinates
//! that do not depend on scheduling — a worker panic fires when a specific
//! session reaches a specific decoded-event index (never "the Nth global
//! slice", which is worker-count dependent); connection drops and frame
//! corruption fire at a (connection index, request index) pair; byte
//! positions for corruption come from a splitmix64 stream over
//! [`ChaosPlan::seed`]. The same plan therefore injects the same faults at
//! 1, 2, or 8 workers.

#![deny(clippy::unwrap_used)]

use std::time::Duration;

/// A scheduled, deterministic set of serving-layer faults.
///
/// All fields default to "no fault", so `ChaosPlan::default()` is a no-op
/// and the engine/server hot paths stay branch-cheap when chaos is off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    /// Seed for the corruption byte/bit choices (and any future random
    /// draws). Two runs with the same plan inject byte-identical faults.
    pub seed: u64,
    /// Panic the worker advancing this session id...
    pub panic_session: Option<u64>,
    /// ...once the session has emitted at least this many events (0-based
    /// threshold on `SessionDecoder::events_emitted`). The panic fires
    /// mid-slice, after the already-decoded prefix of the slice exists in
    /// the worker's local buffer — exactly the state a real decode panic
    /// leaves behind.
    pub panic_at_event: u64,
    /// Sleep this long before publishing every `delay_every`-th slice
    /// (per worker), simulating a straggling worker. 0 = no delay.
    pub delay_slice_ms: u64,
    /// Which slices to delay: every Nth slice decoded by a worker. 0 = off.
    pub delay_every: u64,
    /// Server-side: hard-drop this connection (0-based accept index) ...
    pub drop_connection: Option<u64>,
    /// ...after it has had this many requests dispatched (so the drop
    /// lands mid-conversation, not at accept time).
    pub drop_after_requests: u64,
    /// Server-side: corrupt every Nth inbound request line (per
    /// connection) before parsing, proving malformed frames surface as
    /// typed `invalid_request` errors rather than wedging the connection.
    /// 0 = off.
    pub corrupt_every: u64,
    /// Registry swap-window fault: abort the Nth manifest commit (1-based,
    /// counted per registry instance) after the temp file is written but
    /// before the rename — exactly the torn state a crash in the
    /// write-temp/fsync/rename window leaves on disk. The commit returns a
    /// typed `RegistryError::SimulatedCrash` and the durable manifest is
    /// untouched. 0/None = off.
    pub crash_manifest_commit: Option<u64>,
    /// Registry swap-window fault: flip one byte of the Nth staged
    /// candidate artifact (1-based, counted per registry instance) after
    /// it is written but before validation, so the validation gate must
    /// catch it. The byte position comes from `seed`.
    pub corrupt_candidate: Option<u64>,
    /// Fine-tune fault: panic the Nth background fine-tune attempt
    /// (1-based, counted across jobs) inside its supervised task, proving
    /// the serving model is untouched and the failure is typed.
    pub panic_finetune: Option<u64>,
    /// Widens the publish window: sleep this long between validation and
    /// promotion, so a concurrent drain/close race has room to land.
    /// 0 = off.
    pub publish_delay_ms: u64,
    /// Divergence fault: overwrite the interarrival of one decoded event
    /// with NaN for this session...
    pub poison_session: Option<u64>,
    /// ...once it has emitted at least this many events — the serve-time
    /// trip-wire must fail the session and demote the live version.
    pub poison_at_event: u64,
}

impl ChaosPlan {
    /// True when every fault is disabled (the hot-path fast check).
    pub fn is_noop(&self) -> bool {
        self.panic_session.is_none()
            && (self.delay_every == 0 || self.delay_slice_ms == 0)
            && self.drop_connection.is_none()
            && self.corrupt_every == 0
            && self.crash_manifest_commit.is_none()
            && self.corrupt_candidate.is_none()
            && self.panic_finetune.is_none()
            && self.publish_delay_ms == 0
            && self.poison_session.is_none()
    }

    /// A plan that panics the worker advancing `session` once it has
    /// emitted `at_event` events.
    pub fn panic_session_at(session: u64, at_event: u64) -> Self {
        ChaosPlan {
            panic_session: Some(session),
            panic_at_event: at_event,
            ..ChaosPlan::default()
        }
    }

    /// A plan that drops connection `conn` after `after` requests.
    pub fn drop_connection_after(conn: u64, after: u64) -> Self {
        ChaosPlan {
            drop_connection: Some(conn),
            drop_after_requests: after,
            ..ChaosPlan::default()
        }
    }

    /// Should the worker advancing `session` panic before decoding the
    /// event at index `events_emitted`?
    pub fn should_panic(&self, session: u64, events_emitted: u64) -> bool {
        self.panic_session == Some(session) && events_emitted >= self.panic_at_event
    }

    /// The delay to apply before publishing the `slice_idx`-th slice of
    /// one worker (0-based), if any.
    pub fn slice_delay(&self, slice_idx: u64) -> Option<Duration> {
        if self.delay_every == 0 || self.delay_slice_ms == 0 {
            return None;
        }
        if (slice_idx + 1).is_multiple_of(self.delay_every) {
            Some(Duration::from_millis(self.delay_slice_ms))
        } else {
            None
        }
    }

    /// Should the `commit_idx`-th manifest commit (1-based) abort in the
    /// torn window between temp-write and rename?
    pub fn crash_at_commit(&self, commit_idx: u64) -> bool {
        self.crash_manifest_commit == Some(commit_idx)
    }

    /// Should the `stage_idx`-th staged candidate artifact (1-based) be
    /// corrupted on disk before validation?
    pub fn corrupts_candidate(&self, stage_idx: u64) -> bool {
        self.corrupt_candidate == Some(stage_idx)
    }

    /// Should the `attempt_idx`-th fine-tune attempt (1-based, across
    /// jobs) panic inside its supervised task?
    pub fn panics_finetune(&self, attempt_idx: u64) -> bool {
        self.panic_finetune == Some(attempt_idx)
    }

    /// The deliberate publish-window delay between validation and
    /// promotion, if any.
    pub fn publish_delay(&self) -> Option<Duration> {
        (self.publish_delay_ms > 0).then(|| Duration::from_millis(self.publish_delay_ms))
    }

    /// Should the event a worker just decoded for `session` (its
    /// `events_emitted`-th, 0-based) be poisoned with a non-finite
    /// interarrival to trip the serve-time divergence wire?
    pub fn should_poison(&self, session: u64, events_emitted: u64) -> bool {
        self.poison_session == Some(session) && events_emitted >= self.poison_at_event
    }

    /// Should connection `conn_idx` be hard-dropped before dispatching its
    /// `req_idx`-th request (both 0-based)?
    pub fn should_drop(&self, conn_idx: u64, req_idx: u64) -> bool {
        self.drop_connection == Some(conn_idx) && req_idx >= self.drop_after_requests
    }

    /// Corrupts `line` in place if the plan schedules it for this
    /// (connection, request) coordinate; returns true when it did. The
    /// flipped byte position and XOR mask are a pure function of
    /// `(seed, conn_idx, req_idx)`.
    pub fn corrupt_line(&self, conn_idx: u64, req_idx: u64, line: &mut String) -> bool {
        if self.corrupt_every == 0 || line.is_empty() {
            return false;
        }
        if !(req_idx + 1).is_multiple_of(self.corrupt_every) {
            return false;
        }
        let mut s = splitmix64(self.seed ^ conn_idx.rotate_left(32) ^ req_idx);
        let mut bytes = std::mem::take(line).into_bytes();
        let pos = (splitmix_next(&mut s) as usize) % bytes.len();
        // Force the byte to a value that breaks JSON but keeps the line a
        // single line (never a newline) and valid UTF-8.
        let mask = 0x21 + (splitmix_next(&mut s) % 0x5D) as u8; // printable ASCII
        bytes[pos] = if bytes[pos] == mask { b'!' } else { mask };
        *line = String::from_utf8_lossy(&bytes).into_owned();
        true
    }
}

/// One splitmix64 scramble (the same finalizer used across the workspace
/// for seed derivation).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix64(*state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_noop() {
        let p = ChaosPlan::default();
        assert!(p.is_noop());
        assert!(!p.should_panic(1, 100));
        assert!(!p.should_drop(0, 100));
        assert!(p.slice_delay(7).is_none());
        let mut line = String::from("{\"op\":\"stats\"}");
        let orig = line.clone();
        assert!(!p.corrupt_line(0, 0, &mut line));
        assert_eq!(line, orig);
    }

    #[test]
    fn panic_targets_by_session_and_event_index() {
        let p = ChaosPlan::panic_session_at(3, 5);
        assert!(!p.is_noop());
        assert!(!p.should_panic(3, 4), "below the event threshold");
        assert!(p.should_panic(3, 5));
        assert!(p.should_panic(3, 9), "at or past the threshold");
        assert!(!p.should_panic(2, 9), "other sessions untouched");
    }

    #[test]
    fn corruption_is_deterministic_and_scheduled() {
        let p = ChaosPlan {
            seed: 42,
            corrupt_every: 3,
            ..ChaosPlan::default()
        };
        let fresh = || String::from("{\"op\":\"next\",\"session\":1}");
        let (mut a, mut b, mut c) = (fresh(), fresh(), fresh());
        assert!(!p.corrupt_line(0, 0, &mut a), "request 0 not scheduled");
        assert!(!p.corrupt_line(0, 1, &mut b), "request 1 not scheduled");
        assert!(p.corrupt_line(0, 2, &mut c), "request 2 corrupted");
        assert_ne!(c, fresh());
        let mut c2 = fresh();
        assert!(p.corrupt_line(0, 2, &mut c2));
        assert_eq!(c, c2, "same coordinates corrupt identically");
        let mut other_conn = fresh();
        assert!(p.corrupt_line(1, 2, &mut other_conn));
        assert!(std::str::from_utf8(other_conn.as_bytes()).is_ok());
    }

    #[test]
    fn swap_window_faults_target_exact_ordinals() {
        let p = ChaosPlan {
            crash_manifest_commit: Some(3),
            corrupt_candidate: Some(2),
            panic_finetune: Some(1),
            publish_delay_ms: 5,
            poison_session: Some(7),
            poison_at_event: 4,
            ..ChaosPlan::default()
        };
        assert!(!p.is_noop());
        assert!(!p.crash_at_commit(2) && p.crash_at_commit(3) && !p.crash_at_commit(4));
        assert!(!p.corrupts_candidate(1) && p.corrupts_candidate(2));
        assert!(p.panics_finetune(1) && !p.panics_finetune(2));
        assert_eq!(p.publish_delay(), Some(Duration::from_millis(5)));
        assert!(!p.should_poison(7, 3), "below the event threshold");
        assert!(p.should_poison(7, 4) && p.should_poison(7, 9));
        assert!(!p.should_poison(6, 9), "other sessions untouched");
        let default = ChaosPlan::default();
        assert!(default.publish_delay().is_none());
        assert!(!default.crash_at_commit(1) && !default.corrupts_candidate(1));
    }

    #[test]
    fn delays_fire_every_nth_slice() {
        let p = ChaosPlan {
            delay_every: 2,
            delay_slice_ms: 7,
            ..ChaosPlan::default()
        };
        assert!(p.slice_delay(0).is_none());
        assert_eq!(p.slice_delay(1), Some(Duration::from_millis(7)));
        assert!(p.slice_delay(2).is_none());
        assert_eq!(p.slice_delay(3), Some(Duration::from_millis(7)));
    }
}
