//! The line-delimited JSON wire protocol spoken by `cptgen serve`.
//!
//! One request per line, one response per line, over plain TCP — trivially
//! scriptable (`nc`, `jq`) and implementable with std threads only. Every
//! request carries an `"op"` tag; every response carries a `"type"` tag.
//! Errors are structured: a machine-matchable `kind` plus a human message,
//! mirroring the library's [`ServeError`] taxonomy so protocol clients can
//! distinguish *shed, retry later* from *bad request*.
//!
//! ```text
//! -> {"op":"open","seed":7,"streams":2}
//! <- {"type":"opened","session":1}
//! -> {"op":"next","session":1,"max":64,"wait_ms":100}
//! <- {"type":"events","session":1,"events":[...],"finished":false}
//! -> {"op":"close","session":1}
//! <- {"type":"closed","session":1}
//! -> {"op":"stats"}
//! <- {"type":"stats","stats":{...}}
//! ```
//!
//! Crash-only extensions:
//!
//! ```text
//! -> {"op":"detach"}                      # arm detach-on-disconnect
//! <- {"type":"detached","token":"<32 hex>"}
//! ...connection drops; sessions park under the token...
//! -> {"op":"reattach","token":"<32 hex>"} # on a new connection
//! <- {"type":"reattached","sessions":[3,4]}
//! -> {"op":"drain","timeout_ms":5000}
//! <- {"type":"drained","completed":10,"force_failed":1}
//! ```
//!
//! An event in `events` is either a decoded data event (an object with the
//! usual `stream`/`index`/... fields) or the terminal failure record
//! `{"reason":"..."}` of a session that died to a contained fault — see
//! [`SessionEvent`].
//!
//! Model-lifecycle extensions (require the server to run with a registry,
//! `cptgen serve --registry DIR`):
//!
//! ```text
//! -> {"op":"publish","path":"new-model.json"}   # stage + validate + promote
//! <- {"type":"published","version":3,"previous":2}
//! -> {"op":"rollback"}
//! <- {"type":"rolled_back","demoted":3,"live":2}
//! -> {"op":"finetune","trace":"serve-trace.jsonl"}
//! <- {"type":"finetune_started","job":1}        # supervised background task
//! -> {"op":"versions"}
//! <- {"type":"versions","live":2,"versions":[...]}
//! ```

#![deny(clippy::unwrap_used)]

pub mod wire;

use crate::engine::SessionEvent;
use crate::error::ServeError;
use crate::metrics::StatsSnapshot;
use crate::registry::{RegistryError, VersionState};
use serde::{Deserialize, Serialize};

/// Default `next` wait when the client omits `wait_ms`.
pub const DEFAULT_WAIT_MS: u64 = 100;
/// Default `next` batch size when the client omits `max`.
pub const DEFAULT_MAX_EVENTS: usize = 64;
/// Default `drain` deadline when the client omits `timeout_ms`.
pub const DEFAULT_DRAIN_TIMEOUT_MS: u64 = 10_000;

fn default_streams() -> usize {
    1
}
fn default_device() -> String {
    "phone".to_string()
}
fn default_wait_ms() -> u64 {
    DEFAULT_WAIT_MS
}
fn default_max_events() -> usize {
    DEFAULT_MAX_EVENTS
}
fn default_drain_timeout_ms() -> u64 {
    DEFAULT_DRAIN_TIMEOUT_MS
}

/// A client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case", deny_unknown_fields)]
pub enum Request {
    /// Open a generation session.
    Open {
        /// Session seed; with the model, fully determines the output.
        seed: u64,
        /// UE streams to decode before the session finishes.
        #[serde(default = "default_streams")]
        streams: usize,
        /// Device type name (`phone`, `connected_car`, `tablet`, ...).
        #[serde(default = "default_device")]
        device: String,
        /// Optional per-stream length cap.
        #[serde(default)]
        max_stream_len: Option<usize>,
    },
    /// Fetch up to `max` events, waiting up to `wait_ms` for the first.
    Next {
        /// Session id from `opened`.
        session: u64,
        #[serde(default = "default_max_events")]
        max: usize,
        #[serde(default = "default_wait_ms")]
        wait_ms: u64,
    },
    /// Close a session (undelivered events are dropped).
    Close {
        /// Session id from `opened`.
        session: u64,
    },
    /// Arm detach-on-disconnect for this connection: the server mints a
    /// capability token now; if the connection later dies for any reason,
    /// its open sessions park under the token (TTL-bounded) instead of
    /// being closed.
    Detach,
    /// Present a detach token on a new connection, adopting the parked
    /// sessions. Delivery resumes exactly where it stopped.
    Reattach {
        /// The 32-hex-digit token from `detached`.
        token: String,
    },
    /// Stop admission, wait up to `timeout_ms` for live sessions to finish
    /// decoding, force-fail the stragglers. Admission stays suspended
    /// afterwards (new opens get a `draining` error).
    Drain {
        #[serde(default = "default_drain_timeout_ms")]
        timeout_ms: u64,
    },
    /// Fetch a server stats snapshot.
    Stats,
    /// Publish a model version through the gated path (stage if `path` is
    /// given, validate — checksum, checkpoint load, deterministic canary —
    /// then promote). Exactly one of `path`/`version` must be set:
    /// `path` stages a model file as a new candidate first, `version`
    /// re-validates and promotes an already-staged candidate.
    Publish {
        /// Model artifact to stage as a new candidate.
        #[serde(default)]
        path: Option<String>,
        /// An existing candidate version to validate and promote.
        #[serde(default)]
        version: Option<u64>,
    },
    /// Demote the live version and re-promote the previous one.
    Rollback,
    /// Fine-tune the live model on a trace file in a supervised background
    /// task, then publish the result through the gated path. The response
    /// arrives immediately; watch `stats` (`finetunes_running`) or
    /// `versions` for completion.
    Finetune {
        /// Trace file (JSONL events) to fine-tune on.
        trace: String,
        /// Fine-tune epochs (defaults to a fraction of the base schedule).
        #[serde(default)]
        epochs: Option<usize>,
        /// Base RNG seed for the fine-tune (bumped deterministically on
        /// each supervised retry).
        #[serde(default)]
        seed: Option<u64>,
    },
    /// List registry versions and their lifecycle states.
    Versions,
    /// Ask the server to stop accepting work and exit.
    Shutdown,
}

/// A server response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Response {
    /// Session admitted.
    Opened {
        /// The id to use in `next`/`close`.
        session: u64,
    },
    /// Events for a session, in decode order. A session that died to a
    /// contained fault ends with one `{"reason":"..."}` failure record.
    Events {
        session: u64,
        events: Vec<SessionEvent>,
        /// True once decode is complete and the queue is drained.
        finished: bool,
    },
    /// Session closed.
    Closed { session: u64 },
    /// Detach armed; keep the token to reattach after a disconnect.
    Detached {
        /// Capability token, 32 lowercase hex digits.
        token: String,
    },
    /// Reattach succeeded; these session ids are yours again.
    Reattached { sessions: Vec<u64> },
    /// Drain finished (or hit its deadline).
    Drained {
        /// Sessions that finished decoding within the deadline.
        completed: u64,
        /// Stragglers force-failed at the deadline.
        force_failed: u64,
    },
    /// Stats snapshot (boxed: it is by far the largest response body and
    /// would otherwise dominate the size of every `Response` value).
    Stats { stats: Box<StatsSnapshot> },
    /// A version passed the gate and is live.
    Published {
        /// The version new sessions now open on.
        version: u64,
        /// The demoted version (now draining), if any.
        previous: Option<u64>,
    },
    /// Rollback succeeded.
    RolledBack {
        /// The demoted version.
        demoted: u64,
        /// The version live again.
        live: u64,
    },
    /// The fine-tune job was admitted and runs in the background.
    FinetuneStarted {
        /// Job ordinal (1-based) for log correlation.
        job: u64,
    },
    /// Registry listing.
    Versions {
        /// The live version id, if any.
        live: Option<u64>,
        /// Every version the manifest knows, in id order.
        versions: Vec<VersionInfo>,
        /// The last fine-tune failure, if any (cleared by a success).
        #[serde(default)]
        last_finetune_error: Option<String>,
    },
    /// Acknowledges `shutdown`; the server exits after this.
    Bye,
    /// A request failed.
    Error {
        kind: ErrorKind,
        message: String,
    },
}

/// One registry version in a `versions` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionInfo {
    /// Version id.
    pub id: u64,
    /// Lifecycle state.
    pub state: VersionState,
    /// Open sessions pinned to it in the engine (0 for versions not
    /// installed).
    #[serde(default)]
    pub sessions: u64,
    /// Provenance note recorded at stage/quarantine time.
    #[serde(default)]
    pub note: String,
}

/// Machine-matchable error categories on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorKind {
    /// Admission control shed the request; retry later.
    Overloaded,
    /// The session id is unknown or already closed.
    UnknownSession,
    /// The request was malformed or failed validation.
    InvalidRequest,
    /// The server is shutting down.
    ShuttingDown,
    /// The server is draining; existing sessions proceed, new opens fail.
    Draining,
    /// The detach token is unknown, already redeemed, or expired.
    UnknownToken,
    /// A model-lifecycle operation failed in the registry (corrupt
    /// artifact, failed validation gate, crash-window fault).
    Registry,
    /// The model version id is unknown (to the registry or the engine).
    UnknownVersion,
    /// Rollback requested but no previous version is retained.
    NoPreviousVersion,
    /// Lifecycle verbs need a server started with `--registry`.
    NoRegistry,
    /// A fine-tune job is already running; retry after it finishes.
    Busy,
    /// An internal serving failure.
    Internal,
}

impl From<&ServeError> for ErrorKind {
    fn from(e: &ServeError) -> Self {
        match e {
            ServeError::Overloaded { .. } => ErrorKind::Overloaded,
            ServeError::UnknownSession(_) => ErrorKind::UnknownSession,
            ServeError::InvalidConfig { .. } => ErrorKind::InvalidRequest,
            ServeError::ShuttingDown => ErrorKind::ShuttingDown,
            ServeError::Draining => ErrorKind::Draining,
            ServeError::UnknownToken => ErrorKind::UnknownToken,
            ServeError::Generate(_) => ErrorKind::InvalidRequest,
            ServeError::Io(_) => ErrorKind::Internal,
            ServeError::Registry(RegistryError::UnknownVersion(_)) => ErrorKind::UnknownVersion,
            ServeError::Registry(RegistryError::NoPreviousVersion) => {
                ErrorKind::NoPreviousVersion
            }
            ServeError::Registry(_) => ErrorKind::Registry,
            ServeError::UnknownVersion(_) => ErrorKind::UnknownVersion,
            ServeError::NoPreviousVersion => ErrorKind::NoPreviousVersion,
            ServeError::NoRegistry => ErrorKind::NoRegistry,
            ServeError::FineTuneBusy => ErrorKind::Busy,
        }
    }
}

impl Response {
    /// The error response for a [`ServeError`].
    pub fn from_error(e: &ServeError) -> Response {
        Response::Error {
            kind: ErrorKind::from(e),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_with_defaults() {
        let r: Request =
            serde_json::from_str(r#"{"op":"open","seed":7}"#).expect("minimal open parses");
        assert_eq!(
            r,
            Request::Open {
                seed: 7,
                streams: 1,
                device: "phone".to_string(),
                max_stream_len: None,
            }
        );
        let n: Request =
            serde_json::from_str(r#"{"op":"next","session":3}"#).expect("minimal next parses");
        assert_eq!(
            n,
            Request::Next {
                session: 3,
                max: DEFAULT_MAX_EVENTS,
                wait_ms: DEFAULT_WAIT_MS,
            }
        );
        let d: Request =
            serde_json::from_str(r#"{"op":"drain"}"#).expect("minimal drain parses");
        assert_eq!(
            d,
            Request::Drain {
                timeout_ms: DEFAULT_DRAIN_TIMEOUT_MS,
            }
        );
        for req in [
            Request::Stats,
            Request::Shutdown,
            Request::Close { session: 9 },
            Request::Detach,
            Request::Reattach {
                token: "00ff".to_string(),
            },
            Request::Drain { timeout_ms: 250 },
            Request::Publish {
                path: Some("model.json".to_string()),
                version: None,
            },
            Request::Publish {
                path: None,
                version: Some(3),
            },
            Request::Rollback,
            Request::Finetune {
                trace: "trace.jsonl".to_string(),
                epochs: Some(2),
                seed: Some(99),
            },
            Request::Versions,
        ] {
            let json = serde_json::to_string(&req).expect("serializes");
            let back: Request = serde_json::from_str(&json).expect("parses back");
            assert_eq!(req, back);
        }
    }

    #[test]
    fn lifecycle_verbs_parse_with_defaults() {
        let p: Request = serde_json::from_str(r#"{"op":"publish","path":"m.json"}"#)
            .expect("minimal publish parses");
        assert_eq!(
            p,
            Request::Publish {
                path: Some("m.json".to_string()),
                version: None,
            }
        );
        let f: Request = serde_json::from_str(r#"{"op":"finetune","trace":"t.jsonl"}"#)
            .expect("minimal finetune parses");
        assert_eq!(
            f,
            Request::Finetune {
                trace: "t.jsonl".to_string(),
                epochs: None,
                seed: None,
            }
        );
        let resp = Response::Versions {
            live: Some(2),
            versions: vec![VersionInfo {
                id: 2,
                state: VersionState::Live,
                sessions: 7,
                note: "imported".to_string(),
            }],
            last_finetune_error: None,
        };
        let json = serde_json::to_string(&resp).expect("serializes");
        assert!(json.contains("\"live\""));
        let back: Response = serde_json::from_str(&json).expect("parses back");
        assert_eq!(back, resp);
    }

    #[test]
    fn lifecycle_errors_map_to_wire_kinds() {
        assert_eq!(
            ErrorKind::from(&ServeError::NoRegistry),
            ErrorKind::NoRegistry
        );
        assert_eq!(ErrorKind::from(&ServeError::FineTuneBusy), ErrorKind::Busy);
        assert_eq!(
            ErrorKind::from(&ServeError::NoPreviousVersion),
            ErrorKind::NoPreviousVersion
        );
        assert_eq!(
            ErrorKind::from(&ServeError::UnknownVersion(4)),
            ErrorKind::UnknownVersion
        );
        assert_eq!(
            ErrorKind::from(&ServeError::Registry(RegistryError::UnknownVersion(4))),
            ErrorKind::UnknownVersion
        );
        assert_eq!(
            ErrorKind::from(&ServeError::Registry(RegistryError::CanaryFailed {
                version: 2,
                detail: "non-finite".to_string(),
            })),
            ErrorKind::Registry
        );
    }

    #[test]
    fn unknown_ops_and_fields_are_rejected() {
        assert!(serde_json::from_str::<Request>(r#"{"op":"frobnicate"}"#).is_err());
        assert!(
            serde_json::from_str::<Request>(r#"{"op":"stats","bogus":1}"#).is_err(),
            "unknown fields rejected so typos fail loudly"
        );
    }

    #[test]
    fn serve_errors_map_to_wire_kinds() {
        let shed = ServeError::Overloaded {
            open: 4,
            cap: 4,
            queued: 0,
            watermark: 100,
        };
        match Response::from_error(&shed) {
            Response::Error { kind, message } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert!(message.contains("cap 4"));
            }
            other => panic!("expected error response, got {other:?}"),
        }
        assert_eq!(
            ErrorKind::from(&ServeError::UnknownSession(1)),
            ErrorKind::UnknownSession
        );
        assert_eq!(
            ErrorKind::from(&ServeError::ShuttingDown),
            ErrorKind::ShuttingDown
        );
        assert_eq!(ErrorKind::from(&ServeError::Draining), ErrorKind::Draining);
        assert_eq!(
            ErrorKind::from(&ServeError::UnknownToken),
            ErrorKind::UnknownToken
        );
    }

    #[test]
    fn failure_events_serialize_distinctly() {
        let ev = SessionEvent::Failed {
            reason: "worker panic: chaos".to_string(),
        };
        let json = serde_json::to_string(&ev).expect("serializes");
        assert!(json.contains("\"reason\""));
        let back: SessionEvent = serde_json::from_str(&json).expect("parses back");
        assert_eq!(back, ev);
    }
}
