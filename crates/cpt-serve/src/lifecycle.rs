//! The lifecycle director: the single owner of the model [`Registry`] at
//! serve time.
//!
//! The engine knows nothing about disk — it serves whatever versions are
//! installed in it. The registry knows nothing about sessions — it is a
//! durable state machine over artifacts. The [`Director`] is the bridge:
//! every `publish`/`rollback`/`finetune` verb flows through it, and it
//! keeps the two sides convergent:
//!
//! - **publish** stages (or looks up) a candidate, runs the validation
//!   gate (file checksum + checkpoint-load validation + deterministic
//!   canary), installs the model in the engine, commits the durable
//!   promotion, and only then flips the engine's live version. A crash
//!   (or chaos-simulated crash) between the durable commit steps leaves
//!   the old version serving and the candidate either staged or
//!   quarantined — never a half-promoted hybrid.
//! - **engine → registry feedback** (version retirement when the last
//!   pinned session drains, trip-wire demotions) arrives on the engine's
//!   lifecycle hook, which may fire *under engine locks*. The director
//!   therefore never touches the registry from the hook: the hook does a
//!   non-blocking channel send, and a dedicated `cpt-serve-lifecycle`
//!   thread applies the durable transition. This breaks the AB-BA cycle
//!   between the registry mutex (held across publish) and the engine
//!   state lock (held while hooks fire).
//! - **finetune** runs the deterministic trainer in a supervised
//!   background thread: panics are contained with `catch_unwind`,
//!   divergence is retried a bounded number of times with deterministic
//!   seed bumps, and the result — success or typed failure — never
//!   disturbs the serving model except through the same gated publish
//!   path.

#![deny(clippy::unwrap_used)]

use crate::chaos::ChaosPlan;
use crate::engine::{LifecycleEvent, ServeHandle};
use crate::error::ServeError;
use crate::registry::{Registry, RegistryError, VersionRecord};
use cpt_gpt::transfer::{fine_tune, FineTuneConfig};
use cpt_gpt::{TrainConfig, TrainError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Bounded retry budget for one fine-tune job: the first attempt plus
/// this many deterministic-seed-bump retries after divergence or a panic.
pub const FINETUNE_ATTEMPTS: u64 = 3;

/// What a successful publish did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// The version now live.
    pub version: u64,
    /// The version it displaced (None when the registry was empty).
    pub previous: Option<u64>,
}

/// A supervised online fine-tune request.
#[derive(Debug, Clone)]
pub struct FineTuneSpec {
    /// Path to the adaptation trace (JSON-lines dataset).
    pub trace: String,
    /// Base epochs before the fine-tune fraction is applied
    /// (default 4; always at least 1 after scaling).
    pub epochs: Option<usize>,
    /// Training seed (default 0). Retries bump it deterministically.
    pub seed: Option<u64>,
}

/// Messages for the lifecycle-persistence thread.
enum DirectorMsg {
    Event(LifecycleEvent),
    Stop,
}

/// Shared state between the director, the persistence thread, and the
/// fine-tune thread.
struct Inner {
    registry: Mutex<Registry>,
    handle: ServeHandle,
    chaos: ChaosPlan,
    /// One supervised fine-tune at a time; `swap(true)` is the admission.
    finetune_busy: AtomicBool,
    /// Monotonic job ids returned by [`Director::finetune`].
    finetune_seq: AtomicU64,
    /// Global attempt ordinal (1-based, across jobs) — the chaos
    /// coordinate for [`ChaosPlan::panics_finetune`].
    finetune_attempts: AtomicU64,
    /// The last fine-tune failure, for `versions` reporting; cleared by
    /// the next success.
    last_finetune_error: Mutex<Option<String>>,
    finetune_join: Mutex<Option<JoinHandle<()>>>,
}

impl Inner {
    /// Registry lock with poison recovery: the registry's own discipline
    /// is clone-mutate-commit, so state observed after a panic is always
    /// a durably committed manifest.
    fn lock_registry(&self) -> MutexGuard<'_, Registry> {
        match self.registry.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn lock_last_error(&self) -> MutexGuard<'_, Option<String>> {
        match self.last_finetune_error.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The gated promotion path shared by `publish` and `finetune`:
    /// validate → install in engine → durable promote → engine promote.
    /// The registry lock is held across the whole sequence so publishes
    /// serialize; the engine's lifecycle hook never takes this lock
    /// in-line (see module docs), so this cannot deadlock.
    fn publish_locked(&self, reg: &mut Registry, id: u64) -> Result<PublishOutcome, ServeError> {
        let model = match reg.validate(id) {
            Ok(m) => m,
            Err(e) => {
                if matches!(
                    e,
                    RegistryError::CorruptArtifact { .. }
                        | RegistryError::ValidationFailed { .. }
                        | RegistryError::CanaryFailed { .. }
                ) {
                    // The registry already quarantined it durably; this
                    // only surfaces the count in /stats.
                    self.handle.note_version_quarantined();
                }
                return Err(e.into());
            }
        };
        self.handle.install_version(id, Arc::new(model));
        if let Some(delay) = self.chaos.publish_delay() {
            // Chaos: widen the window between validation and promotion so
            // concurrent session traffic can land inside it.
            std::thread::sleep(delay);
        }
        match reg.promote(id) {
            Ok(previous) => {
                // Durable state has switched; now flip the engine. New
                // sessions open on `id` from here on; pinned sessions
                // keep draining on the displaced version.
                self.handle.promote_version(id)?;
                Ok(PublishOutcome {
                    version: id,
                    previous,
                })
            }
            Err(e) => {
                // The durable promotion did not happen (torn-commit chaos,
                // IO failure): the old version must keep serving, so the
                // staged in-engine copy is dropped. `uninstall_version`
                // refuses if anything pinned it, which cannot happen for a
                // never-promoted version.
                self.handle.uninstall_version(id);
                Err(e.into())
            }
        }
    }
}

/// The model-lifecycle front end: owns the registry, mediates every
/// publish/rollback/finetune, and persists engine-originated transitions
/// (retirement, trip-wire demotions) from a dedicated thread.
pub struct Director {
    inner: Arc<Inner>,
    tx: mpsc::Sender<DirectorMsg>,
    events_join: Mutex<Option<JoinHandle<()>>>,
}

impl Director {
    /// Wires a registry to a running engine: installs the engine's
    /// lifecycle hook (a non-blocking channel send) and starts the
    /// persistence thread that applies retire/rollback transitions to
    /// the registry.
    pub fn new(
        registry: Registry,
        handle: ServeHandle,
        chaos: ChaosPlan,
    ) -> Result<Director, ServeError> {
        let inner = Arc::new(Inner {
            registry: Mutex::new(registry),
            handle,
            chaos,
            finetune_busy: AtomicBool::new(false),
            finetune_seq: AtomicU64::new(0),
            finetune_attempts: AtomicU64::new(0),
            last_finetune_error: Mutex::new(None),
            finetune_join: Mutex::new(None),
        });
        let (tx, rx) = mpsc::channel();
        let thread_inner = Arc::clone(&inner);
        let events_join = std::thread::Builder::new()
            .name("cpt-serve-lifecycle".to_string())
            .spawn(move || event_loop(&thread_inner, &rx))?;
        let hook_tx = tx.clone();
        inner.handle.set_lifecycle_hook(move |ev| {
            // May run under engine locks: send and return, never block.
            let _ = hook_tx.send(DirectorMsg::Event(ev));
        });
        Ok(Director {
            inner,
            tx,
            events_join: Mutex::new(Some(events_join)),
        })
    }

    /// Stages a model file as a new candidate and promotes it through the
    /// full gate. The source file is copied into the registry; the
    /// original is never served from directly.
    pub fn publish_path(&self, path: &Path) -> Result<PublishOutcome, ServeError> {
        let mut reg = self.inner.lock_registry();
        let model = cpt_gpt::load_model_file(path).map_err(|e| {
            // Not yet staged, so there is no version id to blame; the
            // detail names the offending source file.
            ServeError::Registry(RegistryError::ValidationFailed {
                version: 0,
                detail: format!("cannot load candidate {}: {e}", path.display()),
            })
        })?;
        let id = reg.stage(&model, &format!("published from {}", path.display()))?;
        self.inner.publish_locked(&mut reg, id)
    }

    /// Promotes an already-staged candidate (e.g. one left behind by a
    /// crashed publish) through the full gate.
    pub fn publish_version(&self, id: u64) -> Result<PublishOutcome, ServeError> {
        let mut reg = self.inner.lock_registry();
        self.inner.publish_locked(&mut reg, id)
    }

    /// Demotes the live version and restores the previous one, durably
    /// first, then in the engine. Returns `(demoted, live)`.
    pub fn rollback(&self) -> Result<(u64, u64), ServeError> {
        let mut reg = self.inner.lock_registry();
        let (demoted, live) = reg.rollback()?;
        match self.inner.handle.rollback_version() {
            Ok(_) => Ok((demoted, live)),
            // A trip-wire can beat an operator rollback to the engine;
            // if the engine already serves what we just restored, the two
            // sides agree and the verb succeeded.
            Err(ServeError::NoPreviousVersion)
                if self.inner.handle.live_version() == live =>
            {
                Ok((demoted, live))
            }
            Err(e) => Err(e),
        }
    }

    /// Starts a supervised background fine-tune; returns the job id
    /// immediately. Only one job runs at a time ([`ServeError::FineTuneBusy`]).
    pub fn finetune(&self, spec: FineTuneSpec) -> Result<u64, ServeError> {
        if self.inner.finetune_busy.swap(true, Ordering::SeqCst) {
            return Err(ServeError::FineTuneBusy);
        }
        // Reap the previous job's thread so handles never accumulate.
        if let Some(h) = self.take_finetune_join() {
            let _ = h.join();
        }
        let job = self.inner.finetune_seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.handle.note_finetune_started();
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name(format!("cpt-serve-finetune-{job}"))
            .spawn(move || {
                match run_finetune(&inner, &spec) {
                    Ok(_) => {
                        *inner.lock_last_error() = None;
                        inner.handle.note_finetune_completed();
                    }
                    Err(msg) => {
                        *inner.lock_last_error() = Some(msg);
                        inner.handle.note_finetune_failed();
                    }
                }
                inner.finetune_busy.store(false, Ordering::SeqCst);
            });
        match spawned {
            Ok(h) => {
                *lock_join(&self.inner.finetune_join) = Some(h);
                Ok(job)
            }
            Err(e) => {
                self.inner.handle.note_finetune_failed();
                self.inner.finetune_busy.store(false, Ordering::SeqCst);
                Err(ServeError::Io(e))
            }
        }
    }

    /// True while a fine-tune job is running.
    pub fn finetune_running(&self) -> bool {
        self.inner.finetune_busy.load(Ordering::SeqCst)
    }

    /// Registry snapshot for the `versions` verb: the live id, every
    /// manifest record, and the last fine-tune failure (if any).
    pub fn versions(&self) -> (Option<u64>, Vec<VersionRecord>, Option<String>) {
        let reg = self.inner.lock_registry();
        let live = reg.live();
        let records = reg.manifest().versions.clone();
        drop(reg);
        let last_err = self.inner.lock_last_error().clone();
        (live, records, last_err)
    }

    /// Blocks until an in-flight fine-tune (if any) finishes. Test/CLI
    /// helper; the serve path polls stats instead.
    pub fn join_finetune(&self) {
        if let Some(h) = self.take_finetune_join() {
            let _ = h.join();
        }
    }

    fn take_finetune_join(&self) -> Option<JoinHandle<()>> {
        lock_join(&self.inner.finetune_join).take()
    }

    /// Orderly stop: join any in-flight fine-tune (it publishes through
    /// the normal gate), then drain and stop the persistence thread. The
    /// engine hook stays installed but its sends go nowhere once the
    /// receiver is gone — a late event after shutdown is dropped, and the
    /// next `Registry::open` reconciles states from the manifest.
    pub fn shutdown(&self) {
        if let Some(h) = self.take_finetune_join() {
            let _ = h.join();
        }
        let _ = self.tx.send(DirectorMsg::Stop);
        let join = match self.events_join.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        };
        if let Some(h) = join {
            let _ = h.join();
        }
    }
}

fn lock_join(m: &Mutex<Option<JoinHandle<()>>>) -> MutexGuard<'_, Option<JoinHandle<()>>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The persistence thread: applies engine-originated transitions to the
/// durable registry, outside any engine lock.
fn event_loop(inner: &Inner, rx: &mpsc::Receiver<DirectorMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            DirectorMsg::Stop => break,
            DirectorMsg::Event(LifecycleEvent::Retired(version)) => {
                // Best-effort: a version that is no longer Draining (an
                // operator re-promoted it meanwhile) is left alone.
                let _ = inner.lock_registry().retire(version);
            }
            DirectorMsg::Event(LifecycleEvent::TripWire { demoted, .. }) => {
                let mut reg = inner.lock_registry();
                // The engine already demoted in-memory; mirror it durably
                // only if the manifest still believes the bad version is
                // live (an operator rollback may have raced us here). The
                // engine side is authoritative for serving either way.
                if reg.live() == Some(demoted) {
                    let _ = reg.rollback();
                }
            }
        }
    }
}

/// The supervised fine-tune body: bounded retries around a contained
/// trainer run, then the gated publish. Returns a human-readable failure
/// reason (already typed at the wire as `finetunes_failed` + the
/// `versions` verb's `last_finetune_error`).
fn run_finetune(inner: &Inner, spec: &FineTuneSpec) -> Result<PublishOutcome, String> {
    let data = cpt_trace::io::read_dataset(&spec.trace)
        .map_err(|e| format!("cannot read fine-tune trace {}: {e}", spec.trace))?;
    // Fine-tune from exactly what is serving: the live artifact, loaded
    // fresh through its checksum gate.
    let (base_version, base) = inner
        .lock_registry()
        .load_live()
        .map_err(|e| format!("cannot load live version: {e}"))?;
    let max_len = base.config.max_len;
    let data = data.clamp_lengths(2, max_len + 1);
    let base_cfg = TrainConfig {
        epochs: spec.epochs.unwrap_or(4).max(1),
        seed: spec.seed.unwrap_or(0),
        ..TrainConfig::quick()
    };
    let ft = FineTuneConfig::default();
    let mut last_err = String::new();
    for attempt in 0..FINETUNE_ATTEMPTS {
        let attempt_idx = inner.finetune_attempts.fetch_add(1, Ordering::SeqCst) + 1;
        // Deterministic seed bump: a diverged attempt re-runs with a
        // different but reproducible data order.
        let cfg = TrainConfig {
            seed: base_cfg.seed.wrapping_add(attempt),
            ..base_cfg
        };
        let chaos = inner.chaos;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if chaos.panics_finetune(attempt_idx) {
                panic!("chaos: scheduled fine-tune panic (attempt {attempt_idx})");
            }
            fine_tune(&base, &data, &cfg, &ft)
        }));
        match outcome {
            Ok(Ok((model, _report))) => {
                let mut reg = inner.lock_registry();
                let note = format!(
                    "finetune of v{base_version} on {} (seed {})",
                    spec.trace, cfg.seed
                );
                let id = reg
                    .stage(&model, &note)
                    .map_err(|e| format!("cannot stage fine-tuned model: {e}"))?;
                return inner
                    .publish_locked(&mut reg, id)
                    .map_err(|e| format!("fine-tuned candidate rejected: {e}"));
            }
            Ok(Err(TrainError::Diverged { cause, retries, .. })) => {
                last_err = format!(
                    "attempt {}: diverged ({cause:?}) after {retries} watchdog retries",
                    attempt + 1
                );
            }
            Ok(Err(e)) => return Err(format!("fine-tune failed: {e}")),
            Err(payload) => {
                last_err = format!("attempt {}: {}", attempt + 1, panic_text(&*payload));
            }
        }
    }
    Err(format!(
        "fine-tune gave up after {FINETUNE_ATTEMPTS} attempts; last failure: {last_err}"
    ))
}

/// Extracts a readable message from a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}
