//! Serving metrics: lock-free counters plus a log₂-bucketed latency
//! histogram for per-slice decode latency. Everything is atomics, so
//! workers record without touching the engine lock, and a `/stats`
//! snapshot is a consistent-enough read for monitoring (counters may be a
//! few events apart — that is fine for operational visibility).

#![deny(clippy::unwrap_used)]

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log₂ buckets: covers 0 µs to ~2⁴⁶ µs (≈ 2 years) per slice.
const BUCKETS: usize = 48;

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` holds samples whose bit length is `i` (so bucket 0 is `0 µs`,
/// bucket 1 is `1 µs`, bucket 11 is `1024..2047 µs`, …). Quantiles are
/// reported as the upper bound of the bucket containing the target rank —
/// at most 2× off, which is plenty for p50/p99 monitoring and keeps
/// recording to one atomic increment.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.record_value(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw value (the histogram is unit-agnostic: slice
    /// latency uses microseconds, batch occupancy uses session counts).
    pub fn record_value(&self, v: u64) {
        let idx = (64 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile in microseconds (upper bucket bound); 0 if empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.quantile(q)
    }

    /// Adds `other`'s samples bucket-wise (sharded-engine merge: the
    /// union histogram of per-shard histograms is exact, because buckets
    /// are positionally identical).
    pub fn absorb(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// The `q`-quantile in the histogram's raw unit (upper bucket bound);
    /// 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket `idx`: largest value with that bit
                // length (bucket 0 holds only 0).
                return if idx == 0 { 0 } else { (1u64 << idx) - 1 };
            }
        }
        (1u64 << (BUCKETS - 1)) - 1
    }
}

/// Lock-free serving counters, owned by the engine and shared with every
/// worker and protocol thread.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    sessions_opened: AtomicU64,
    sessions_shed: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_failed: AtomicU64,
    sessions_detached: AtomicU64,
    sessions_reattached: AtomicU64,
    sessions_expired: AtomicU64,
    sessions_force_failed: AtomicU64,
    worker_panics: AtomicU64,
    events_generated: AtomicU64,
    events_delivered: AtomicU64,
    slices: AtomicU64,
    slice_latency: LatencyHistogram,
    /// Events decoded through the batched (packed-GEMM) path.
    batched_tokens: AtomicU64,
    /// Events decoded through the sequential (`--no-batch-decode`) path.
    sequential_tokens: AtomicU64,
    /// Batched decode rounds executed (one packed forward pass each).
    batch_rounds: AtomicU64,
    /// Largest GEMM row count observed in one batched round.
    batch_peak: AtomicU64,
    /// Log₂-bucketed histogram of GEMM rows per batched round.
    batch_occupancy: LatencyHistogram,
    /// Model versions promoted to live since start.
    versions_published: AtomicU64,
    /// Rollbacks (manual verb or divergence trip-wire) since start.
    versions_rolled_back: AtomicU64,
    /// Candidate versions quarantined by the validation gate since start.
    versions_quarantined: AtomicU64,
    /// Demoted versions freed after their last pinned session ended.
    versions_retired: AtomicU64,
    /// Serve-time divergence trip-wire firings since start.
    divergence_trips: AtomicU64,
    /// Fine-tune jobs currently running (0 or 1; gauge).
    finetunes_running: AtomicU64,
    /// Fine-tune jobs that published successfully since start.
    finetunes_completed: AtomicU64,
    /// Fine-tune jobs that failed (divergence, panic, rejected publish)
    /// since start.
    finetunes_failed: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// The point-in-time lock-guarded gauges the engine supplies to
/// [`Metrics::snapshot`]; everything else in the snapshot comes from the
/// merged atomic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotGauges {
    /// Sessions currently open engine-wide.
    pub sessions_open: usize,
    /// Events queued across all sessions.
    pub queued_events: usize,
    /// Recycled decode states summed over shard free-lists.
    pub free_states: usize,
    /// Decode workers across all shards.
    pub workers: usize,
    /// The model version new sessions open on.
    pub live_version: u64,
}

impl Metrics {
    /// Fresh metrics; the uptime clock starts now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            sessions_opened: AtomicU64::new(0),
            sessions_shed: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_failed: AtomicU64::new(0),
            sessions_detached: AtomicU64::new(0),
            sessions_reattached: AtomicU64::new(0),
            sessions_expired: AtomicU64::new(0),
            sessions_force_failed: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            events_generated: AtomicU64::new(0),
            events_delivered: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            slice_latency: LatencyHistogram::new(),
            batched_tokens: AtomicU64::new(0),
            sequential_tokens: AtomicU64::new(0),
            batch_rounds: AtomicU64::new(0),
            batch_peak: AtomicU64::new(0),
            batch_occupancy: LatencyHistogram::new(),
            versions_published: AtomicU64::new(0),
            versions_rolled_back: AtomicU64::new(0),
            versions_quarantined: AtomicU64::new(0),
            versions_retired: AtomicU64::new(0),
            divergence_trips: AtomicU64::new(0),
            finetunes_running: AtomicU64::new(0),
            finetunes_completed: AtomicU64::new(0),
            finetunes_failed: AtomicU64::new(0),
        }
    }

    /// Counts a model version promoted to live.
    pub fn inc_version_published(&self) {
        self.versions_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rollback (manual or trip-wire).
    pub fn inc_version_rolled_back(&self) {
        self.versions_rolled_back.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a candidate quarantined by the validation gate.
    pub fn inc_version_quarantined(&self) {
        self.versions_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a demoted version freed by the refcounted retirer.
    pub fn inc_version_retired(&self) {
        self.versions_retired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a divergence trip-wire firing.
    pub fn inc_divergence_trip(&self) {
        self.divergence_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a fine-tune job as running (gauge up).
    pub fn finetune_started(&self) {
        self.finetunes_running.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the running fine-tune job as published (gauge down).
    pub fn finetune_completed(&self) {
        self.finetunes_running.fetch_sub(1, Ordering::Relaxed);
        self.finetunes_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the running fine-tune job as failed (gauge down).
    pub fn finetune_failed(&self) {
        self.finetunes_running.fetch_sub(1, Ordering::Relaxed);
        self.finetunes_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batched decode round: `rows` sessions went through the
    /// packed GEMM and `events` events were produced (GEMM rows plus any
    /// bootstrap events, which skip the forward pass).
    pub fn record_batch_round(&self, rows: u64, events: u64) {
        self.batch_rounds.fetch_add(1, Ordering::Relaxed);
        self.batched_tokens.fetch_add(events, Ordering::Relaxed);
        if rows > 0 {
            self.batch_occupancy.record_value(rows);
            self.batch_peak.fetch_max(rows, Ordering::Relaxed);
        }
    }

    /// Counts events decoded by the sequential (`--no-batch-decode`) path.
    pub fn add_sequential_tokens(&self, n: u64) {
        self.sequential_tokens.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one scheduling slice: its wall-clock latency and the number
    /// of events it decoded.
    pub fn record_slice(&self, latency: Duration, events: u64) {
        self.slices.fetch_add(1, Ordering::Relaxed);
        self.events_generated.fetch_add(events, Ordering::Relaxed);
        self.slice_latency.record(latency);
    }

    /// Counts an admitted `open_session`.
    pub fn inc_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a shed `open_session`.
    pub fn inc_shed(&self) {
        self.sessions_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a closed session.
    pub fn inc_closed(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts events handed to a consumer by `next_events`.
    pub fn add_delivered(&self, n: u64) {
        self.events_delivered.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a session terminated by a contained failure (worker panic or
    /// drain force-fail).
    pub fn inc_failed(&self) {
        self.sessions_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session parked under a detach token.
    pub fn add_detached(&self, n: u64) {
        self.sessions_detached.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a session resumed from a detach token.
    pub fn add_reattached(&self, n: u64) {
        self.sessions_reattached.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a parked session reclaimed because its token's TTL expired.
    pub fn add_expired(&self, n: u64) {
        self.sessions_expired.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a session force-failed at a drain deadline.
    pub fn inc_force_failed(&self) {
        self.sessions_force_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a worker panic that was contained by `catch_unwind`.
    pub fn inc_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `other`'s counters into `self` (the sharded engine's `/stats`
    /// merge: counter sums are exact, histograms merge bucket-wise, and
    /// `batch_peak` takes the max across shards).
    pub fn absorb(&self, other: &Metrics) {
        fn add(dst: &AtomicU64, src: &AtomicU64) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        add(&self.sessions_opened, &other.sessions_opened);
        add(&self.sessions_shed, &other.sessions_shed);
        add(&self.sessions_closed, &other.sessions_closed);
        add(&self.sessions_failed, &other.sessions_failed);
        add(&self.sessions_detached, &other.sessions_detached);
        add(&self.sessions_reattached, &other.sessions_reattached);
        add(&self.sessions_expired, &other.sessions_expired);
        add(&self.sessions_force_failed, &other.sessions_force_failed);
        add(&self.worker_panics, &other.worker_panics);
        add(&self.events_generated, &other.events_generated);
        add(&self.events_delivered, &other.events_delivered);
        add(&self.slices, &other.slices);
        self.slice_latency.absorb(&other.slice_latency);
        add(&self.batched_tokens, &other.batched_tokens);
        add(&self.sequential_tokens, &other.sequential_tokens);
        add(&self.batch_rounds, &other.batch_rounds);
        self.batch_peak
            .fetch_max(other.batch_peak.load(Ordering::Relaxed), Ordering::Relaxed);
        self.batch_occupancy.absorb(&other.batch_occupancy);
        add(&self.versions_published, &other.versions_published);
        add(&self.versions_rolled_back, &other.versions_rolled_back);
        add(&self.versions_quarantined, &other.versions_quarantined);
        add(&self.versions_retired, &other.versions_retired);
        add(&self.divergence_trips, &other.divergence_trips);
        add(&self.finetunes_running, &other.finetunes_running);
        add(&self.finetunes_completed, &other.finetunes_completed);
        add(&self.finetunes_failed, &other.finetunes_failed);
    }

    /// Builds the engine-wide view of `base` (whose uptime clock is kept)
    /// plus every shard's counters.
    pub fn merged<'a>(
        base: &Metrics,
        others: impl IntoIterator<Item = &'a Metrics>,
    ) -> Metrics {
        let out = Metrics {
            started: base.started,
            ..Metrics::new()
        };
        out.absorb(base);
        for m in others {
            out.absorb(m);
        }
        out
    }

    /// Builds a snapshot; the engine supplies the lock-guarded gauges
    /// (including the live version id, the per-version pinned-session
    /// counts, and each shard's `(open sessions, runnable sessions)`
    /// occupancy pair for the imbalance stats).
    pub fn snapshot(
        &self,
        gauges: SnapshotGauges,
        sessions_per_version: &[(u64, u64)],
        shard_occupancy: &[(u64, u64)],
    ) -> StatsSnapshot {
        let SnapshotGauges {
            sessions_open,
            queued_events,
            free_states,
            workers,
            live_version,
        } = gauges;
        let uptime = self.started.elapsed().as_secs_f64();
        let generated = self.events_generated.load(Ordering::Relaxed);
        StatsSnapshot {
            uptime_secs: uptime,
            workers,
            sessions_open: sessions_open as u64,
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_shed: self.sessions_shed.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_failed: self.sessions_failed.load(Ordering::Relaxed),
            sessions_detached: self.sessions_detached.load(Ordering::Relaxed),
            sessions_reattached: self.sessions_reattached.load(Ordering::Relaxed),
            sessions_expired: self.sessions_expired.load(Ordering::Relaxed),
            sessions_force_failed: self.sessions_force_failed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            events_generated: generated,
            events_delivered: self.events_delivered.load(Ordering::Relaxed),
            events_per_sec: if uptime > 0.0 {
                generated as f64 / uptime
            } else {
                0.0
            },
            queued_events: queued_events as u64,
            free_states: free_states as u64,
            slices: self.slices.load(Ordering::Relaxed),
            slice_p50_us: self.slice_latency.quantile_us(0.50),
            slice_p99_us: self.slice_latency.quantile_us(0.99),
            batched_tokens: self.batched_tokens.load(Ordering::Relaxed),
            sequential_tokens: self.sequential_tokens.load(Ordering::Relaxed),
            batch_rounds: self.batch_rounds.load(Ordering::Relaxed),
            batch_p50: self.batch_occupancy.quantile(0.50),
            batch_p99: self.batch_occupancy.quantile(0.99),
            batch_peak: self.batch_peak.load(Ordering::Relaxed),
            live_version,
            sessions_per_version: sessions_per_version
                .iter()
                .map(|&(version, sessions)| VersionSessions { version, sessions })
                .collect(),
            versions_published: self.versions_published.load(Ordering::Relaxed),
            versions_rolled_back: self.versions_rolled_back.load(Ordering::Relaxed),
            versions_quarantined: self.versions_quarantined.load(Ordering::Relaxed),
            versions_retired: self.versions_retired.load(Ordering::Relaxed),
            divergence_trips: self.divergence_trips.load(Ordering::Relaxed),
            finetunes_running: self.finetunes_running.load(Ordering::Relaxed),
            finetunes_completed: self.finetunes_completed.load(Ordering::Relaxed),
            finetunes_failed: self.finetunes_failed.load(Ordering::Relaxed),
            shards: shard_occupancy.len() as u64,
            shard_sessions_max: shard_occupancy.iter().map(|&(s, _)| s).max().unwrap_or(0),
            shard_sessions_min: shard_occupancy.iter().map(|&(s, _)| s).min().unwrap_or(0),
            shard_runnable_max: shard_occupancy.iter().map(|&(_, r)| r).max().unwrap_or(0),
            shard_runnable_min: shard_occupancy.iter().map(|&(_, r)| r).min().unwrap_or(0),
        }
    }
}

/// Pinned-session count for one installed model version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionSessions {
    /// The installed version id.
    pub version: u64,
    /// Open sessions pinned to it.
    pub sessions: u64,
}

/// A point-in-time view of the serving metrics, as reported by the
/// `stats` protocol verb and the library `ServeHandle::stats`.
///
/// No longer `Copy` since the model-lifecycle fields landed (the
/// per-version session table is heap data); clone it explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Seconds since the engine started.
    pub uptime_secs: f64,
    /// Decode worker threads.
    pub workers: usize,
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions admitted since start.
    pub sessions_opened: u64,
    /// Sessions shed by admission control since start.
    pub sessions_shed: u64,
    /// Sessions closed since start.
    pub sessions_closed: u64,
    /// Sessions terminated by a contained failure (worker panic or drain
    /// force-fail) since start.
    #[serde(default)]
    pub sessions_failed: u64,
    /// Sessions parked under a detach token since start.
    #[serde(default)]
    pub sessions_detached: u64,
    /// Sessions resumed from a detach token since start.
    #[serde(default)]
    pub sessions_reattached: u64,
    /// Parked sessions reclaimed by token-TTL expiry since start.
    #[serde(default)]
    pub sessions_expired: u64,
    /// Sessions force-failed at a drain deadline since start.
    #[serde(default)]
    pub sessions_force_failed: u64,
    /// Worker panics contained by `catch_unwind` since start.
    #[serde(default)]
    pub worker_panics: u64,
    /// Events decoded by workers since start.
    pub events_generated: u64,
    /// Events handed to consumers since start.
    pub events_delivered: u64,
    /// Decoded events per second of uptime.
    pub events_per_sec: f64,
    /// Events currently buffered in per-session queues.
    pub queued_events: u64,
    /// Recycled `DecodeState`s currently in the free-list.
    pub free_states: u64,
    /// Scheduling slices executed since start.
    pub slices: u64,
    /// Median decode-slice latency (µs, log₂-bucket upper bound).
    pub slice_p50_us: u64,
    /// 99th-percentile decode-slice latency (µs, log₂-bucket upper bound).
    pub slice_p99_us: u64,
    /// Events decoded through the batched (packed-GEMM) path since start.
    #[serde(default)]
    pub batched_tokens: u64,
    /// Events decoded through the sequential path since start.
    #[serde(default)]
    pub sequential_tokens: u64,
    /// Batched decode rounds (one packed forward pass each) since start.
    #[serde(default)]
    pub batch_rounds: u64,
    /// Median GEMM rows per batched round (log₂-bucket upper bound).
    #[serde(default)]
    pub batch_p50: u64,
    /// 99th-percentile GEMM rows per batched round (log₂-bucket upper
    /// bound).
    #[serde(default)]
    pub batch_p99: u64,
    /// Largest GEMM row count observed in one batched round.
    #[serde(default)]
    pub batch_peak: u64,
    /// The model version new sessions currently open on (1 when serving
    /// without a registry).
    #[serde(default)]
    pub live_version: u64,
    /// Installed versions and their pinned-session counts, sorted by id.
    #[serde(default)]
    pub sessions_per_version: Vec<VersionSessions>,
    /// Model versions promoted to live since start.
    #[serde(default)]
    pub versions_published: u64,
    /// Rollbacks (manual verb or divergence trip-wire) since start.
    #[serde(default)]
    pub versions_rolled_back: u64,
    /// Candidate versions quarantined by the validation gate since start.
    #[serde(default)]
    pub versions_quarantined: u64,
    /// Demoted versions freed after their last pinned session ended.
    #[serde(default)]
    pub versions_retired: u64,
    /// Serve-time divergence trip-wire firings since start.
    #[serde(default)]
    pub divergence_trips: u64,
    /// Fine-tune jobs currently running (0 or 1).
    #[serde(default)]
    pub finetunes_running: u64,
    /// Fine-tune jobs that published successfully since start.
    #[serde(default)]
    pub finetunes_completed: u64,
    /// Fine-tune jobs that failed since start, leaving the serving model
    /// untouched.
    #[serde(default)]
    pub finetunes_failed: u64,
    /// Engine shards (0 in snapshots recorded before sharding).
    #[serde(default)]
    pub shards: u64,
    /// Open sessions on the most-loaded shard (shard-imbalance stat).
    #[serde(default)]
    pub shard_sessions_max: u64,
    /// Open sessions on the least-loaded shard.
    #[serde(default)]
    pub shard_sessions_min: u64,
    /// Run-queue depth of the deepest shard at snapshot time.
    #[serde(default)]
    pub shard_runnable_max: u64,
    /// Run-queue depth of the shallowest shard at snapshot time.
    #[serde(default)]
    pub shard_runnable_min: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bucket_correctly() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram reports 0");
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 4 (8..15)
        }
        h.record(Duration::from_micros(5_000)); // bucket 13 (4096..8191)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 15);
        assert_eq!(h.quantile_us(0.99), 15);
        assert_eq!(h.quantile_us(1.0), 8191);
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new();
        m.inc_opened();
        m.inc_opened();
        m.inc_shed();
        m.inc_closed();
        m.record_slice(Duration::from_micros(100), 7);
        m.add_delivered(5);
        m.inc_failed();
        m.inc_worker_panic();
        m.add_detached(2);
        m.add_reattached(1);
        m.add_expired(1);
        m.inc_force_failed();
        m.record_batch_round(5, 6);
        m.record_batch_round(0, 1); // all-bootstrap round: no GEMM rows
        m.add_sequential_tokens(3);
        m.inc_version_published();
        m.inc_version_rolled_back();
        m.inc_version_quarantined();
        m.inc_version_retired();
        m.inc_divergence_trip();
        m.finetune_started();
        m.finetune_completed();
        m.finetune_started();
        m.finetune_failed();
        let s = m.snapshot(
            SnapshotGauges {
                sessions_open: 1,
                queued_events: 2,
                free_states: 3,
                workers: 4,
                live_version: 7,
            },
            &[(5, 0), (7, 1)],
            &[(9, 2), (3, 0)],
        );
        assert_eq!(s.sessions_failed, 1);
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.sessions_detached, 2);
        assert_eq!(s.sessions_reattached, 1);
        assert_eq!(s.sessions_expired, 1);
        assert_eq!(s.sessions_force_failed, 1);
        assert_eq!(s.sessions_opened, 2);
        assert_eq!(s.sessions_shed, 1);
        assert_eq!(s.sessions_closed, 1);
        assert_eq!(s.events_generated, 7);
        assert_eq!(s.events_delivered, 5);
        assert_eq!(s.sessions_open, 1);
        assert_eq!(s.queued_events, 2);
        assert_eq!(s.free_states, 3);
        assert_eq!(s.workers, 4);
        assert_eq!(s.slices, 1);
        assert!(s.slice_p50_us >= 100);
        assert_eq!(s.batched_tokens, 7);
        assert_eq!(s.sequential_tokens, 3);
        assert_eq!(s.batch_rounds, 2);
        assert_eq!(s.batch_peak, 5);
        // One occupancy sample of 5 → bucket 3, upper bound 7.
        assert_eq!(s.batch_p50, 7);
        assert_eq!(s.batch_p99, 7);
        assert_eq!(s.live_version, 7);
        assert_eq!(
            s.sessions_per_version,
            vec![
                VersionSessions { version: 5, sessions: 0 },
                VersionSessions { version: 7, sessions: 1 },
            ]
        );
        assert_eq!(s.versions_published, 1);
        assert_eq!(s.versions_rolled_back, 1);
        assert_eq!(s.versions_quarantined, 1);
        assert_eq!(s.versions_retired, 1);
        assert_eq!(s.divergence_trips, 1);
        assert_eq!(s.finetunes_running, 0, "gauge returns to zero");
        assert_eq!(s.finetunes_completed, 1);
        assert_eq!(s.finetunes_failed, 1);
        assert_eq!(s.shards, 2);
        assert_eq!(s.shard_sessions_max, 9);
        assert_eq!(s.shard_sessions_min, 3);
        assert_eq!(s.shard_runnable_max, 2);
        assert_eq!(s.shard_runnable_min, 0);
    }

    #[test]
    fn merged_metrics_sum_counters_and_max_peaks() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.inc_opened();
        a.record_slice(Duration::from_micros(10), 4);
        a.record_batch_round(3, 3);
        b.inc_opened();
        b.inc_opened();
        b.record_slice(Duration::from_micros(10), 6);
        b.record_batch_round(8, 8);
        let engine = Metrics::new();
        engine.inc_shed();
        let merged = Metrics::merged(&engine, [&a, &b]);
        let s = merged.snapshot(
            SnapshotGauges {
                workers: 2,
                live_version: 1,
                ..SnapshotGauges::default()
            },
            &[],
            &[],
        );
        assert_eq!(s.sessions_opened, 3);
        assert_eq!(s.sessions_shed, 1);
        assert_eq!(s.events_generated, 10);
        assert_eq!(s.slices, 2);
        assert_eq!(s.batch_rounds, 2);
        assert_eq!(s.batched_tokens, 11);
        assert_eq!(s.batch_peak, 8, "peak is a max, not a sum");
        assert_eq!(s.shards, 0, "no occupancy supplied");
    }

    #[test]
    fn old_snapshots_without_shard_fields_still_parse() {
        let m = Metrics::new();
        let s = m.snapshot(
            SnapshotGauges {
                workers: 1,
                live_version: 1,
                ..SnapshotGauges::default()
            },
            &[],
            &[(1, 0)],
        );
        let mut v = serde_json::to_value(&s).expect("snapshot serializes");
        let obj = v.as_object_mut().expect("snapshot is an object");
        for legacy_missing in [
            "shards",
            "shard_sessions_max",
            "shard_sessions_min",
            "shard_runnable_max",
            "shard_runnable_min",
        ] {
            obj.remove(legacy_missing);
        }
        let back: StatsSnapshot =
            serde_json::from_value(v).expect("pre-shard snapshots still parse");
        assert_eq!(back.shards, 0);
        assert_eq!(back.shard_sessions_max, 0);
    }
}
