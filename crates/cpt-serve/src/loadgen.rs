//! The load-generator client behind `cptgen loadgen`.
//!
//! Opens sessions against a running `cptgen serve` at a target rate and
//! drives them to completion, multiplexing many concurrently open
//! sessions per connection — a handful of client threads sustain
//! thousands of concurrent sessions, mirroring the server's own
//! no-thread-per-session design. Reports achieved throughput, shed
//! counts, and client-observed latency percentiles for the `open` and
//! `next` verbs.

#![deny(clippy::unwrap_used)]

use crate::error::ServeError;
use crate::metrics::{LatencyHistogram, StatsSnapshot};
use crate::protocol::{ErrorKind, Request, Response};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:9000`.
    pub addr: String,
    /// Total sessions to open (0 = unlimited; requires `duration`).
    pub sessions: u64,
    /// Target concurrently open sessions across all threads.
    pub concurrent: usize,
    /// Session opens per second across all threads (0 = as fast as
    /// possible).
    pub rate: f64,
    /// UE streams each session decodes.
    pub streams: usize,
    /// Client threads (each one connection, multiplexing its share of
    /// `concurrent`).
    pub threads: usize,
    /// Stop opening new sessions after this long.
    pub duration: Option<Duration>,
    /// Base session seed; session `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Hard cap on draining in-flight sessions after the open phase.
    pub drain_timeout: Duration,
    /// Send a `shutdown` verb to the server once done.
    pub shutdown: bool,
}

impl LoadgenConfig {
    /// Defaults: 100 sessions, 32 concurrent, unpaced, 1 stream each,
    /// 2 threads, 60 s drain, no server shutdown.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            sessions: 100,
            concurrent: 32,
            rate: 0.0,
            streams: 1,
            threads: 2,
            duration: None,
            seed_base: 1,
            drain_timeout: Duration::from_secs(60),
            shutdown: false,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        fn bad(field: &str, message: &str) -> ServeError {
            ServeError::InvalidConfig {
                field: field.to_string(),
                message: message.to_string(),
            }
        }
        if self.sessions == 0 && self.duration.is_none() {
            return Err(bad(
                "sessions",
                "0 (unlimited) requires a duration to bound the run",
            ));
        }
        if self.concurrent == 0 {
            return Err(bad("concurrent", "must be at least 1"));
        }
        if self.threads == 0 {
            return Err(bad("threads", "must be at least 1"));
        }
        if self.streams == 0 {
            return Err(bad("streams", "must be at least 1"));
        }
        if !self.rate.is_finite() || self.rate < 0.0 {
            return Err(bad("rate", "must be a finite non-negative number"));
        }
        Ok(())
    }
}

/// What the load generator observed, printed (and optionally written as
/// JSON) by `cptgen loadgen`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Sessions successfully opened.
    pub sessions_opened: u64,
    /// Opens shed by server admission control (`overloaded`).
    pub sessions_shed: u64,
    /// Sessions driven to `finished` and closed.
    pub sessions_completed: u64,
    /// Events received over the wire.
    pub events_received: u64,
    /// Non-overload protocol errors observed.
    pub errors: u64,
    /// Wall-clock run time in seconds.
    pub elapsed_secs: f64,
    /// Events received per second of run time.
    pub events_per_sec: f64,
    /// Client-observed `open` latency, p50/p99 (µs, bucket upper bound).
    pub open_p50_us: u64,
    pub open_p99_us: u64,
    /// Client-observed `next` latency, p50/p99 (µs, bucket upper bound).
    pub next_p50_us: u64,
    pub next_p99_us: u64,
    /// The server's final stats snapshot, if it could be fetched.
    pub server_stats: Option<StatsSnapshot>,
}

/// One line-JSON connection to the server.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            line: String::new(),
        })
    }

    fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        let line = serde_json::to_string(req).map_err(std::io::Error::other)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(serde_json::from_str(&self.line).map_err(std::io::Error::other)?)
    }
}

/// Counters shared across client threads.
#[derive(Default)]
struct Tally {
    opened: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    events: AtomicU64,
    errors: AtomicU64,
    /// Open attempts so far, used for rate pacing and seed assignment.
    attempts: AtomicU64,
}

/// Runs the load generator to completion and reports what it observed.
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    cfg.validate()?;
    let start = Instant::now();
    let open_deadline = cfg.duration.map(|d| start + d);
    let tally = Arc::new(Tally::default());
    let open_hist = Arc::new(LatencyHistogram::new());
    let next_hist = Arc::new(LatencyHistogram::new());

    // Fail fast (and typed) if the server is unreachable, before spawning.
    drop(Client::connect(&cfg.addr)?);

    let per_thread = cfg.concurrent.div_ceil(cfg.threads);
    let threads: Vec<_> = (0..cfg.threads)
        .map(|i| {
            let cfg = cfg.clone();
            let tally = Arc::clone(&tally);
            let open_hist = Arc::clone(&open_hist);
            let next_hist = Arc::clone(&next_hist);
            std::thread::Builder::new()
                .name(format!("cpt-loadgen-{i}"))
                .spawn(move || {
                    client_thread(&cfg, per_thread, start, open_deadline, &tally, &open_hist,
                        &next_hist)
                })
        })
        .collect::<Result<_, _>>()
        .map_err(ServeError::Io)?;
    for t in threads {
        let _ = t.join();
    }

    // Final server snapshot (and optional shutdown) on a fresh connection.
    let mut server_stats = None;
    if let Ok(mut client) = Client::connect(&cfg.addr) {
        if let Ok(Response::Stats { stats }) = client.request(&Request::Stats) {
            server_stats = Some(stats);
        }
        if cfg.shutdown {
            let _ = client.request(&Request::Shutdown);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    let events = tally.events.load(Ordering::Relaxed);
    Ok(LoadgenReport {
        sessions_opened: tally.opened.load(Ordering::Relaxed),
        sessions_shed: tally.shed.load(Ordering::Relaxed),
        sessions_completed: tally.completed.load(Ordering::Relaxed),
        events_received: events,
        errors: tally.errors.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        events_per_sec: if elapsed > 0.0 { events as f64 / elapsed } else { 0.0 },
        open_p50_us: open_hist.quantile_us(0.50),
        open_p99_us: open_hist.quantile_us(0.99),
        next_p50_us: next_hist.quantile_us(0.50),
        next_p99_us: next_hist.quantile_us(0.99),
        server_stats,
    })
}

/// True while this thread may claim another open attempt; claims the
/// attempt index (for pacing + seed) when it may.
fn claim_attempt(
    cfg: &LoadgenConfig,
    open_deadline: Option<Instant>,
    tally: &Tally,
) -> Option<u64> {
    if let Some(d) = open_deadline {
        if Instant::now() >= d {
            return None;
        }
    }
    // Claim optimistically, then give the slot back if over target.
    let idx = tally.attempts.fetch_add(1, Ordering::SeqCst);
    if cfg.sessions > 0 && idx >= cfg.sessions {
        None
    } else {
        Some(idx)
    }
}

fn client_thread(
    cfg: &LoadgenConfig,
    per_thread: usize,
    start: Instant,
    open_deadline: Option<Instant>,
    tally: &Tally,
    open_hist: &LatencyHistogram,
    next_hist: &LatencyHistogram,
) {
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    // Sessions this thread currently has open.
    let mut open: Vec<u64> = Vec::with_capacity(per_thread);
    let mut opening_done = false;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Open phase: top up to this thread's share of the concurrency
        // target, paced to the global rate.
        while !opening_done && open.len() < per_thread {
            let Some(idx) = claim_attempt(cfg, open_deadline, tally) else {
                opening_done = true;
                drain_deadline = Some(Instant::now() + cfg.drain_timeout);
                break;
            };
            if cfg.rate > 0.0 {
                let target = start + Duration::from_secs_f64(idx as f64 / cfg.rate);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            }
            let req = Request::Open {
                seed: cfg.seed_base + idx,
                streams: cfg.streams,
                device: "phone".to_string(),
                max_stream_len: None,
            };
            let t0 = Instant::now();
            match client.request(&req) {
                Ok(Response::Opened { session }) => {
                    open_hist.record(t0.elapsed());
                    tally.opened.fetch_add(1, Ordering::Relaxed);
                    open.push(session);
                }
                Ok(Response::Error { kind: ErrorKind::Overloaded, .. }) => {
                    open_hist.record(t0.elapsed());
                    tally.shed.fetch_add(1, Ordering::Relaxed);
                    // Back off briefly so a saturated server is not hammered.
                    std::thread::sleep(Duration::from_millis(1));
                    break;
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }

        if open.is_empty() {
            if opening_done {
                return;
            }
            continue;
        }
        if let Some(d) = drain_deadline {
            if Instant::now() >= d {
                // Give up on stragglers; close them so the server reclaims
                // the slots.
                for id in open.drain(..) {
                    let _ = client.request(&Request::Close { session: id });
                }
                return;
            }
        }

        // Drive phase: round-robin one `next` over every open session,
        // closing the ones that finish.
        let mut still_open = Vec::with_capacity(open.len());
        for id in open.drain(..) {
            let req = Request::Next {
                session: id,
                max: 64,
                wait_ms: 50,
            };
            let t0 = Instant::now();
            match client.request(&req) {
                Ok(Response::Events { events, finished, .. }) => {
                    next_hist.record(t0.elapsed());
                    tally
                        .events
                        .fetch_add(events.len() as u64, Ordering::Relaxed);
                    if finished {
                        match client.request(&Request::Close { session: id }) {
                            Ok(Response::Closed { .. }) => {
                                tally.completed.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                tally.errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        still_open.push(id);
                    }
                }
                Ok(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    tally.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        open = still_open;
    }
}
